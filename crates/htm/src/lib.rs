//! # htm — the transactional programming interface
//!
//! The coherence simulator exposes raw transaction plumbing on
//! [`coherence::SimCtx`] (`tx_begin` / `tx_end` / `tx_abort` and fallible
//! transactional loads, stores and delays). This crate wraps that plumbing
//! in the control-flow shape of Intel RTM, which the paper's TxCAS
//! pseudocode (Algorithm 1) is written against:
//!
//! * [`transaction`] is the top-level `_xbegin()`/`_xend()` pair: it runs
//!   the body, commits on success, and returns the abort status word when
//!   the hardware (here: the simulated requester-wins conflict logic)
//!   kills the attempt;
//! * [`nested`] opens a flat-nested inner transaction — TxCAS runs its CAS
//!   *read* in one so that a later abort reveals, via the
//!   [`coherence::txn::NESTED`] status bit, whether the CAS *write* had
//!   executed yet (§4.2);
//! * aborts unwind as `Err(Abort)` through the body (`?`), standing in for
//!   the hardware's checkpoint restore.
//!
//! The [`HtmOps`] trait abstracts the backend so that TxCAS and the
//! SBQ queue are written once; today the simulator is the only backend
//! (real RTM is fused off on current hardware — see DESIGN.md §1), but the
//! trait is the seam where `asm!`-based RTM bindings would slot in.

use absmem::{Addr, ThreadCtx};
use coherence::txn::{Abort, TxResult};

/// Re-exported abort-status helpers (bit constants and predicates).
pub mod status {
    pub use coherence::txn::{
        code, explicit, is_capacity, is_conflict, is_explicit, is_interrupt, is_nested, CAPACITY,
        CONFLICT, EXPLICIT, INTERRUPT, NESTED, RETRY, SPURIOUS,
    };
}

/// The raw HTM operations a backend must provide, in addition to ordinary
/// shared-memory access.
pub trait HtmOps: ThreadCtx {
    /// Starts a (possibly nested, flat) transaction.
    fn htm_begin(&mut self) -> TxResult<()>;
    /// Commits the innermost transaction; at top level this blocks until
    /// the transactional write's ownership request completes.
    fn htm_end(&mut self) -> TxResult<()>;
    /// Self-aborts the running transaction with an 8-bit code.
    fn htm_abort(&mut self, code: u8) -> Abort;
    /// Transactional load: adds the line to the read set.
    fn htm_read(&mut self, a: Addr) -> TxResult<u64>;
    /// Transactional store: adds the line to the write set.
    fn htm_write(&mut self, a: Addr, v: u64) -> TxResult<()>;
    /// In-transaction delay, interruptible by an abort.
    fn htm_delay(&mut self, cycles: u64) -> TxResult<()>;
}

impl HtmOps for coherence::SimCtx {
    fn htm_begin(&mut self) -> TxResult<()> {
        self.tx_begin()
    }
    fn htm_end(&mut self) -> TxResult<()> {
        self.tx_end()
    }
    fn htm_abort(&mut self, code: u8) -> Abort {
        self.tx_abort(code)
    }
    fn htm_read(&mut self, a: Addr) -> TxResult<u64> {
        self.tx_read(a)
    }
    fn htm_write(&mut self, a: Addr, v: u64) -> TxResult<()> {
        self.tx_write(a, v)
    }
    fn htm_delay(&mut self, cycles: u64) -> TxResult<()> {
        self.tx_delay(cycles)
    }
}

/// Runs `body` as a top-level hardware transaction.
///
/// Returns `Ok(r)` if the body ran to completion and the commit succeeded,
/// or `Err(status)` with the RTM-style status word if the transaction
/// aborted at any point (conflict, explicit `htm_abort`, or spurious).
/// After an abort all transactional effects have been rolled back, exactly
/// like the hardware register/memory checkpoint restore.
///
/// The body must propagate `Err(Abort)` outward (use `?`); issuing further
/// transactional operations after observing an abort is a logic error.
pub fn transaction<C: HtmOps, R>(
    ctx: &mut C,
    body: impl FnOnce(&mut C) -> TxResult<R>,
) -> Result<R, u32> {
    if let Err(a) = ctx.htm_begin() {
        return Err(a.status);
    }
    match body(ctx) {
        Ok(r) => match ctx.htm_end() {
            Ok(()) => Ok(r),
            Err(a) => Err(a.status),
        },
        Err(a) => Err(a.status),
    }
}

/// Runs `body` as a flat-nested inner transaction; composes with `?`
/// inside a [`transaction`] body. An abort inside the nested region kills
/// the whole (flat) transaction and carries the NESTED status bit.
pub fn nested<C: HtmOps, R>(ctx: &mut C, body: impl FnOnce(&mut C) -> TxResult<R>) -> TxResult<R> {
    ctx.htm_begin()?;
    let r = body(ctx)?;
    ctx.htm_end()?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coherence::{Machine, MachineConfig, Program, SimCtx};
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
    use std::sync::{Arc, Mutex};

    fn run1(f: impl FnOnce(&mut SimCtx, u64) -> u64 + Send + 'static) -> u64 {
        let cfg = MachineConfig::single_socket(1);
        let shared = Arc::new(AtomicU64::new(0));
        let out = Arc::new(Mutex::new(0u64));
        let (s2, o2) = (Arc::clone(&shared), Arc::clone(&out));
        Machine::new(cfg).run(
            Box::new(move |ctx| {
                let a = ctx.alloc(1);
                ctx.write(a, 0);
                s2.store(a, SeqCst);
            }),
            vec![Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                *o2.lock().unwrap() = f(ctx, a);
            }) as Program],
        );
        let v = *out.lock().unwrap();
        v
    }

    #[test]
    fn transaction_commits_and_returns_body_value() {
        let v = run1(|ctx, a| {
            let r = transaction(ctx, |ctx| {
                let v = ctx.htm_read(a)?;
                ctx.htm_write(a, v + 5)?;
                Ok(v + 100)
            });
            assert_eq!(r, Ok(100));
            ctx.read(a)
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn explicit_abort_reports_status_and_rolls_back() {
        let v = run1(|ctx, a| {
            let r: Result<(), u32> = transaction(ctx, |ctx| {
                ctx.htm_write(a, 77)?;
                Err(ctx.htm_abort(9))
            });
            let status = r.unwrap_err();
            assert!(status::is_explicit(status));
            assert_eq!(status::code(status), 9);
            ctx.read(a)
        });
        assert_eq!(v, 0, "write rolled back");
    }

    #[test]
    fn nested_abort_carries_nested_bit_to_top_level() {
        let _ = run1(|ctx, a| {
            let r: Result<(), u32> = transaction(ctx, |ctx| {
                nested(ctx, |ctx| {
                    let v = ctx.htm_read(a)?;
                    if v == 0 {
                        return Err(ctx.htm_abort(1));
                    }
                    Ok(())
                })?;
                ctx.htm_write(a, 1)?;
                Ok(())
            });
            let status = r.unwrap_err();
            assert!(status::is_nested(status), "abort was inside the nested txn");
            assert!(status::is_explicit(status));
            0
        });
    }

    #[test]
    fn abort_after_nested_commit_is_not_nested() {
        let _ = run1(|ctx, a| {
            let r: Result<(), u32> = transaction(ctx, |ctx| {
                nested(ctx, |ctx| {
                    ctx.htm_read(a)?;
                    Ok(())
                })?;
                // Abort in the main transaction, after the nested commit.
                Err(ctx.htm_abort(2))
            });
            let status = r.unwrap_err();
            assert!(
                !status::is_nested(status),
                "abort happened outside the nested region"
            );
            0
        });
    }

    #[test]
    fn sequential_transactions_are_independent() {
        let v = run1(|ctx, a| {
            for _ in 0..10 {
                let r = transaction(ctx, |ctx| {
                    let v = ctx.htm_read(a)?;
                    ctx.htm_write(a, v + 1)?;
                    Ok(())
                });
                assert!(r.is_ok());
            }
            ctx.read(a)
        });
        assert_eq!(v, 10);
    }
}
