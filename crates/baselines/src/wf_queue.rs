//! WF-Queue: a reproduction of the *fast path* of Yang & Mellor-Crummey's
//! wait-free FAA-based queue (PPoPP 2016) — the fastest queue in the
//! literature at the time of the paper, and its main comparator (§6.1).
//!
//! The queue is an unbounded "infinite array" realized as a linked list of
//! fixed-size segments. Enqueuers and dequeuers each claim a global index
//! with one FAA and meet at the corresponding cell:
//!
//! * enqueue: `i = FAA(E, 1)`, then `CAS(cell[i], BOTTOM, value)`;
//! * dequeue: `i = FAA(D, 1)`, then `SWAP(cell[i], TOP)` — receiving the
//!   value if the enqueuer arrived first, or poisoning the cell (the
//!   enqueuer's CAS then fails and it takes a fresh index).
//!
//! **Deviation (DESIGN.md §3):** the original's wait-free *slow path*
//! (enqueue/dequeue helping with bounded patience) is replaced by this
//! lock-free retry, because the paper itself observes the slow path never
//! executes in practice ("operations make progress, and so WF-Queue is not
//! penalized by its wait-freedom"). Performance-critical structure —
//! one FAA per operation on separate E/D counters, segment walking,
//! per-thread segment caches, index-based segment reclamation — follows
//! the original.

use absmem::{Addr, ThreadCtx, NULL};

/// Cells per segment (the original uses 1024; smaller here so that
/// simulated runs exercise segment boundaries too).
pub const SEG_CELLS: usize = 256;

const BOTTOM: u64 = 0; // cell initial state
const TOP: u64 = u64::MAX; // cell poisoned by a dequeuer

// Descriptor layout.
const ENQ_IDX: u64 = 0; // E counter
const DEQ_IDX: u64 = 1; // D counter
const SEG_HEAD: u64 = 2; // earliest live segment
const PROT: u64 = 3; // per-thread protected segment id (offset by +1; 0 = none)

// Segment layout.
const SEG_ID: u64 = 0;
const SEG_NEXT: u64 = 1;
const SEG_CELL0: u64 = 2;
const SEG_WORDS: usize = 2 + SEG_CELLS;

/// Per-thread state: cached segment pointers (the original's `enq`/`deq`
/// handles).
#[derive(Debug, Clone, Copy)]
pub struct WfHandle {
    enq_seg: Addr,
    deq_seg: Addr,
}

/// The queue handle. Values are `u64` in `1..u64::MAX-1`.
#[derive(Debug, Clone, Copy)]
pub struct WfQueue {
    base: Addr,
    max_threads: usize,
    reclaim: bool,
}

impl WfQueue {
    /// Creates the queue with one initial segment.
    pub fn new<C: ThreadCtx>(ctx: &mut C, max_threads: usize, reclaim: bool) -> Self {
        let base = ctx.alloc(3 + max_threads);
        let q = WfQueue {
            base,
            max_threads,
            reclaim,
        };
        let seg = q.new_segment(ctx, 0);
        ctx.write(base + ENQ_IDX, 0);
        ctx.write(base + DEQ_IDX, 0);
        ctx.write(base + SEG_HEAD, seg);
        for i in 0..max_threads as u64 {
            ctx.write(base + PROT + i, 0);
        }
        q
    }

    /// Descriptor address for cross-thread reconstruction.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Rebuilds a handle.
    pub fn from_base(base: Addr, max_threads: usize, reclaim: bool) -> Self {
        WfQueue {
            base,
            max_threads,
            reclaim,
        }
    }

    /// Creates the per-thread handle; call once per thread after `new`.
    pub fn handle<C: ThreadCtx>(&self, ctx: &mut C) -> WfHandle {
        let seg = ctx.read(self.base + SEG_HEAD);
        WfHandle {
            enq_seg: seg,
            deq_seg: seg,
        }
    }

    fn new_segment<C: ThreadCtx>(&self, ctx: &mut C, id: u64) -> Addr {
        let s = ctx.alloc(SEG_WORDS);
        ctx.write(s + SEG_ID, id);
        ctx.write(s + SEG_NEXT, NULL);
        for i in 0..SEG_CELLS as u64 {
            ctx.write(s + SEG_CELL0 + i, BOTTOM);
        }
        s
    }

    /// Walks (appending as needed) from `start` to the segment containing
    /// global cell index `idx`; returns (segment, cell address).
    fn find_cell<C: ThreadCtx>(&self, ctx: &mut C, start: Addr, idx: u64) -> (Addr, Addr) {
        let target = idx / SEG_CELLS as u64;
        let mut s = start;
        let mut sid = ctx.read(s + SEG_ID);
        debug_assert!(sid <= target, "cached segment is ahead of the index");
        while sid < target {
            let mut next = ctx.read(s + SEG_NEXT);
            if next == NULL {
                let fresh = self.new_segment(ctx, sid + 1);
                if ctx.cas(s + SEG_NEXT, NULL, fresh) {
                    next = fresh;
                } else {
                    ctx.free(fresh, SEG_WORDS);
                    next = ctx.read(s + SEG_NEXT);
                }
            }
            s = next;
            sid += 1;
        }
        (s, s + SEG_CELL0 + (idx % SEG_CELLS as u64))
    }

    /// Announces the lowest segment id the thread may touch; validates
    /// against segment-head movement like the other queues' protectors.
    fn protect_seg<C: ThreadCtx>(&self, ctx: &mut C, h: &WfHandle) {
        let id = ctx.thread_id();
        let min = ctx
            .read(h.enq_seg + SEG_ID)
            .min(ctx.read(h.deq_seg + SEG_ID));
        ctx.write(self.base + PROT + id as u64, min + 1); // +1: 0 means none
    }

    fn unprotect_seg<C: ThreadCtx>(&self, ctx: &mut C) {
        let id = ctx.thread_id();
        ctx.write(self.base + PROT + id as u64, 0);
    }

    /// Frees segments wholly below every thread's protected id and the
    /// current dequeue index. Single reclaimer via SWAP on SEG_HEAD being
    /// advanced by CAS; simpler than the original's scheme but preserves
    /// its index-based character.
    fn reclaim_segments<C: ThreadCtx>(&self, ctx: &mut C, h: &mut WfHandle) {
        if !self.reclaim {
            return;
        }
        let deq = ctx.read(self.base + DEQ_IDX);
        let mut min_id = deq / SEG_CELLS as u64;
        for i in 0..self.max_threads {
            let p = ctx.read(self.base + PROT + i as u64);
            if p != 0 {
                min_id = min_id.min(p - 1);
            }
        }
        loop {
            let head = ctx.read(self.base + SEG_HEAD);
            let hid = ctx.read(head + SEG_ID);
            if hid >= min_id {
                break;
            }
            let next = ctx.read(head + SEG_NEXT);
            if next == NULL {
                break;
            }
            if ctx.cas(self.base + SEG_HEAD, head, next) {
                ctx.free(head, SEG_WORDS);
                if h.enq_seg == head {
                    h.enq_seg = next;
                }
                if h.deq_seg == head {
                    h.deq_seg = next;
                }
            } else {
                break;
            }
        }
    }

    /// Appends `value`.
    pub fn enqueue<C: ThreadCtx>(&self, ctx: &mut C, h: &mut WfHandle, value: u64) {
        debug_assert!(value != BOTTOM && value != TOP);
        self.protect_seg(ctx, h);
        loop {
            let i = ctx.faa(self.base + ENQ_IDX, 1);
            let (seg, cell) = self.find_cell(ctx, h.enq_seg, i);
            h.enq_seg = seg;
            if ctx.cas(cell, BOTTOM, value) {
                break;
            }
            // A dequeuer poisoned this cell first; take a fresh index
            // (the original's fast-path retry).
        }
        self.unprotect_seg(ctx);
    }

    /// Removes the oldest value, or returns `None` if the queue was
    /// observed empty.
    pub fn dequeue<C: ThreadCtx>(&self, ctx: &mut C, h: &mut WfHandle) -> Option<u64> {
        self.protect_seg(ctx, h);
        let r = loop {
            let i = ctx.faa(self.base + DEQ_IDX, 1);
            let (seg, cell) = self.find_cell(ctx, h.deq_seg, i);
            h.deq_seg = seg;
            let v = ctx.swap(cell, TOP);
            if v != BOTTOM {
                // Reclaim only when a segment boundary was crossed: the
                // protector scan is O(threads) and must stay amortized
                // (the original reclaims per consumed segment).
                if i % SEG_CELLS as u64 == SEG_CELLS as u64 - 1 {
                    self.reclaim_segments(ctx, h);
                }
                break Some(v);
            }
            // Raced ahead of the enqueuer with index i (its CAS will now
            // fail). Retry while the queue may be non-empty.
            if i + 1 >= ctx.read(self.base + ENQ_IDX) {
                break None;
            }
        };
        self.unprotect_seg(ctx);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread_across_segments() {
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let mut ctx = heap.ctx(0);
        let q = WfQueue::new(&mut ctx, 2, true);
        let mut h = q.handle(&mut ctx);
        let total = (SEG_CELLS * 3 + 17) as u64; // cross several segments
        for i in 1..=total {
            q.enqueue(&mut ctx, &mut h, i);
        }
        for i in 1..=total {
            assert_eq!(q.dequeue(&mut ctx, &mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx, &mut h), None);
    }

    #[test]
    fn empty_dequeue_returns_none_and_poisons() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = WfQueue::new(&mut ctx, 1, true);
        let mut h = q.handle(&mut ctx);
        assert_eq!(q.dequeue(&mut ctx, &mut h), None);
        // The poisoned cell forces the next enqueue to a fresh index, but
        // FIFO semantics are unaffected.
        q.enqueue(&mut ctx, &mut h, 5);
        assert_eq!(q.dequeue(&mut ctx, &mut h), Some(5));
    }

    #[test]
    fn mpmc_conservation_native() {
        const N: usize = 4;
        const PER: u64 = 2_000;
        let heap = Arc::new(NativeHeap::new(1 << 23));
        let q = {
            let mut ctx = heap.ctx(0);
            WfQueue::new(&mut ctx, N, true)
        };
        let results = run_threads(&heap, N, |ctx| {
            let mut h = q.handle(ctx);
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, &mut h, tid * PER + i + 1);
                if let Some(v) = q.dequeue(ctx, &mut h) {
                    got.push(v);
                }
            }
            while let Some(v) = q.dequeue(ctx, &mut h) {
                got.push(v);
            }
            got
        });
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=N as u64 * PER).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn segment_reclamation_advances_head() {
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let mut ctx = heap.ctx(0);
        let q = WfQueue::new(&mut ctx, 1, true);
        let mut h = q.handle(&mut ctx);
        let total = (SEG_CELLS * 4) as u64;
        for i in 1..=total {
            q.enqueue(&mut ctx, &mut h, i);
        }
        for i in 1..=total {
            assert_eq!(q.dequeue(&mut ctx, &mut h), Some(i));
        }
        let head_seg = ctx.read(q.base() + SEG_HEAD);
        let head_id = ctx.read(head_seg + SEG_ID);
        assert!(
            head_id >= 3,
            "drained segments must be reclaimed, head at {head_id}"
        );
    }
}
