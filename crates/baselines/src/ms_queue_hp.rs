//! Michael–Scott queue with *hazard-pointer* reclamation — the scheme the
//! paper names as the epoch scheme's standard alternative (§5.2.2), and
//! the one Michael's original hazard-pointer paper itself applies to this
//! queue.
//!
//! Functionally identical to [`crate::ms_queue::MsQueue`]; only memory
//! management differs, which is exactly the point: the cross-impl tests
//! drive both over identical schedules and demand identical results.
//!
//! Hazard discipline (Michael 2004, Fig. 5):
//! * dequeue protects `head` in slot 0 and `head->next` in slot 1 before
//!   dereferencing either;
//! * enqueue protects `tail` in slot 0;
//! * a node is retired only after it is unlinked (head moved past it), and
//!   freed only when no slot names it.

use absmem::{Addr, ThreadCtx, NULL};
use sbq::reclaim_hp::{HazardDomain, RetireList};

// Descriptor layout.
const HEAD: u64 = 0;
const TAIL: u64 = 1;
const DESC_WORDS: usize = 2;

// Node layout.
const NEXT: u64 = 0;
const VALUE: u64 = 1;
const NODE_WORDS: usize = 2;

/// Hazard slots each thread needs.
pub const HP_SLOTS: usize = 2;

/// The queue handle. Values are nonzero `u64`s.
#[derive(Debug, Clone, Copy)]
pub struct MsQueueHp {
    base: Addr,
    dom: HazardDomain,
}

/// Per-thread state: the private retire list.
#[derive(Debug)]
pub struct MsHpThread {
    rl: RetireList,
}

impl MsQueueHp {
    /// Creates the queue and its hazard domain from one thread.
    pub fn new<C: ThreadCtx>(ctx: &mut C, threads: usize) -> Self {
        let dom = HazardDomain::new(ctx, threads, HP_SLOTS);
        let base = ctx.alloc(DESC_WORDS);
        let sentinel = ctx.alloc(NODE_WORDS);
        ctx.write(sentinel + NEXT, NULL);
        ctx.write(sentinel + VALUE, 0);
        ctx.write(base + HEAD, sentinel);
        ctx.write(base + TAIL, sentinel);
        MsQueueHp { base, dom }
    }

    /// Rebuilds a handle from published addresses.
    pub fn from_parts(base: Addr, dom_base: Addr, threads: usize) -> Self {
        MsQueueHp {
            base,
            dom: HazardDomain::from_base(dom_base, threads, HP_SLOTS),
        }
    }

    /// Addresses needed by [`from_parts`](Self::from_parts).
    pub fn parts(&self) -> (Addr, Addr) {
        (self.base, self.dom.base())
    }

    /// Creates a thread's retire-list state. `threshold` bounds the
    /// per-thread backlog before a scan (2×(threads×slots) is Michael's
    /// recommendation).
    pub fn thread_state(&self, threads: usize) -> MsHpThread {
        MsHpThread {
            rl: RetireList::with_threshold(2 * threads * HP_SLOTS),
        }
    }

    /// Appends `value` (nonzero).
    pub fn enqueue<C: ThreadCtx>(&self, ctx: &mut C, value: u64) {
        debug_assert_ne!(value, 0);
        let node = ctx.alloc(NODE_WORDS);
        ctx.write(node + NEXT, NULL);
        ctx.write(node + VALUE, value);
        loop {
            // Protect the tail before touching its next pointer.
            let t = self.dom.protect(ctx, 0, self.base + TAIL);
            let next = ctx.read(t + NEXT);
            if ctx.read(self.base + TAIL) != t {
                continue;
            }
            if next != NULL {
                ctx.cas(self.base + TAIL, t, next);
                continue;
            }
            if ctx.cas(t + NEXT, NULL, node) {
                ctx.cas(self.base + TAIL, t, node);
                break;
            }
        }
        self.dom.clear(ctx, 0);
    }

    /// Removes the oldest value, or `None` when empty.
    pub fn dequeue<C: ThreadCtx>(&self, ctx: &mut C, st: &mut MsHpThread) -> Option<u64> {
        let result = loop {
            let h = self.dom.protect(ctx, 0, self.base + HEAD);
            let t = ctx.read(self.base + TAIL);
            // Protect the successor before reading its value.
            let next = self.dom.protect(ctx, 1, h + NEXT);
            if ctx.read(self.base + HEAD) != h {
                continue; // h may already be retired; restart
            }
            if next == NULL {
                break None;
            }
            if h == t {
                ctx.cas(self.base + TAIL, t, next);
                continue;
            }
            let value = ctx.read(next + VALUE);
            if ctx.cas(self.base + HEAD, h, next) {
                // h is unlinked: retire it (freeing waits for hazards).
                st.rl.retire(ctx, &self.dom, h, NODE_WORDS);
                break Some(value);
            }
        };
        self.dom.clear_all(ctx);
        result
    }

    /// Final cleanup for a quiesced thread.
    pub fn quiesce<C: ThreadCtx>(&self, ctx: &mut C, st: &mut MsHpThread) {
        st.rl.drain_all(ctx, &self.dom);
    }

    /// Nodes this thread's list has freed (stats for tests).
    pub fn freed(st: &MsHpThread) -> u64 {
        st.rl.freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = MsQueueHp::new(&mut ctx, 1);
        let mut st = q.thread_state(1);
        assert_eq!(q.dequeue(&mut ctx, &mut st), None);
        for i in 1..=300u64 {
            q.enqueue(&mut ctx, i);
        }
        for i in 1..=300u64 {
            assert_eq!(q.dequeue(&mut ctx, &mut st), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx, &mut st), None);
        q.quiesce(&mut ctx, &mut st);
        assert!(MsQueueHp::freed(&st) > 250, "retired nodes must be freed");
    }

    #[test]
    fn mpmc_conservation_with_reclamation() {
        const N: usize = 4;
        const PER: u64 = 1_500;
        let heap = Arc::new(NativeHeap::new(1 << 23));
        let q = {
            let mut ctx = heap.ctx(0);
            MsQueueHp::new(&mut ctx, N)
        };
        let results = run_threads(&heap, N, |ctx| {
            let mut st = q.thread_state(N);
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, tid * PER + i + 1);
                if let Some(v) = q.dequeue(ctx, &mut st) {
                    got.push(v);
                }
            }
            while let Some(v) = q.dequeue(ctx, &mut st) {
                got.push(v);
            }
            q.quiesce(ctx, &mut st);
            (got, MsQueueHp::freed(&st))
        });
        let mut all: Vec<u64> = results.iter().flat_map(|(g, _)| g.clone()).collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=N as u64 * PER).collect();
        assert_eq!(all, expect, "conservation under hazard-pointer reclamation");
        let freed: u64 = results.iter().map(|(_, f)| f).sum();
        assert!(
            freed > (N as u64 * PER) / 2,
            "most nodes should be reclaimed, freed={freed}"
        );
    }

    #[test]
    fn agrees_with_epoch_ms_queue() {
        // Identical deterministic schedule against both reclamation
        // schemes must produce identical dequeue sequences.
        let ops: Vec<bool> = (0..2_000).map(|i| (i * 7 + 3) % 11 < 6).collect();
        let heap1 = Arc::new(NativeHeap::new(1 << 22));
        let mut c1 = heap1.ctx(0);
        let q1 = crate::MsQueue::new(&mut c1, 1, true);
        let heap2 = Arc::new(NativeHeap::new(1 << 22));
        let mut c2 = heap2.ctx(0);
        let q2 = MsQueueHp::new(&mut c2, 1);
        let mut st2 = q2.thread_state(1);
        let mut v = 0u64;
        for &e in &ops {
            if e {
                v += 1;
                q1.enqueue(&mut c1, v);
                q2.enqueue(&mut c2, v);
            } else {
                assert_eq!(q1.dequeue(&mut c1), q2.dequeue(&mut c2, &mut st2));
            }
        }
    }
}
