//! CC-Queue: Fatourou & Kallimanis's combining queue (PPoPP 2012), the
//! combining-technique representative in the paper's evaluation (§6.1).
//!
//! Synchronization is the CC-Synch combining protocol: threads publish
//! their requests into a SWAP-linked list; whoever finds itself at the
//! list's old tail becomes the *combiner* and executes pending requests
//! (up to a bound) against a plain sequential queue, then hands the
//! combiner role to the next waiting thread. The queue's single contended
//! operation is the SWAP — which, like any contended RMW, serializes
//! (§3.2), the reason the paper groups it with the non-scalable designs.
//!
//! Each thread owns two request nodes used alternately (the classic
//! CC-Synch trick: a node handed to the successor as its wait-cell cannot
//! be reused until the next round).

use absmem::{Addr, ThreadCtx, NULL};

/// Combiner bound: maximum requests served per combining session.
pub const COMBINE_BOUND: usize = 64;

// Request-node layout.
const REQ_WAIT: u64 = 0; // 1 while the owner must spin
const REQ_DONE: u64 = 1; // 1 once the request was served
const REQ_OP: u64 = 2; // 0 = none, 1 = enqueue, 2 = dequeue
const REQ_ARG: u64 = 3;
const REQ_RET: u64 = 4;
const REQ_NEXT: u64 = 5;
const REQ_WORDS: usize = 6;

const OP_NONE: u64 = 0;
const OP_ENQ: u64 = 1;
const OP_DEQ: u64 = 2;

// Descriptor layout.
const LOCK_TAIL: u64 = 0; // tail of the CC-Synch request list
const Q_HEAD: u64 = 1; // sequential queue head (sentinel)
const Q_TAIL: u64 = 2; // sequential queue tail
const DESC_WORDS: usize = 3;

// Sequential queue node layout.
const N_NEXT: u64 = 0;
const N_VALUE: u64 = 1;
const N_WORDS: usize = 2;

/// Per-thread state: the two alternating CC-Synch nodes.
#[derive(Debug, Clone, Copy)]
pub struct CcHandle {
    nodes: [Addr; 2],
    toggle: usize,
}

/// The combining queue handle. Values are nonzero `u64`s.
#[derive(Debug, Clone, Copy)]
pub struct CcQueue {
    base: Addr,
}

impl CcQueue {
    /// Creates the queue and its combining lock from one thread.
    pub fn new<C: ThreadCtx>(ctx: &mut C) -> Self {
        let base = ctx.alloc(DESC_WORDS);
        // Sequential queue sentinel.
        let sentinel = ctx.alloc(N_WORDS);
        ctx.write(sentinel + N_NEXT, NULL);
        ctx.write(sentinel + N_VALUE, 0);
        ctx.write(base + Q_HEAD, sentinel);
        ctx.write(base + Q_TAIL, sentinel);
        // Initial lock node: an already-served dummy, so the first thread
        // to SWAP becomes combiner immediately.
        let dummy = ctx.alloc(REQ_WORDS);
        ctx.write(dummy + REQ_WAIT, 0);
        ctx.write(dummy + REQ_DONE, 0);
        ctx.write(dummy + REQ_OP, OP_NONE);
        ctx.write(dummy + REQ_NEXT, NULL);
        ctx.write(base + LOCK_TAIL, dummy);
        CcQueue { base }
    }

    /// Descriptor address for cross-thread reconstruction.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Rebuilds a handle.
    pub fn from_base(base: Addr) -> Self {
        CcQueue { base }
    }

    /// Creates a thread's pair of combining nodes.
    pub fn handle<C: ThreadCtx>(&self, ctx: &mut C) -> CcHandle {
        let mut nodes = [NULL; 2];
        for n in &mut nodes {
            let a = ctx.alloc(REQ_WORDS);
            ctx.write(a + REQ_WAIT, 0);
            ctx.write(a + REQ_DONE, 0);
            ctx.write(a + REQ_OP, OP_NONE);
            ctx.write(a + REQ_NEXT, NULL);
            *n = a;
        }
        CcHandle { nodes, toggle: 0 }
    }

    /// The CC-Synch protocol: announce `(op, arg)`, spin or combine, and
    /// return the request's result.
    fn combine<C: ThreadCtx>(&self, ctx: &mut C, h: &mut CcHandle, op: u64, arg: u64) -> u64 {
        // `next_node` becomes the new shared tail (the successor's wait
        // cell); our request is written into the *previous* tail.
        let next_node = h.nodes[h.toggle];
        h.toggle ^= 1;
        ctx.write(next_node + REQ_WAIT, 1);
        ctx.write(next_node + REQ_DONE, 0);
        ctx.write(next_node + REQ_NEXT, NULL);
        let cur = ctx.swap(self.base + LOCK_TAIL, next_node);
        ctx.write(cur + REQ_OP, op);
        ctx.write(cur + REQ_ARG, arg);
        ctx.write(cur + REQ_NEXT, next_node);
        // `cur` now belongs to us for this round; the previous holder
        // already finished with it (WAIT was 0 or will be cleared).
        while ctx.read(cur + REQ_WAIT) == 1 {
            ctx.delay(30); // polite spin
        }
        if ctx.read(cur + REQ_DONE) == 1 {
            // A combiner served us.
            h.nodes[h.toggle ^ 1] = cur;
            return ctx.read(cur + REQ_RET);
        }
        // We are the combiner: serve requests starting from our own.
        let mut node = cur;
        let mut served = 0usize;
        while served < COMBINE_BOUND {
            let next = ctx.read(node + REQ_NEXT);
            if next == NULL {
                break;
            }
            self.serve(ctx, node);
            ctx.write(node + REQ_DONE, 1);
            ctx.write(node + REQ_WAIT, 0);
            served += 1;
            node = next;
            if ctx.read(node + REQ_OP) == OP_NONE && ctx.read(node + REQ_NEXT) == NULL {
                // Tail reached before its owner announced; stop combining.
                break;
            }
        }
        // Hand the combiner role to `node`'s owner (or unlock if tail).
        ctx.write(node + REQ_WAIT, 0);
        h.nodes[h.toggle ^ 1] = cur;
        ctx.read(cur + REQ_RET)
    }

    /// Executes one request against the sequential queue. Runs in mutual
    /// exclusion (combiner only), so plain reads/writes suffice — the
    /// entire point of combining.
    fn serve<C: ThreadCtx>(&self, ctx: &mut C, req: Addr) {
        match ctx.read(req + REQ_OP) {
            OP_ENQ => {
                let n = ctx.alloc(N_WORDS);
                ctx.write(n + N_NEXT, NULL);
                let arg = ctx.read(req + REQ_ARG);
                ctx.write(n + N_VALUE, arg);
                let t = ctx.read(self.base + Q_TAIL);
                ctx.write(t + N_NEXT, n);
                ctx.write(self.base + Q_TAIL, n);
                ctx.write(req + REQ_RET, 0);
            }
            OP_DEQ => {
                let head = ctx.read(self.base + Q_HEAD);
                let first = ctx.read(head + N_NEXT);
                if first == NULL {
                    ctx.write(req + REQ_RET, 0);
                } else {
                    let v = ctx.read(first + N_VALUE);
                    ctx.write(req + REQ_RET, v);
                    ctx.write(self.base + Q_HEAD, first);
                    // Exclusive access makes immediate free safe.
                    ctx.free(head, N_WORDS);
                }
            }
            other => panic!("combiner found request with op {other}"),
        }
        ctx.write(req + REQ_OP, OP_NONE);
    }

    /// Appends `value` (nonzero).
    pub fn enqueue<C: ThreadCtx>(&self, ctx: &mut C, h: &mut CcHandle, value: u64) {
        debug_assert_ne!(value, 0);
        self.combine(ctx, h, OP_ENQ, value);
    }

    /// Removes the oldest value, or `None` when empty.
    pub fn dequeue<C: ThreadCtx>(&self, ctx: &mut C, h: &mut CcHandle) -> Option<u64> {
        match self.combine(ctx, h, OP_DEQ, 0) {
            0 => None,
            v => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = CcQueue::new(&mut ctx);
        let mut h = q.handle(&mut ctx);
        assert_eq!(q.dequeue(&mut ctx, &mut h), None);
        for i in 1..=300u64 {
            q.enqueue(&mut ctx, &mut h, i);
        }
        for i in 1..=300u64 {
            assert_eq!(q.dequeue(&mut ctx, &mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx, &mut h), None);
    }

    #[test]
    fn mpmc_conservation_native() {
        const N: usize = 4;
        const PER: u64 = 1_500;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = {
            let mut ctx = heap.ctx(0);
            CcQueue::new(&mut ctx)
        };
        let results = run_threads(&heap, N, |ctx| {
            let mut h = q.handle(ctx);
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, &mut h, tid * PER + i + 1);
                if let Some(v) = q.dequeue(ctx, &mut h) {
                    got.push(v);
                }
            }
            while let Some(v) = q.dequeue(ctx, &mut h) {
                got.push(v);
            }
            got
        });
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=N as u64 * PER).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn combiner_serves_multiple_requests() {
        // With heavy interleaving the combining path (DONE=1) must be
        // exercised; we detect it indirectly: total ops complete and FIFO
        // per producer holds.
        const N: usize = 3;
        const PER: u64 = 500;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = {
            let mut ctx = heap.ctx(0);
            CcQueue::new(&mut ctx)
        };
        let results = run_threads(&heap, N, |ctx| {
            let mut h = q.handle(ctx);
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, &mut h, (tid << 32) | (i + 1));
            }
            while let Some(v) = q.dequeue(ctx, &mut h) {
                got.push(v);
            }
            got
        });
        for got in &results {
            let mut last = [0u64; N];
            for &v in got {
                let p = (v >> 32) as usize;
                let s = v & 0xffff_ffff;
                assert!(s > last[p], "per-producer FIFO violated");
                last[p] = s;
            }
        }
        let total: usize = results.iter().map(|g| g.len()).sum();
        assert_eq!(total, N * PER as usize);
    }
}
