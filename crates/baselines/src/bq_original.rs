//! BQ-Original: the original baskets queue (Hoffman, Shalev & Shavit,
//! OPODIS 2007), expressed in the paper's modular framework (§5.2).
//!
//! Viewed through the modular lens, the original queue is the baskets
//! queue with (a) a plain retried CAS for the tail append and (b) a
//! LIFO-stack basket with the property that *all inserts fail once any
//! element has been extracted* — the role the original's "deleted bit" on
//! next pointers plays. [`LifoBasket`] implements exactly that contract.
//!
//! Basket cells (`[elem, next]` pairs) are deliberately not recycled: the
//! original interleaves basket items with list nodes and relies on its own
//! deleted-bit reclamation, which the modular framing cannot express
//! without re-introducing the original's pointer tagging. The leak is
//! bounded by the number of contended enqueues and does not affect the
//! timing behaviour the benchmarks compare. (DESIGN.md §3.)

use absmem::{Addr, StandardCas, ThreadCtx, NULL};
use sbq::basket::{Basket, NULL_ELEM};
use sbq::modular::{ModularQueue, QueueConfig};

/// Low-bit mark on the stack top pointer: set once the first extraction
/// happens; inserts observing it fail forever after.
const SEALED_BIT: u64 = 1;

/// A LIFO linked-stack basket that seals itself on first extraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoBasket;

impl LifoBasket {
    const TOP: u64 = 0;
    const CELL_WORDS: usize = 2; // [elem, next]
}

impl Basket for LifoBasket {
    fn words(&self) -> usize {
        1
    }

    fn init<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) {
        ctx.write(base + Self::TOP, NULL);
    }

    fn reset_single<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, _id: usize) {
        // Discard the single pushed cell (leaked; see module docs).
        ctx.write(base + Self::TOP, NULL);
    }

    fn insert<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, elem: u64, _id: usize) -> bool {
        let top = ctx.read(base + Self::TOP);
        if top & SEALED_BIT != 0 {
            // An element was already removed from this basket: inserting
            // now could violate queue linearizability (§5.2.2's analysis
            // of the original algorithm).
            return false;
        }
        let cell = ctx.alloc(Self::CELL_WORDS);
        ctx.write(cell, elem);
        ctx.write(cell + 1, top);
        if ctx.cas(base + Self::TOP, top, cell) {
            true
        } else {
            // A basket insert may fail non-deterministically (spec §5.2.1);
            // the enqueuer will retry at the (possibly new) tail.
            ctx.free(cell, Self::CELL_WORDS);
            false
        }
    }

    fn extract<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, _id: usize) -> u64 {
        loop {
            let top = ctx.read(base + Self::TOP);
            let ptr = top & !SEALED_BIT;
            if ptr == NULL {
                // Empty: seal so that no insert can slip in afterwards.
                if top & SEALED_BIT != 0 || ctx.cas(base + Self::TOP, top, SEALED_BIT) {
                    return NULL_ELEM;
                }
                continue;
            }
            let elem = ctx.read(ptr);
            let next = ctx.read(ptr + 1) & !SEALED_BIT;
            if ctx.cas(base + Self::TOP, top, next | SEALED_BIT) {
                return elem;
            }
        }
    }

    fn is_empty<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) -> bool {
        ctx.read(base + Self::TOP) == SEALED_BIT
    }
}

/// The assembled BQ-Original comparator.
pub type BqOriginal = ModularQueue<LifoBasket, StandardCas>;

/// Builds a BQ-Original queue.
pub fn new_bq_original<C: ThreadCtx>(ctx: &mut C, cfg: QueueConfig) -> BqOriginal {
    ModularQueue::new(ctx, LifoBasket, StandardCas, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use sbq::modular::EnqueuerState;
    use std::sync::Arc;

    #[test]
    fn lifo_basket_contract() {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let b = LifoBasket;
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);
        assert!(b.insert(&mut ctx, base, 1, 0));
        assert!(b.insert(&mut ctx, base, 2, 0));
        assert_eq!(b.extract(&mut ctx, base, 0), 2, "LIFO order");
        // Sealed: all further inserts fail.
        assert!(!b.insert(&mut ctx, base, 3, 0));
        assert_eq!(b.extract(&mut ctx, base, 0), 1);
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
        assert!(b.is_empty(&mut ctx, base));
    }

    #[test]
    fn seal_on_empty_extract_blocks_late_inserts() {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let b = LifoBasket;
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
        assert!(
            !b.insert(&mut ctx, base, 9, 0),
            "sealed-empty rejects inserts"
        );
    }

    #[test]
    fn queue_fifo_single_thread() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = new_bq_original(&mut ctx, QueueConfig::default());
        let mut st = EnqueuerState::default();
        for i in 1..=100u64 {
            q.enqueue(&mut ctx, &mut st, i);
        }
        for i in 1..=100u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn queue_conservation_concurrent() {
        const N: usize = 4;
        const PER: u64 = 1_000;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = {
            let mut ctx = heap.ctx(0);
            new_bq_original(
                &mut ctx,
                QueueConfig {
                    max_threads: N,
                    reclaim: true,
                    poison_on_free: false,
                },
            )
        };
        let results = run_threads(&heap, N, |ctx| {
            let tid = ctx.thread_id() as u64;
            let mut st = EnqueuerState::default();
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, &mut st, tid * PER + i + 1);
                if let Some(v) = q.dequeue(ctx) {
                    got.push(v);
                }
            }
            while let Some(v) = q.dequeue(ctx) {
                got.push(v);
            }
            got
        });
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=N as u64 * PER).collect();
        assert_eq!(all, expect);
    }
}
