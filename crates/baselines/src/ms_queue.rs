//! The Michael–Scott lock-free queue (PODC 1996), the ancestor every
//! queue in the paper's evaluation descends from (§5.1).
//!
//! This is the classic standalone formulation — one element per node,
//! retried tail CAS — written against [`absmem::ThreadCtx`] so it runs on
//! both the native backend and the coherence simulator. It serves two
//! roles: a cross-check for the modular framework's `SingleBasket`
//! instantiation (which must behave identically), and the base case of the
//! benchmark suite.
//!
//! Memory reclamation uses the same protector/retired-pointer epoch scheme
//! as the paper's queues (Algorithm 7), adapted to the one-element nodes.

use absmem::{Addr, ThreadCtx, NULL};

// Descriptor layout.
const HEAD: u64 = 0;
const TAIL: u64 = 1;
const RETIRED: u64 = 2;
const PROT: u64 = 3;

// Node layout.
const NEXT: u64 = 0;
const INDEX: u64 = 1;
const VALUE: u64 = 2;
const NODE_WORDS: usize = 3;

/// A Michael–Scott queue handle over abstract memory. Values are `u64`
/// with `0` reserved as "empty".
#[derive(Debug, Clone, Copy)]
pub struct MsQueue {
    base: Addr,
    max_threads: usize,
    reclaim: bool,
}

impl MsQueue {
    /// Creates the queue (empty sentinel) from a single thread.
    pub fn new<C: ThreadCtx>(ctx: &mut C, max_threads: usize, reclaim: bool) -> Self {
        let base = ctx.alloc(3 + max_threads);
        let q = MsQueue {
            base,
            max_threads,
            reclaim,
        };
        let sentinel = q.new_node(ctx, 0, 0);
        ctx.write(base + HEAD, sentinel);
        ctx.write(base + TAIL, sentinel);
        ctx.write(base + RETIRED, sentinel);
        for i in 0..max_threads as u64 {
            ctx.write(base + PROT + i, NULL);
        }
        q
    }

    /// Descriptor address, for cross-thread handle reconstruction.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Rebuilds a handle from a published descriptor address.
    pub fn from_base(base: Addr, max_threads: usize, reclaim: bool) -> Self {
        MsQueue {
            base,
            max_threads,
            reclaim,
        }
    }

    fn new_node<C: ThreadCtx>(&self, ctx: &mut C, index: u64, value: u64) -> Addr {
        let n = ctx.alloc(NODE_WORDS);
        ctx.write(n + NEXT, NULL);
        ctx.write(n + INDEX, index);
        ctx.write(n + VALUE, value);
        n
    }

    fn prot(&self, id: usize) -> Addr {
        debug_assert!(id < self.max_threads);
        self.base + PROT + id as u64
    }

    fn protect<C: ThreadCtx>(&self, ctx: &mut C, ptr: Addr, id: usize) -> Addr {
        let p = self.prot(id);
        loop {
            let v = ctx.read(ptr);
            ctx.write(p, v);
            if ctx.read(ptr) == v {
                return v;
            }
        }
    }

    fn unprotect<C: ThreadCtx>(&self, ctx: &mut C, id: usize) {
        ctx.write(self.prot(id), NULL);
    }

    fn free_nodes<C: ThreadCtx>(&self, ctx: &mut C) {
        if !self.reclaim {
            return;
        }
        let retired = ctx.swap(self.base + RETIRED, NULL);
        if retired == NULL {
            return;
        }
        let mut min_index = u64::MAX;
        for i in 0..self.max_threads {
            let p = ctx.read(self.prot(i));
            if p != NULL {
                min_index = min_index.min(ctx.read(p + INDEX));
            }
        }
        let tail = ctx.read(self.base + TAIL);
        min_index = min_index.min(ctx.read(tail + INDEX));
        let mut r = retired;
        loop {
            if r == ctx.read(self.base + HEAD) || ctx.read(r + INDEX) >= min_index {
                break;
            }
            let next = ctx.read(r + NEXT);
            ctx.free(r, NODE_WORDS);
            r = next;
        }
        ctx.write(self.base + RETIRED, r);
    }

    /// Appends `value` (must be nonzero).
    pub fn enqueue<C: ThreadCtx>(&self, ctx: &mut C, value: u64) {
        debug_assert_ne!(value, 0, "0 is the empty sentinel");
        let id = ctx.thread_id();
        let mut t = self.protect(ctx, self.base + TAIL, id);
        let node = self.new_node(ctx, 0, value);
        loop {
            let next = ctx.read(t + NEXT);
            if next != NULL {
                // Help swing the lagging tail, then retry from it.
                ctx.cas(self.base + TAIL, t, next);
                t = self.protect(ctx, self.base + TAIL, id);
                continue;
            }
            let idx = ctx.read(t + INDEX) + 1;
            ctx.write(node + INDEX, idx);
            if ctx.cas(t + NEXT, NULL, node) {
                ctx.cas(self.base + TAIL, t, node);
                break;
            }
            // Failed CAS: plain retry — the non-scalable behaviour the
            // baskets queue was invented to avoid.
        }
        self.unprotect(ctx, id);
    }

    /// Removes and returns the oldest value, or `None` when empty.
    pub fn dequeue<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let id = ctx.thread_id();
        let result = loop {
            let h = self.protect(ctx, self.base + HEAD, id);
            let t = ctx.read(self.base + TAIL);
            let next = ctx.read(h + NEXT);
            if next == NULL {
                break None;
            }
            if h == t {
                // Tail is lagging; help it forward.
                ctx.cas(self.base + TAIL, t, next);
            }
            let value = ctx.read(next + VALUE);
            // `planted-bug` (a test-only feature, never enabled by
            // default) deliberately treats a lost head swing as a win, so
            // two contending dequeuers return the same value. It exists
            // solely as the known defect the simfuzz harness must be able
            // to find, shrink, and replay.
            let won = ctx.cas(self.base + HEAD, h, next);
            if won || cfg!(feature = "planted-bug") {
                break Some(value);
            }
        };
        self.free_nodes(ctx);
        self.unprotect(ctx, id);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = MsQueue::new(&mut ctx, 4, true);
        assert_eq!(q.dequeue(&mut ctx), None);
        for i in 1..=200u64 {
            q.enqueue(&mut ctx, i);
        }
        for i in 1..=200u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn mpmc_conservation_native() {
        const N: usize = 4;
        const PER: u64 = 1_500;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = {
            let mut ctx = heap.ctx(0);
            MsQueue::new(&mut ctx, N, true)
        };
        let results = run_threads(&heap, N, |ctx| {
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, tid * PER + i + 1);
                if let Some(v) = q.dequeue(ctx) {
                    got.push(v);
                }
            }
            // Drain leftovers.
            while let Some(v) = q.dequeue(ctx) {
                got.push(v);
            }
            got
        });
        let mut all: Vec<u64> = results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=N as u64 * PER).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn per_thread_order_preserved() {
        // Values from one producer must come out in that producer's order.
        const N: usize = 3;
        const PER: u64 = 800;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = {
            let mut ctx = heap.ctx(0);
            MsQueue::new(&mut ctx, N, true)
        };
        let results = run_threads(&heap, N, |ctx| {
            let tid = ctx.thread_id() as u64;
            let mut got = Vec::new();
            for i in 0..PER {
                q.enqueue(ctx, (tid << 32) | (i + 1));
                if let Some(v) = q.dequeue(ctx) {
                    got.push(v);
                }
            }
            while let Some(v) = q.dequeue(ctx) {
                got.push(v);
            }
            got
        });
        // Reconstruct per-producer subsequences across all consumers: for
        // a linearizable FIFO drained via interleaved dequeues, each
        // consumer's view of one producer must be increasing.
        for got in &results {
            let mut last: [u64; N] = [0; N];
            for &v in got {
                let p = (v >> 32) as usize;
                let seq = v & 0xffff_ffff;
                assert!(seq > last[p], "per-producer order violated");
                last[p] = seq;
            }
        }
    }
}
