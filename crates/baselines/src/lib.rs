//! # baselines — the comparator queues of the paper's evaluation (§6.1)
//!
//! Every queue the paper measures SBQ against, implemented from scratch
//! over [`absmem::ThreadCtx`] so that the same code runs natively and on
//! the coherence simulator:
//!
//! * [`ms_queue`] — the Michael–Scott queue: the classic retried-CAS
//!   design and the framework's common ancestor.
//! * [`bq_original`] — BQ-Original, the original baskets queue, expressed
//!   as the modular queue with a self-sealing LIFO basket.
//! * [`wf_queue`] — WF-Queue, Yang & Mellor-Crummey's FAA-based queue
//!   (fast path; see that module for the documented slow-path deviation).
//! * [`cc_queue`] — CC-Queue, Fatourou & Kallimanis's combining queue
//!   (CC-Synch protocol over a sequential list).
//!
//! None of these scale: each performs at least one contended atomic RMW
//! per operation (§3.2) — which is precisely what the benchmarks must
//! show.

pub mod bq_original;
pub mod cc_queue;
pub mod ms_queue;
pub mod ms_queue_hp;
pub mod wf_queue;

pub use bq_original::{new_bq_original, BqOriginal, LifoBasket};
pub use cc_queue::{CcHandle, CcQueue};
pub use ms_queue::MsQueue;
pub use ms_queue_hp::{MsHpThread, MsQueueHp};
pub use wf_queue::{WfHandle, WfQueue, SEG_CELLS};
