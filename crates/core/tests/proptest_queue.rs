//! Property-based tests of the SBQ building blocks against executable
//! reference models, driven by deterministic `simrng` scripts (the
//! workspace carries no external property-testing dependency).

use absmem::native::NativeHeap;
use absmem::{StandardCas, ThreadCtx};
use sbq::basket::{Basket, SbqBasket, NULL_ELEM};
use sbq::modular::{EnqueuerState, ModularQueue, QueueConfig};
use simrng::SimRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Sequential queue operations driven from a random script: the modular
/// SBQ must match a VecDeque exactly.
fn check_against_model(ops: &[bool], basket_cap: usize) {
    let heap = Arc::new(NativeHeap::new(1 << 22));
    let mut ctx = heap.ctx(0);
    let q = ModularQueue::new(
        &mut ctx,
        SbqBasket::new(basket_cap),
        StandardCas,
        QueueConfig {
            max_threads: basket_cap,
            reclaim: true,
            poison_on_free: true,
        },
    );
    let mut st = EnqueuerState::default();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 1u64;
    for &is_enq in ops {
        if is_enq {
            q.enqueue(&mut ctx, &mut st, next);
            model.push_back(next);
            next += 1;
        } else {
            assert_eq!(q.dequeue(&mut ctx), model.pop_front());
        }
    }
    // Drain and compare the remainder.
    while let Some(m) = model.pop_front() {
        assert_eq!(q.dequeue(&mut ctx), Some(m));
    }
    assert_eq!(q.dequeue(&mut ctx), None);
}

/// Random enqueue/dequeue script of length `1..max_len`.
fn random_ops(rng: &mut SimRng, max_len: usize) -> Vec<bool> {
    let n = 1 + rng.gen_usize(max_len - 1);
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

#[test]
fn sbq_matches_fifo_model() {
    let mut rng = SimRng::seed_from_u64(0xf1f0);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 400);
        check_against_model(&ops, 4);
    }
}

#[test]
fn sbq_matches_fifo_model_tiny_basket() {
    let mut rng = SimRng::seed_from_u64(0xf1f1);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 200);
        check_against_model(&ops, 1);
    }
}

/// Basket invariant: a sequential mix of inserts and extracts never loses
/// or duplicates an element, and once empty is indicated no extract
/// succeeds (the §5.3.2 property).
#[test]
fn basket_conserves_and_empty_is_sticky() {
    let mut rng = SimRng::seed_from_u64(0xba5e);
    for case in 0..64u32 {
        let cap = 4;
        let script: Vec<(usize, bool)> = {
            let n = 1 + rng.gen_usize(59);
            (0..n)
                .map(|_| (rng.gen_usize(4), rng.gen_bool(0.5)))
                .collect()
        };
        let b = SbqBasket::new(cap);
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);

        let mut inserted: Vec<u64> = Vec::new();
        let mut extracted: Vec<u64> = Vec::new();
        let mut used_ids = [false; 4];
        let mut empty_seen = false;
        let mut v = 100u64;
        for (id, do_insert) in script {
            if do_insert && !used_ids[id] {
                v += 1;
                if b.insert(&mut ctx, base, v, id) {
                    inserted.push(v);
                }
                used_ids[id] = true;
            } else {
                let e = b.extract(&mut ctx, base, id);
                if e != NULL_ELEM {
                    assert!(
                        !empty_seen,
                        "case {case}: extract succeeded after empty indication"
                    );
                    extracted.push(e);
                } else {
                    empty_seen = true;
                }
                if b.is_empty(&mut ctx, base) {
                    empty_seen = true;
                }
            }
        }
        // Drain.
        loop {
            let e = b.extract(&mut ctx, base, 0);
            if e == NULL_ELEM {
                break;
            }
            assert!(
                !empty_seen,
                "case {case}: extract succeeded after empty indication"
            );
            extracted.push(e);
        }
        // No duplicates, and everything extracted was inserted.
        let mut ex = extracted.clone();
        ex.sort_unstable();
        ex.dedup();
        assert_eq!(ex.len(), extracted.len(), "case {case}: duplicate element");
        for e in &extracted {
            assert!(inserted.contains(e), "case {case}: phantom element {e}");
        }
    }
}

/// Non-proptest regression: a dequeue interleaved through many nodes
/// (basket capacity 2) exercises the node-skip path.
#[test]
fn dequeue_skips_emptied_nodes() {
    let heap = Arc::new(NativeHeap::new(1 << 22));
    let mut ctx = heap.ctx(0);
    let q = ModularQueue::new(
        &mut ctx,
        SbqBasket::new(2),
        StandardCas,
        QueueConfig {
            max_threads: 2,
            reclaim: false,
            poison_on_free: false,
        },
    );
    let mut st = EnqueuerState::default();
    for i in 1..=64u64 {
        q.enqueue(&mut ctx, &mut st, i);
    }
    for i in 1..=64u64 {
        assert_eq!(q.dequeue(&mut ctx), Some(i));
    }
    assert_eq!(q.dequeue(&mut ctx), None);
}
