//! Property-based tests of the SBQ building blocks against executable
//! reference models.

use absmem::native::NativeHeap;
use absmem::{StandardCas, ThreadCtx};
use proptest::prelude::*;
use sbq::basket::{Basket, SbqBasket, NULL_ELEM};
use sbq::modular::{EnqueuerState, ModularQueue, QueueConfig};
use std::collections::VecDeque;
use std::sync::Arc;

/// Sequential queue operations driven from a proptest-generated script:
/// the modular SBQ must match a VecDeque exactly.
fn check_against_model(ops: &[bool], basket_cap: usize) {
    let heap = Arc::new(NativeHeap::new(1 << 22));
    let mut ctx = heap.ctx(0);
    let q = ModularQueue::new(
        &mut ctx,
        SbqBasket::new(basket_cap),
        StandardCas,
        QueueConfig {
            max_threads: basket_cap,
            reclaim: true,
            poison_on_free: true,
        },
    );
    let mut st = EnqueuerState::default();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 1u64;
    for &is_enq in ops {
        if is_enq {
            q.enqueue(&mut ctx, &mut st, next);
            model.push_back(next);
            next += 1;
        } else {
            assert_eq!(q.dequeue(&mut ctx), model.pop_front());
        }
    }
    // Drain and compare the remainder.
    while let Some(m) = model.pop_front() {
        assert_eq!(q.dequeue(&mut ctx), Some(m));
    }
    assert_eq!(q.dequeue(&mut ctx), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sbq_matches_fifo_model(ops in proptest::collection::vec(proptest::bool::ANY, 1..400)) {
        check_against_model(&ops, 4);
    }

    #[test]
    fn sbq_matches_fifo_model_tiny_basket(ops in proptest::collection::vec(proptest::bool::ANY, 1..200)) {
        check_against_model(&ops, 1);
    }

    /// Basket invariant: a sequential mix of inserts and extracts never
    /// loses or duplicates an element, and once empty is indicated no
    /// extract succeeds (the §5.3.2 property).
    #[test]
    fn basket_conserves_and_empty_is_sticky(
        script in proptest::collection::vec((0usize..4, proptest::bool::ANY), 1..60)
    ) {
        let cap = 4;
        let b = SbqBasket::new(cap);
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);

        let mut inserted: Vec<u64> = Vec::new();
        let mut extracted: Vec<u64> = Vec::new();
        let mut used_ids = [false; 4];
        let mut empty_seen = false;
        let mut v = 100u64;
        for (id, do_insert) in script {
            if do_insert && !used_ids[id] {
                v += 1;
                if b.insert(&mut ctx, base, v, id) {
                    inserted.push(v);
                }
                used_ids[id] = true;
            } else {
                let e = b.extract(&mut ctx, base, id);
                if e != NULL_ELEM {
                    prop_assert!(!empty_seen, "extract succeeded after empty indication");
                    extracted.push(e);
                } else {
                    empty_seen = true;
                }
                if b.is_empty(&mut ctx, base) {
                    empty_seen = true;
                }
            }
        }
        // Drain.
        loop {
            let e = b.extract(&mut ctx, base, 0);
            if e == NULL_ELEM { break; }
            prop_assert!(!empty_seen, "extract succeeded after empty indication");
            extracted.push(e);
        }
        // No duplicates, and everything extracted was inserted.
        let mut ex = extracted.clone();
        ex.sort_unstable();
        ex.dedup();
        prop_assert_eq!(ex.len(), extracted.len());
        for e in &extracted {
            prop_assert!(inserted.contains(e));
        }
    }
}

/// Non-proptest regression: a dequeue interleaved through many nodes
/// (basket capacity 2) exercises the node-skip path.
#[test]
fn dequeue_skips_emptied_nodes() {
    let heap = Arc::new(NativeHeap::new(1 << 22));
    let mut ctx = heap.ctx(0);
    let q = ModularQueue::new(
        &mut ctx,
        SbqBasket::new(2),
        StandardCas,
        QueueConfig {
            max_threads: 2,
            reclaim: false,
            poison_on_free: false,
        },
    );
    let mut st = EnqueuerState::default();
    for i in 1..=64u64 {
        q.enqueue(&mut ctx, &mut st, i);
    }
    for i in 1..=64u64 {
        assert_eq!(q.dequeue(&mut ctx), Some(i));
    }
    assert_eq!(q.dequeue(&mut ctx), None);
}
