//! The assembled SBQ variants evaluated in the paper (§6.1).
//!
//! Both are the modular baskets queue with the scalable basket; they
//! differ only in the tail-append CAS strategy:
//!
//! * **SBQ-HTM** uses [`TxCas`] and therefore requires an HTM-capable
//!   backend ([`htm::HtmOps`]) — in this repository, the coherence
//!   simulator.
//! * **SBQ-CAS** uses [`absmem::DelayedCas`] (same delay placement, plain
//!   CAS) and runs on any backend; it is the paper's control for isolating
//!   TxCAS's contribution from the scalable basket's.

use crate::basket::SbqBasket;
use crate::modular::{ModularQueue, QueueConfig};
use crate::txcas::{TxCas, TxCasParams};
use absmem::{DelayedCas, ThreadCtx};

/// SBQ-HTM: scalable basket + TxCAS append.
pub type SbqHtmQueue = ModularQueue<SbqBasket, TxCas>;

/// SBQ-CAS: scalable basket + delayed plain CAS append.
pub type SbqCasQueue = ModularQueue<SbqBasket, DelayedCas>;

/// Builds an SBQ-HTM queue. `basket_capacity` is the cell count (the
/// paper uses the machine's hardware thread count, 44); `inserters` bounds
/// the extraction scan (the number of enqueuer threads in the run).
pub fn new_sbq_htm<C: ThreadCtx>(
    ctx: &mut C,
    basket_capacity: usize,
    inserters: usize,
    params: TxCasParams,
    cfg: QueueConfig,
) -> SbqHtmQueue {
    ModularQueue::new(
        ctx,
        SbqBasket::with_inserters(basket_capacity, inserters),
        TxCas::new(params),
        cfg,
    )
}

/// Builds an SBQ-CAS queue with the same delay the TxCAS variant uses.
pub fn new_sbq_cas<C: ThreadCtx>(
    ctx: &mut C,
    basket_capacity: usize,
    inserters: usize,
    delay_cycles: u64,
    cfg: QueueConfig,
) -> SbqCasQueue {
    ModularQueue::new(
        ctx,
        SbqBasket::with_inserters(basket_capacity, inserters),
        DelayedCas { delay_cycles },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::EnqueuerState;
    use absmem::native::NativeHeap;
    use std::sync::Arc;

    #[test]
    fn sbq_cas_fifo_on_native_backend() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = new_sbq_cas(
            &mut ctx,
            8,
            8,
            10,
            QueueConfig {
                max_threads: 8,
                reclaim: true,
                poison_on_free: true,
            },
        );
        let mut st = EnqueuerState::default();
        for i in 1..=50u64 {
            q.enqueue(&mut ctx, &mut st, i);
        }
        for i in 1..=50u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }
}
