//! TxCAS — the HTM-based scalable compare-and-set (paper §4, Algorithm 1).
//!
//! A CAS implemented as a hardware transaction splits its coherence
//! footprint into a *read* (shared ownership) followed by a *write*
//! (exclusive ownership). The write's single GetM aborts every concurrent
//! transaction that has only read — and those aborts are delivered
//! concurrently, so CAS *failures* stop serializing (§3.3). The design
//! below layers the paper's three practical mechanisms on that insight:
//!
//! 1. **Intra-transaction delay** (§4.1) between the read and the write:
//!    it lets one winner's write abort as many readers as possible before
//!    they issue their own (pointless, contention-adding) GetM requests,
//!    and it keeps low-concurrency executions from degrading into
//!    serialized successful CASes.
//! 2. **Nested-transaction triage** (§4.2): the read runs in a flat-nested
//!    transaction, so the NESTED bit of the abort status reveals whether
//!    the conflict hit before the write step. Only then can the CAS have
//!    "failed because the value changed".
//! 3. **Post-abort delayed verification** (§4.2): after a read-phase
//!    conflict, TxCAS waits out the winner's in-flight GetM before
//!    re-reading the target — a read issued immediately would trip the
//!    writer (§3.4) — and returns `false` only if the value really
//!    changed.
//!
//! The wait-free fallback: after `max_retries` transactional attempts the
//! operation falls back to one plain CAS, bounding every call (§4,
//! "Progress"). In practice the fallback never triggers (we assert as much
//! in benchmarks via [`TxCasStats`]).

use absmem::{Addr, CasStrategy};
use htm::{nested, status, transaction, HtmOps};
use std::cell::RefCell;

/// Tuning parameters for TxCAS.
#[derive(Debug, Clone, Copy)]
pub struct TxCasParams {
    /// Intra-transaction delay between the CAS read and the CAS write,
    /// cycles. The paper empirically tunes ≈270 ns ≈ 600 cycles (§4.1).
    pub intra_delay: u64,
    /// Post-abort delay before re-reading the target location, cycles.
    /// Sized to let an in-flight writer's GetM complete: the
    /// intra-processor window is 30–60 cycles (§4.3).
    pub post_abort_delay: u64,
    /// Transactional attempts before falling back to a plain CAS, making
    /// TxCAS wait-free.
    pub max_retries: u32,
}

impl Default for TxCasParams {
    fn default() -> Self {
        TxCasParams {
            intra_delay: 600,
            post_abort_delay: 70,
            max_retries: 64,
        }
    }
}

/// Per-thread TxCAS outcome counters (success/failure paths and abort
/// kinds), for the ablation experiments.
#[derive(Debug, Default, Clone)]
pub struct TxCasStats {
    /// Calls that returned `true`.
    pub success: u64,
    /// Calls that returned `false` via the self-abort (value mismatch read
    /// inside the transaction).
    pub fail_self_abort: u64,
    /// Calls that returned `false` via the post-abort re-read.
    pub fail_post_abort: u64,
    /// Transactional attempts beyond the first, summed.
    pub retries: u64,
    /// Calls that exhausted `max_retries` and fell back to a plain CAS.
    pub fallbacks: u64,
}

/// Transactional compare-and-set (paper Algorithm 1).
///
/// Returns `true` iff this call installed `new`; `false` only if the
/// location was observed to differ from `old` (i.e., some other write
/// succeeded), preserving CAS semantics.
pub fn txn_cas<C: HtmOps>(
    ctx: &mut C,
    p: &TxCasParams,
    ptr: Addr,
    old: u64,
    new: u64,
    stats: &mut TxCasStats,
) -> bool {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempts > p.max_retries {
            // Wait-free fallback: one plain CAS decides.
            stats.fallbacks += 1;
            return ctx.cas(ptr, old, new);
        }
        if attempts > 1 {
            stats.retries += 1;
        }
        let ret = transaction(ctx, |ctx| {
            nested(ctx, |ctx| {
                let value = ctx.htm_read(ptr)?;
                if value != old {
                    // Self-abort code 1: value mismatch.
                    return Err(ctx.htm_abort(1));
                }
                ctx.htm_delay(p.intra_delay)?;
                Ok(())
            })?;
            ctx.htm_write(ptr, new)?;
            Ok(())
        });
        let status_word = match ret {
            Ok(()) => {
                // Code following a successful commit.
                stats.success += 1;
                return true;
            }
            Err(s) => s,
        };
        if status::is_explicit(status_word) && status::code(status_word) == 1 {
            // The transaction itself saw *ptr != old.
            stats.fail_self_abort += 1;
            return false;
        }
        if !(status::is_conflict(status_word) && status::is_nested(status_word)) {
            // Either a non-conflict abort (spurious), or a conflict that
            // hit the main transaction — i.e. at/after the write step. Our
            // write may have been the tripped writer; retry immediately,
            // a post-abort delay would be wasted time (§4.2).
            continue;
        }
        // Conflict during the nested (read/delay) phase: a winner's write
        // is in flight. Give its GetM time to complete before reading —
        // reading immediately would likely trip it (§4.2).
        ctx.delay(p.post_abort_delay);
        if ctx.read(ptr) != old {
            stats.fail_post_abort += 1;
            return false;
        }
    }
}

/// [`CasStrategy`] plugging TxCAS into the modular baskets queue. Keeps
/// per-thread stats behind a `Cell`-based accumulator so the strategy can
/// be shared immutably.
#[derive(Debug)]
pub struct TxCas {
    /// Tuning parameters.
    pub params: TxCasParams,
    stats: RefCell<TxCasStats>,
}

impl Clone for TxCas {
    fn clone(&self) -> Self {
        TxCas {
            params: self.params,
            stats: RefCell::new(self.stats.borrow().clone()),
        }
    }
}

impl TxCas {
    /// Creates the strategy with the given parameters.
    pub fn new(params: TxCasParams) -> Self {
        TxCas {
            params,
            stats: RefCell::new(TxCasStats::default()),
        }
    }

    /// Returns a copy of the accumulated statistics.
    pub fn take_stats(&self) -> TxCasStats {
        self.stats.borrow().clone()
    }
}

impl Default for TxCas {
    fn default() -> Self {
        TxCas::new(TxCasParams::default())
    }
}

impl<C: HtmOps> CasStrategy<C> for TxCas {
    fn cas(&self, ctx: &mut C, a: Addr, old: u64, new: u64) -> bool {
        let mut stats = self.stats.borrow_mut();
        txn_cas(ctx, &self.params, a, old, new, &mut stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::ThreadCtx;
    use coherence::{Machine, MachineConfig, Program, SimCtx};
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
    use std::sync::{Arc, Mutex};

    fn run_txcas_race(
        cores: usize,
        params: TxCasParams,
        spurious: f64,
    ) -> (coherence::RunReport, Vec<(bool, TxCasStats)>) {
        let mut cfg = MachineConfig::single_socket(cores);
        cfg.spurious_abort_prob = spurious;
        cfg.check_invariants = false;
        let shared = Arc::new(AtomicU64::new(0));
        let results = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&shared);
        let programs: Vec<Program> = (0..cores)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let results = Arc::clone(&results);
                Box::new(move |ctx: &mut SimCtx| {
                    let a = shared.load(SeqCst);
                    let mut stats = TxCasStats::default();
                    let ok = txn_cas(ctx, &params, a, 0, i as u64 + 1, &mut stats);
                    results.lock().unwrap().push((i, ok, stats));
                }) as Program
            })
            .collect();
        let report = Machine::new(cfg).run(
            Box::new(move |ctx| {
                let a = ctx.alloc(1);
                ctx.write(a, 0);
                s2.store(a, SeqCst);
            }),
            programs,
        );
        let mut r = results.lock().unwrap().clone();
        r.sort_by_key(|(i, _, _)| *i);
        (report, r.into_iter().map(|(_, ok, s)| (ok, s)).collect())
    }

    #[test]
    fn single_thread_txcas_succeeds_and_fails_correctly() {
        let mut cfg = MachineConfig::single_socket(1);
        cfg.check_invariants = false;
        let out = Arc::new(Mutex::new((false, false, 0u64)));
        let o2 = Arc::clone(&out);
        Machine::new(cfg).run(
            Box::new(|_| {}),
            vec![Box::new(move |ctx: &mut SimCtx| {
                let a = ctx.alloc(1);
                ctx.write(a, 10);
                let p = TxCasParams {
                    intra_delay: 50,
                    ..Default::default()
                };
                let mut st = TxCasStats::default();
                let ok = txn_cas(ctx, &p, a, 10, 20, &mut st);
                let bad = txn_cas(ctx, &p, a, 10, 30, &mut st);
                *o2.lock().unwrap() = (ok, bad, ctx.read(a));
            }) as Program],
        );
        let (ok, bad, v) = *out.lock().unwrap();
        assert!(ok, "matching old must succeed");
        assert!(!bad, "stale old must fail");
        assert_eq!(v, 20);
    }

    #[test]
    fn contended_txcas_elects_exactly_one_winner() {
        for cores in [2usize, 4, 8] {
            let (_, results) = run_txcas_race(cores, TxCasParams::default(), 0.0);
            let winners = results.iter().filter(|(ok, _)| *ok).count();
            assert_eq!(winners, 1, "cores={cores}: exactly one TxCAS must win");
        }
    }

    #[test]
    fn losers_fail_only_after_value_changed() {
        // CAS semantics: every `false` return implies the winner's value
        // was installed; since all CAS the same old value 0, the final
        // value must be the winner's.
        let (_, results) = run_txcas_race(6, TxCasParams::default(), 0.0);
        let winners: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, (ok, _))| *ok)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(winners.len(), 1);
        for (i, (ok, s)) in results.iter().enumerate() {
            if !ok {
                assert!(
                    s.fail_self_abort + s.fail_post_abort == 1,
                    "loser {i} must fail through a value-check path: {s:?}"
                );
            }
        }
    }

    #[test]
    fn spurious_aborts_are_retried_not_failed() {
        // With a 50% spurious abort rate and one thread, TxCAS must still
        // succeed (retry path), never report a false failure.
        let (_, results) = run_txcas_race(1, TxCasParams::default(), 0.5);
        assert!(results[0].0, "spurious aborts must not fail the CAS");
    }

    #[test]
    fn fallback_bounds_the_retry_loop() {
        // Force every transaction to abort spuriously: the fallback plain
        // CAS must complete the operation.
        let params = TxCasParams {
            max_retries: 3,
            ..Default::default()
        };
        let (_, results) = run_txcas_race(1, params, 1.0);
        let (ok, stats) = &results[0];
        assert!(*ok, "fallback CAS must succeed");
        assert_eq!(stats.fallbacks, 1);
    }
}
