//! An experimental basket with scalable *dequeues* — the paper's stated
//! future work (§8: "designing a basket with scalable dequeue
//! operations").
//!
//! The SBQ basket's extraction bottleneck is the FAA ticket counter: every
//! extractor serializes on one line (§5.3.4). The striped basket removes
//! the counter entirely: each extractor starts scanning at its own stripe
//! (a per-thread offset into the cell array) and claims cells with SWAP,
//! wrapping around until it finds an element or has visited every cell.
//!
//! Properties (same contract as [`crate::basket::Basket`], §5.2.1
//! plus the §5.3.2 emptiness condition):
//!
//! * inserts are still synchronization-free (private cell CAS);
//! * extraction is contention-free when the basket is well-filled —
//!   extractors touch disjoint stripes;
//! * an extractor that completes a full wrap having found every cell
//!   claimed (never `INSERT_MARK`) knows no future insert can succeed, so
//!   declaring empty is sticky — the property the queue's linearizability
//!   proof needs;
//! * the trade-off: near-empty baskets cost O(B) scans (the SBQ basket's
//!   counter answers "which cells remain" in O(1)), and an extractor may
//!   claim-and-skip INSERT cells belonging to enqueuers that never came,
//!   exactly like the original.
//!
//! The `ablate-deq` bench target compares both baskets on the
//! consumer-only workload.

use crate::basket::{Basket, EMPTY_MARK, INSERT_MARK, NULL_ELEM};
use absmem::{Addr, ThreadCtx};

/// Striped-scan basket. Layout (`1 + capacity` words):
///
/// ```text
/// base+0   empty  — sticky empty bit
/// base+1+i cells[i]
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StripedBasket {
    /// Number of cells; also the bound on inserter ids.
    pub capacity: usize,
    /// Active inserters (cells beyond this are never filled, and a wrap
    /// only scans `0..inserters`).
    pub inserters: usize,
}

impl StripedBasket {
    /// A basket with `capacity` cells, all insertable.
    pub fn new(capacity: usize) -> Self {
        StripedBasket {
            capacity,
            inserters: capacity,
        }
    }

    /// Fixed capacity with a smaller active-inserter bound.
    pub fn with_inserters(capacity: usize, inserters: usize) -> Self {
        assert!(inserters > 0 && inserters <= capacity);
        StripedBasket {
            capacity,
            inserters,
        }
    }

    const EMPTY: u64 = 0;
    const CELLS: u64 = 1;

    /// The stripe (starting cell) for extractor `id`: spread extractors
    /// across the active cells.
    fn stripe(&self, id: usize) -> u64 {
        if self.inserters == 0 {
            return 0;
        }
        // A multiplicative shuffle so consecutive ids land far apart.
        (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.inserters as u64
    }
}

impl Basket for StripedBasket {
    fn words(&self) -> usize {
        1 + self.capacity
    }

    fn init<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) {
        ctx.write(base + Self::EMPTY, 0);
        for i in 0..self.capacity as u64 {
            ctx.write(base + Self::CELLS + i, INSERT_MARK);
        }
    }

    fn reset_single<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, id: usize) {
        ctx.write(base + Self::CELLS + id as u64, INSERT_MARK);
    }

    fn insert<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, elem: u64, id: usize) -> bool {
        assert!(
            id < self.capacity,
            "inserter id {id} out of range (capacity {})",
            self.capacity
        );
        if id >= self.inserters {
            return false;
        }
        ctx.cas(base + Self::CELLS + id as u64, INSERT_MARK, elem)
    }

    fn extract<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, id: usize) -> u64 {
        if ctx.read(base + Self::EMPTY) != 0 {
            return NULL_ELEM;
        }
        let n = self.inserters as u64;
        let start = self.stripe(id);
        // One full wrap; claim every cell visited so that a completed
        // empty wrap is conclusive.
        for step in 0..n {
            let idx = (start + step) % n;
            let cell = base + Self::CELLS + idx;
            // Cheap pre-read: skip cells already claimed without an RMW.
            if ctx.read(cell) == EMPTY_MARK {
                continue;
            }
            let v = ctx.swap(cell, EMPTY_MARK);
            if v != INSERT_MARK && v != EMPTY_MARK {
                return v;
            }
            // v == INSERT_MARK: claimed an unfilled cell (its inserter can
            // no longer deposit) — keep scanning.
            // v == EMPTY_MARK: raced with another extractor — keep going.
        }
        // Full wrap, everything claimed: no element can ever appear again.
        ctx.write(base + Self::EMPTY, 1);
        NULL_ELEM
    }

    fn is_empty<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) -> bool {
        ctx.read(base + Self::EMPTY) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    fn setup(b: &StripedBasket) -> (Arc<NativeHeap>, Addr) {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);
        (heap, base)
    }

    #[test]
    fn roundtrip_and_conservation() {
        let b = StripedBasket::new(8);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        for id in 0..8 {
            assert!(b.insert(&mut ctx, base, 100 + id as u64, id));
        }
        let mut got: Vec<u64> = (0..8).map(|_| b.extract(&mut ctx, base, 3)).collect();
        got.sort_unstable();
        assert_eq!(got, (100..108).collect::<Vec<u64>>());
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
        assert!(b.is_empty(&mut ctx, base));
    }

    #[test]
    fn empty_wrap_is_sticky_and_blocks_inserts() {
        let b = StripedBasket::new(4);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert_eq!(b.extract(&mut ctx, base, 1), NULL_ELEM);
        assert!(b.is_empty(&mut ctx, base));
        for id in 0..4 {
            assert!(
                !b.insert(&mut ctx, base, 7, id),
                "post-empty insert must fail"
            );
        }
        assert_eq!(b.extract(&mut ctx, base, 2), NULL_ELEM);
    }

    #[test]
    fn extractors_start_at_distinct_stripes() {
        let b = StripedBasket::new(16);
        let stripes: std::collections::HashSet<u64> = (0..16).map(|id| b.stripe(id)).collect();
        assert!(stripes.len() >= 8, "stripes too clustered: {stripes:?}");
    }

    #[test]
    fn concurrent_extract_no_duplicates() {
        let b = StripedBasket::new(16);
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let base = {
            let mut ctx = heap.ctx(0);
            let base = ctx.alloc(b.words());
            b.init(&mut ctx, base);
            for id in 0..16 {
                assert!(b.insert(&mut ctx, base, 1000 + id as u64, id));
            }
            base
        };
        let got = run_threads(&heap, 4, |ctx| {
            let id = ctx.thread_id();
            let mut v = Vec::new();
            loop {
                let e = b.extract(ctx, base, id);
                if e == NULL_ELEM {
                    break;
                }
                v.push(e);
            }
            v
        });
        let mut all: Vec<u64> = got.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16, "every element exactly once");
    }

    #[test]
    fn works_as_queue_basket() {
        use crate::modular::{EnqueuerState, ModularQueue, QueueConfig};
        use absmem::StandardCas;
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let mut ctx = heap.ctx(0);
        let q = ModularQueue::new(
            &mut ctx,
            StripedBasket::new(4),
            StandardCas,
            QueueConfig {
                max_threads: 4,
                reclaim: true,
                poison_on_free: true,
            },
        );
        let mut st = EnqueuerState::default();
        for i in 1..=200u64 {
            q.enqueue(&mut ctx, &mut st, i);
        }
        for i in 1..=200u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i), "single-thread FIFO");
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }
}
