//! The basket abstract data type (paper §5.2.1) and the SBQ scalable
//! basket (§5.3.1, Algorithms 8–9).
//!
//! A basket is a linearizable set with three operations: a fallible
//! `insert`, an `extract` that removes *some* element (NULL when empty),
//! and an `empty` check that allows false negatives. The basket interface
//! alone does not imply queue linearizability; an implementation must
//! additionally guarantee the property used in the paper's §5.3.2 proofs:
//! once the basket indicates empty (an extract returns NULL or `empty`
//! returns true at time *t*), every extract invoked after *t* fails.
//!
//! Element encoding: elements are `u64` values in `1..=ELEM_MAX`. `0` is
//! NULL ("no element"); the two top values are the reserved cell markers.

use absmem::{Addr, ThreadCtx};

/// "No element" — returned by `extract` on an empty basket.
pub const NULL_ELEM: u64 = 0;
/// Reserved cell marker: cell awaits its inserter.
pub const INSERT_MARK: u64 = u64::MAX;
/// Reserved cell marker: cell was claimed by an extractor.
pub const EMPTY_MARK: u64 = u64::MAX - 1;
/// Largest legal element value.
pub const ELEM_MAX: u64 = u64::MAX - 2;

/// The pluggable basket ADT of the modular baskets queue (§5.2).
///
/// All operations address the basket's state as `words()` consecutive
/// words starting at `base` (the basket field inside a queue node). `id`
/// is the calling thread's inserter index, dense in `0..inserters`.
pub trait Basket: Clone {
    /// Number of state words a basket instance occupies inside a node.
    fn words(&self) -> usize;

    /// Initializes a freshly allocated basket to the empty state.
    fn init<C: ThreadCtx>(&self, ctx: &mut C, base: Addr);

    /// Constant-time reset after a *single* insert by `id` into a basket
    /// whose node was never linked into the queue (the §5.2.2 node-reuse
    /// optimization).
    fn reset_single<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, id: usize);

    /// Attempts to insert `elem`; may fail non-deterministically.
    fn insert<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, elem: u64, id: usize) -> bool;

    /// Removes and returns some element, or [`NULL_ELEM`] if empty.
    fn extract<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, id: usize) -> u64;

    /// Empty check; false negatives allowed, false positives not.
    fn is_empty<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) -> bool;
}

/// The SBQ scalable basket (Algorithms 8–9).
///
/// Layout (`2 + capacity` words):
///
/// ```text
/// base+0   counter   — FAA ticket dispenser for extractors
/// base+1   empty     — sticky empty bit
/// base+2+i cells[i]  — INSERT_MARK | element | EMPTY_MARK
/// ```
///
/// Inserters write only their private cell (synchronization-free inserts);
/// extractors claim cell indices with one FAA and SWAP the cell out. The
/// `empty` bit short-circuits extractors once the last index is handed
/// out, keeping most of them off the contended counter.
#[derive(Debug, Clone, Copy)]
pub struct SbqBasket {
    /// Number of cells (the paper fixes 44 — the machine's core count).
    pub capacity: usize,
    /// Number of *active* inserters this run; extraction bounds use this
    /// (paper §6.1: "basket emptiness is determined using the number of
    /// enqueuers in the experiment"). Invariant: `inserters <= capacity`.
    pub inserters: usize,
}

impl SbqBasket {
    /// A basket with `capacity` cells, all of which may insert.
    pub fn new(capacity: usize) -> Self {
        SbqBasket {
            capacity,
            inserters: capacity,
        }
    }

    /// A basket with fixed `capacity` but only `inserters` active cells.
    pub fn with_inserters(capacity: usize, inserters: usize) -> Self {
        assert!(inserters <= capacity && inserters > 0);
        SbqBasket {
            capacity,
            inserters,
        }
    }

    const COUNTER: u64 = 0;
    const EMPTY: u64 = 1;
    const CELLS: u64 = 2;
}

impl Basket for SbqBasket {
    fn words(&self) -> usize {
        2 + self.capacity
    }

    fn init<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) {
        ctx.write(base + Self::COUNTER, 0);
        ctx.write(base + Self::EMPTY, 0);
        for i in 0..self.capacity as u64 {
            ctx.write(base + Self::CELLS + i, INSERT_MARK);
        }
    }

    fn reset_single<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, id: usize) {
        // The node was never published, so a plain store suffices to undo
        // the single insert.
        ctx.write(base + Self::CELLS + id as u64, INSERT_MARK);
    }

    fn insert<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, elem: u64, id: usize) -> bool {
        debug_assert!((1..=ELEM_MAX).contains(&elem), "element out of domain");
        // Checked in all builds: an out-of-range id would scribble past
        // the node's allocation — silent corruption in the word arena.
        assert!(
            id < self.capacity,
            "inserter id {id} out of range (capacity {})",
            self.capacity
        );
        if id >= self.inserters {
            // A cell extractors will never scan: the element would be
            // lost. Refuse the insert; the enqueuer retries at the tail.
            return false;
        }
        ctx.cas(base + Self::CELLS + id as u64, INSERT_MARK, elem)
    }

    fn extract<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, _id: usize) -> u64 {
        if ctx.read(base + Self::EMPTY) != 0 {
            return NULL_ELEM;
        }
        loop {
            let index = ctx.faa(base + Self::COUNTER, 1);
            if index >= self.inserters as u64 {
                return NULL_ELEM;
            }
            if index == self.inserters as u64 - 1 {
                // Last ticket: flag the basket empty so future extractors
                // skip the FAA entirely.
                ctx.write(base + Self::EMPTY, 1);
            }
            let element = ctx.swap(base + Self::CELLS + index, EMPTY_MARK);
            if element != INSERT_MARK {
                debug_assert_ne!(element, EMPTY_MARK, "cell extracted twice");
                return element;
            }
            // The cell's inserter never showed up (its CAS will now fail);
            // take the next ticket.
        }
    }

    fn is_empty<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) -> bool {
        ctx.read(base + Self::EMPTY) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::NativeHeap;
    use std::sync::Arc;

    fn setup(b: &SbqBasket) -> (Arc<NativeHeap>, Addr) {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let base = ctx.alloc(b.words());
        b.init(&mut ctx, base);
        (heap, base)
    }

    #[test]
    fn insert_then_extract_roundtrips() {
        let b = SbqBasket::new(4);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert!(b.insert(&mut ctx, base, 41, 0));
        assert!(b.insert(&mut ctx, base, 42, 1));
        let a = b.extract(&mut ctx, base, 0);
        let c = b.extract(&mut ctx, base, 0);
        assert_eq!((a, c), (41, 42), "extraction follows cell order");
    }

    #[test]
    fn insert_fails_after_cell_claimed() {
        let b = SbqBasket::new(2);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        // An extract on the empty basket scans (and claims) every cell up
        // to `inserters` — that is exactly how the basket guarantees that
        // once emptiness was indicated, no later insert can be observed
        // (the §5.3.2 property).
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
        assert!(
            !b.insert(&mut ctx, base, 7, 0),
            "claimed cell rejects insert"
        );
        assert!(
            !b.insert(&mut ctx, base, 8, 1),
            "all cells claimed by the scan"
        );
    }

    #[test]
    fn empty_bit_set_by_last_ticket() {
        let b = SbqBasket::new(2);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert!(!b.is_empty(&mut ctx, base));
        let _ = b.extract(&mut ctx, base, 0); // tickets 0 and 1 taken inside
        assert!(b.is_empty(&mut ctx, base), "last ticket sets the bit");
        // Post-empty inserts are lost to extractors but post-empty
        // extracts must fail:
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
    }

    #[test]
    fn extract_skips_never_inserted_cells() {
        let b = SbqBasket::new(3);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert!(b.insert(&mut ctx, base, 99, 2)); // only cell 2 filled
        assert_eq!(b.extract(&mut ctx, base, 0), 99);
    }

    #[test]
    fn inserters_bound_limits_tickets() {
        let b = SbqBasket::with_inserters(8, 2);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert!(b.insert(&mut ctx, base, 5, 1));
        assert_eq!(b.extract(&mut ctx, base, 0), 5);
        // Both tickets are used up; cells 2..8 are never scanned.
        assert_eq!(b.extract(&mut ctx, base, 0), NULL_ELEM);
        assert!(b.is_empty(&mut ctx, base));
    }

    #[test]
    fn reset_single_restores_cell() {
        let b = SbqBasket::new(2);
        let (heap, base) = setup(&b);
        let mut ctx = heap.ctx(0);
        assert!(b.insert(&mut ctx, base, 6, 0));
        b.reset_single(&mut ctx, base, 0);
        assert!(b.insert(&mut ctx, base, 7, 0), "cell reusable after reset");
        assert_eq!(b.extract(&mut ctx, base, 0), 7);
    }

    #[test]
    fn concurrent_insert_extract_conserves_elements() {
        use absmem::native::run_threads;
        use absmem::ThreadCtx as _;
        let b = SbqBasket::new(8);
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let base = {
            let mut ctx = heap.ctx(0);
            let base = ctx.alloc(b.words());
            b.init(&mut ctx, base);
            base
        };
        // 4 inserters (ids 0..4) + 4 extractors.
        let results = run_threads(&heap, 8, |ctx| {
            let tid = ctx.thread_id();
            if tid < 4 {
                let ok = b.insert(ctx, base, 100 + tid as u64, tid);
                (if ok { Some(100 + tid as u64) } else { None }, None)
            } else {
                let mut got = Vec::new();
                loop {
                    let e = b.extract(ctx, base, tid);
                    if e == NULL_ELEM {
                        break;
                    }
                    got.push(e);
                }
                (None, Some(got))
            }
        });
        let inserted: Vec<u64> = results.iter().filter_map(|(i, _)| *i).collect();
        let extracted: Vec<u64> = results
            .iter()
            .filter_map(|(_, g)| g.clone())
            .flatten()
            .collect();
        let mut ex = extracted.clone();
        ex.sort_unstable();
        ex.dedup();
        assert_eq!(ex.len(), extracted.len(), "no element extracted twice");
        for e in &extracted {
            assert!(inserted.contains(e), "extracted {e} was never inserted");
        }
    }
}
