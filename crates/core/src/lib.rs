//! # sbq — the Scalable Baskets Queue and TxCAS
//!
//! A from-scratch Rust reproduction of the primary contribution of
//! Ostrovsky & Morrison, *Scaling Concurrent Queues by Using HTM to Profit
//! from Failed Atomic Operations* (PPoPP 2020):
//!
//! * [`txcas`] — **TxCAS** (Algorithm 1), a compare-and-set implemented as
//!   a hardware transaction whose *failures* scale: contending losers are
//!   aborted concurrently by the winner's single coherence write instead
//!   of serializing through the exclusive-ownership handoff chain.
//! * [`basket`] — the basket abstract data type (§5.2.1) and the paper's
//!   scalable basket (§5.3.1): per-inserter cells for
//!   synchronization-free insertion, FAA-ticketed extraction, a sticky
//!   empty bit.
//! * [`modular`] — the modular baskets queue (§5.2, Algorithms 2–7):
//!   a linked list of basket nodes with pluggable basket and CAS strategy,
//!   plus the paper's epoch-based memory reclamation.
//! * [`queue`] — the assembled variants: SBQ-HTM (TxCAS append; runs on
//!   the simulated HTM substrate) and SBQ-CAS (delayed-CAS append; runs
//!   anywhere).
//! * [`native`] — a production-usable typed MPMC queue `Sbq<T>` over real
//!   atomics (SBQ-CAS strategy; see that module for why native TxCAS is
//!   not available).
//!
//! The algorithms are written once, against [`absmem::ThreadCtx`], and run
//! on both the native backend and the `coherence` simulator, where the
//! paper's scalability claims are measured (see the `bench` crate).

pub mod basket;
pub mod basket_striped;
pub mod modular;
pub mod native;
pub mod queue;
pub mod reclaim_hp;
pub mod txcas;

pub use basket::{Basket, SbqBasket, ELEM_MAX, NULL_ELEM};
pub use basket_striped::StripedBasket;
pub use modular::{AppendStatus, EnqueuerState, ModularQueue, QueueConfig, SingleBasket};
pub use native::{Sbq, SbqHandle};
pub use queue::{SbqCasQueue, SbqHtmQueue};
pub use reclaim_hp::{HazardDomain, RetireList};
pub use txcas::{txn_cas, TxCas, TxCasParams, TxCasStats};
