//! The modular baskets queue (paper §5.2, Algorithms 2–7): a
//! Michael-Scott-style linked list of nodes, each carrying a pluggable
//! [`Basket`], with an explicit CAS strategy for the tail append.
//!
//! Instantiations:
//!
//! * SBQ-HTM  = `ModularQueue<SbqBasket, TxCas>`
//! * SBQ-CAS  = `ModularQueue<SbqBasket, DelayedCas>` (the paper's control)
//! * MS-queue = `ModularQueue<SingleBasket, StandardCas>` (§5.1 viewed in
//!   the framework: a one-element basket rejects all contenders, forcing
//!   the classic retry loop)
//! * BQ-Original ≈ `ModularQueue<LifoBasket, StandardCas>` (baselines
//!   crate)
//!
//! Memory is managed by the paper's epoch scheme (Algorithm 7): a
//! `retired` pointer lagging behind `head`, per-thread protector
//! announcements, and a SWAP-acquired single-reclaimer lock. One deviation,
//! documented here because it is a genuine fix: `free_nodes` additionally
//! bounds reclamation by the *tail* node's index. In the paper's
//! pseudocode a dequeuer can advance `head` past a lagging `tail` (an
//! enqueuer that completed by basket insertion does not advance the tail)
//! and then reclaim the node `tail` still points to, so a later enqueuer's
//! `protect(&Q→tail)` could return freed memory. Bounding by the tail
//! index closes the race at the cost of keeping at most a few extra nodes
//! live.

use crate::basket::{Basket, NULL_ELEM};
use absmem::{Addr, CasStrategy, ThreadCtx, NULL};

/// Result of one append attempt (Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendStatus {
    /// The new node was appended.
    Success,
    /// Another node was appended concurrently (CAS failed): its basket is
    /// accepting our element.
    Failure,
    /// The observed tail already has a successor ("stale tail"): retry
    /// from the real tail. Required for linearizability — it prevents an
    /// enqueuer from inserting into a basket it already used in a previous
    /// operation (§5.2.2).
    BadTail,
}

/// Per-enqueuer state: the spare node kept for reuse when an enqueue
/// completes without appending (§5.2.2's amortization of basket
/// initialization).
#[derive(Debug, Default)]
pub struct EnqueuerState {
    spare: Option<Addr>,
}

/// Shared-queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Upper bound on the number of participating threads (sizes the
    /// protectors array; thread ids must be `< max_threads`).
    pub max_threads: usize,
    /// Reclaim retired nodes (Algorithm 7). Disable to stress-test
    /// algorithms without reclamation in the picture.
    pub reclaim: bool,
    /// Scribble a poison pattern over freed nodes so that use-after-free
    /// reads surface as wild values in tests.
    pub poison_on_free: bool,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_threads: 64,
            reclaim: true,
            poison_on_free: cfg!(debug_assertions),
        }
    }
}

const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

// Queue descriptor layout.
const HEAD: u64 = 0;
const TAIL: u64 = 1;
const RETIRED: u64 = 2;
const PROT: u64 = 3; // protectors[max_threads] follow

// Node layout.
const NEXT: u64 = 0;
const INDEX: u64 = 1;
const BASKET: u64 = 2; // basket state follows

/// The modular baskets queue over abstract memory. `B` supplies the basket
/// algorithm, `S` the tail-append CAS strategy.
///
/// The struct itself is a small handle (descriptor address + config);
/// clone it freely across threads. All methods take the calling thread's
/// [`ThreadCtx`].
#[derive(Debug, Clone)]
pub struct ModularQueue<B, S> {
    base: Addr,
    basket: B,
    strat: S,
    cfg: QueueConfig,
}

impl<B: Basket, S> ModularQueue<B, S> {
    /// Words occupied by one node.
    fn node_words(&self) -> usize {
        2 + self.basket.words()
    }

    fn desc_words(cfg: &QueueConfig) -> usize {
        3 + cfg.max_threads
    }

    fn prot(&self, id: usize) -> Addr {
        debug_assert!(id < self.cfg.max_threads, "thread id out of range");
        self.base + PROT + id as u64
    }

    /// Allocates and initializes a fresh node with an empty basket.
    fn new_node<C: ThreadCtx>(&self, ctx: &mut C) -> Addr {
        let n = ctx.alloc(self.node_words());
        ctx.write(n + NEXT, NULL);
        ctx.write(n + INDEX, 0);
        self.basket.init(ctx, n + BASKET);
        n
    }

    /// Creates a new queue (one empty sentinel node), returning the
    /// shareable handle. Call from a single thread before publishing.
    pub fn new<C: ThreadCtx>(ctx: &mut C, basket: B, strat: S, cfg: QueueConfig) -> Self {
        let base = ctx.alloc(Self::desc_words(&cfg));
        let q = ModularQueue {
            base,
            basket,
            strat,
            cfg,
        };
        let sentinel = q.new_node(ctx);
        ctx.write(base + HEAD, sentinel);
        ctx.write(base + TAIL, sentinel);
        ctx.write(base + RETIRED, sentinel);
        for i in 0..cfg.max_threads as u64 {
            ctx.write(base + PROT + i, NULL);
        }
        q
    }

    /// The descriptor address (for re-constructing handles in other
    /// threads; pair with [`from_base`](Self::from_base)).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Rebuilds a handle from a descriptor address published by
    /// [`new`](Self::new). The basket, strategy and config must match.
    pub fn from_base(base: Addr, basket: B, strat: S, cfg: QueueConfig) -> Self {
        ModularQueue {
            base,
            basket,
            strat,
            cfg,
        }
    }

    /// Access to the CAS strategy (e.g. to read TxCAS statistics).
    pub fn strategy(&self) -> &S {
        &self.strat
    }

    // ---------------- Algorithm 7: memory reclamation ----------------

    /// Announces that the calling thread may access `*ptr` and everything
    /// after it; returns the protected node (Algorithm 7).
    fn protect<C: ThreadCtx>(&self, ctx: &mut C, ptr: Addr, id: usize) -> Addr {
        let p = self.prot(id);
        loop {
            let v = ctx.read(ptr);
            ctx.write(p, v);
            // On non-SC systems a fence is required between the announce
            // and the validation; the abstract memory is SC (§2).
            if ctx.read(ptr) == v {
                return v;
            }
        }
    }

    fn unprotect<C: ThreadCtx>(&self, ctx: &mut C, id: usize) {
        ctx.write(self.prot(id), NULL);
    }

    /// Frees retired nodes up to the earliest protected node (Algorithm
    /// 7), bounded additionally by the tail index (see module docs).
    fn free_nodes<C: ThreadCtx>(&self, ctx: &mut C) {
        if !self.cfg.reclaim {
            return;
        }
        // Single reclaimer at a time: SWAP out the retired pointer.
        let retired = ctx.swap(self.base + RETIRED, NULL);
        if retired == NULL {
            return;
        }
        let mut min_index = u64::MAX;
        for i in 0..self.cfg.max_threads {
            let p = ctx.read(self.prot(i));
            if p != NULL {
                min_index = min_index.min(ctx.read(p + INDEX));
            }
        }
        // Deviation from the paper (see module docs): never reclaim the
        // node the tail still points at, or anything after it.
        let tail = ctx.read(self.base + TAIL);
        min_index = min_index.min(ctx.read(tail + INDEX));

        let mut r = retired;
        loop {
            if r == ctx.read(self.base + HEAD) || ctx.read(r + INDEX) >= min_index {
                break;
            }
            let next = ctx.read(r + NEXT);
            debug_assert_ne!(next, NULL, "retired prefix must be fully linked");
            if self.cfg.poison_on_free {
                for w in 0..self.node_words() as u64 {
                    ctx.write(r + w, POISON);
                }
            }
            ctx.free(r, self.node_words());
            r = next;
        }
        ctx.write(self.base + RETIRED, r);
    }

    // ---------------- Algorithm 6: head/tail advancement ----------------

    /// Advances `*ptr` at least to `new_node` (by node index).
    fn advance_node<C: ThreadCtx>(&self, ctx: &mut C, ptr: Addr, new_node: Addr) {
        loop {
            let old = ctx.read(ptr);
            if ctx.read(old + INDEX) >= ctx.read(new_node + INDEX) {
                return;
            }
            if ctx.cas(ptr, old, new_node) {
                return;
            }
        }
    }
}

impl<B: Basket, S> ModularQueue<B, S> {
    /// One append attempt at `tail` (Algorithm 4), using the queue's CAS
    /// strategy for the contended next-pointer CAS.
    fn try_append<C: ThreadCtx>(&self, ctx: &mut C, tail: Addr, new_node: Addr) -> AppendStatus
    where
        S: CasStrategy<C>,
    {
        if ctx.read(tail + NEXT) != NULL {
            return AppendStatus::BadTail;
        }
        if self.strat.cas(ctx, tail + NEXT, NULL, new_node) {
            AppendStatus::Success
        } else {
            AppendStatus::Failure
        }
    }

    /// Enqueues `element` (Algorithm 3). `element` must lie in the basket
    /// element domain (`1..=ELEM_MAX`). `st` carries the thread's spare
    /// node between calls; `id = ctx.thread_id()` indexes both the
    /// protector slot and the basket cell.
    pub fn enqueue<C: ThreadCtx>(&self, ctx: &mut C, st: &mut EnqueuerState, element: u64)
    where
        S: CasStrategy<C>,
    {
        let id = ctx.thread_id();
        let mut t = self.protect(ctx, self.base + TAIL, id);
        // Reuse the spare node from a previous basket-completed enqueue,
        // or allocate a fresh one; either way our element goes into our
        // private cell before the node is published.
        let new_node = match st.spare.take() {
            Some(n) => n,
            None => self.new_node(ctx),
        };
        let inserted = self.basket.insert(ctx, new_node + BASKET, element, id);
        debug_assert!(inserted, "insert into own unpublished node cannot fail");

        loop {
            let t_index = ctx.read(t + INDEX);
            ctx.write(new_node + INDEX, t_index + 1);
            match self.try_append(ctx, t, new_node) {
                AppendStatus::Success => {
                    // Single attempt to swing the tail (Algorithm 3 line 9).
                    ctx.cas(self.base + TAIL, t, new_node);
                    self.unprotect(ctx, id);
                    return;
                }
                AppendStatus::Failure => {
                    // Profit from the failed CAS: the node that beat us is
                    // accepting elements from our equivalence class.
                    t = ctx.read(t + NEXT);
                    if self.basket.insert(ctx, t + BASKET, element, id) {
                        // Completed without appending: keep the node for
                        // next time (reset its single insert first) and do
                        // NOT advance the tail (reduces contention).
                        self.basket.reset_single(ctx, new_node + BASKET, id);
                        st.spare = Some(new_node);
                        break;
                    }
                }
                AppendStatus::BadTail => {}
            }
            // Find the current tail and advance the queue's tail pointer
            // at least that far before retrying.
            loop {
                let n = ctx.read(t + NEXT);
                if n == NULL {
                    break;
                }
                t = n;
            }
            self.advance_node(ctx, self.base + TAIL, t);
        }
        self.unprotect(ctx, id);
    }

    /// Dequeues an element, or returns `None` if the queue was observed
    /// empty (Algorithm 5).
    ///
    /// One amortization relative to the paper's pseudocode: Algorithm 5
    /// invokes `free_nodes` on *every* dequeue, whose leading
    /// `SWAP(&Q→retired, NULL)` is a second contended RMW per operation on
    /// top of the basket FAA — which would contradict §5.3.4's analysis
    /// that the dequeue is dominated by *the* basket FAA. We attempt
    /// reclamation only when this dequeue moved past at least one node
    /// (once per basket ≈ once per B elements), like any production
    /// implementation would.
    pub fn dequeue<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let id = ctx.thread_id();
        let start = self.protect(ctx, self.base + HEAD, id);
        let mut h = start;
        let element = loop {
            // Skip past definitely-empty baskets.
            while self.basket.is_empty(ctx, h + BASKET) && ctx.read(h + NEXT) != NULL {
                h = ctx.read(h + NEXT);
            }
            let element = self.basket.extract(ctx, h + BASKET, id);
            if element != NULL_ELEM || ctx.read(h + NEXT) == NULL {
                break element;
            }
        };
        if h != start {
            self.advance_node(ctx, self.base + HEAD, h);
            self.free_nodes(ctx);
        }
        self.unprotect(ctx, id);
        if element == NULL_ELEM {
            None
        } else {
            Some(element)
        }
    }

    /// Best-effort emptiness check: true if the head basket chain is
    /// empty. Same semantics as a failed dequeue, without extracting.
    pub fn is_empty<C: ThreadCtx>(&self, ctx: &mut C) -> bool {
        let id = ctx.thread_id();
        let mut h = self.protect(ctx, self.base + HEAD, id);
        let empty = loop {
            if !self.basket.is_empty(ctx, h + BASKET) {
                break false;
            }
            let n = ctx.read(h + NEXT);
            if n == NULL {
                break true;
            }
            h = n;
        };
        self.unprotect(ctx, id);
        empty
    }
}

/// A one-element basket: only the node's creator ever holds an element;
/// every insert by a contender fails. Plugged into the modular queue this
/// yields exactly the Michael–Scott queue (§5.1): a failed tail CAS forces
/// a full retry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleBasket;

impl Basket for SingleBasket {
    fn words(&self) -> usize {
        1
    }

    fn init<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) {
        ctx.write(base, crate::basket::INSERT_MARK);
    }

    fn reset_single<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, _id: usize) {
        ctx.write(base, crate::basket::INSERT_MARK);
    }

    fn insert<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, elem: u64, _id: usize) -> bool {
        ctx.cas(base, crate::basket::INSERT_MARK, elem)
    }

    fn extract<C: ThreadCtx>(&self, ctx: &mut C, base: Addr, _id: usize) -> u64 {
        let v = ctx.swap(base, crate::basket::EMPTY_MARK);
        if v == crate::basket::INSERT_MARK || v == crate::basket::EMPTY_MARK {
            NULL_ELEM
        } else {
            v
        }
    }

    fn is_empty<C: ThreadCtx>(&self, ctx: &mut C, base: Addr) -> bool {
        ctx.read(base) == crate::basket::EMPTY_MARK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basket::SbqBasket;
    use absmem::native::NativeHeap;
    use absmem::StandardCas;
    use std::sync::Arc;

    fn new_queue(heap: &Arc<NativeHeap>) -> ModularQueue<SbqBasket, StandardCas> {
        let mut ctx = heap.ctx(0);
        ModularQueue::new(
            &mut ctx,
            SbqBasket::new(8),
            StandardCas,
            QueueConfig {
                max_threads: 8,
                reclaim: true,
                poison_on_free: true,
            },
        )
    }

    #[test]
    fn fifo_order_single_thread() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let q = new_queue(&heap);
        let mut ctx = heap.ctx(0);
        let mut st = EnqueuerState::default();
        for i in 1..=100u64 {
            q.enqueue(&mut ctx, &mut st, i);
        }
        for i in 1..=100u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn empty_queue_dequeues_none() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let q = new_queue(&heap);
        let mut ctx = heap.ctx(0);
        assert_eq!(q.dequeue(&mut ctx), None);
        assert!(q.is_empty(&mut ctx));
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let q = new_queue(&heap);
        let mut ctx = heap.ctx(0);
        let mut st = EnqueuerState::default();
        for round in 0..50u64 {
            q.enqueue(&mut ctx, &mut st, round * 2 + 1);
            q.enqueue(&mut ctx, &mut st, round * 2 + 2);
            // FIFO: the r-th dequeue sees the (r+1)-th enqueued value.
            assert_eq!(q.dequeue(&mut ctx), Some(round + 1));
        }
        // 100 enqueued, 50 dequeued: elements 51..=100 remain, in order.
        for v in 51..=100u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(v));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn single_basket_yields_ms_queue_fifo() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let mut ctx = heap.ctx(0);
        let q = ModularQueue::new(&mut ctx, SingleBasket, StandardCas, QueueConfig::default());
        let mut st = EnqueuerState::default();
        for i in 1..=20u64 {
            q.enqueue(&mut ctx, &mut st, i);
        }
        for i in 1..=20u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn reclamation_frees_drained_prefix() {
        let heap = Arc::new(NativeHeap::new(1 << 22));
        let q = new_queue(&heap);
        let mut ctx = heap.ctx(0);
        let mut st = EnqueuerState::default();
        let frees_before = heap.ctx(0).now(); // placeholder; use pool stats
        let pool_before = {
            // drive enough traffic that nodes retire
            for i in 1..=500u64 {
                q.enqueue(&mut ctx, &mut st, i);
            }
            for i in 1..=500u64 {
                assert_eq!(q.dequeue(&mut ctx), Some(i));
            }
            frees_before
        };
        let _ = pool_before;
        // After a full drain + another operation cycle, dequeue triggers
        // free_nodes; we can't reach the pool stats through NativeCtx, so
        // assert indirectly: a second big cycle must not exhaust the heap
        // (reuse happens) and FIFO still holds.
        for i in 1..=500u64 {
            q.enqueue(&mut ctx, &mut st, 1000 + i);
        }
        for i in 1..=500u64 {
            assert_eq!(q.dequeue(&mut ctx), Some(1000 + i));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn two_handles_share_state() {
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let q = new_queue(&heap);
        let q2 = ModularQueue::from_base(
            q.base(),
            SbqBasket::new(8),
            StandardCas,
            QueueConfig {
                max_threads: 8,
                reclaim: true,
                poison_on_free: true,
            },
        );
        let mut ctx = heap.ctx(0);
        let mut ctx2 = heap.ctx(1);
        let mut st = EnqueuerState::default();
        q.enqueue(&mut ctx, &mut st, 7);
        assert_eq!(q2.dequeue(&mut ctx2), Some(7));
    }
}
