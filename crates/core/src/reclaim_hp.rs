//! Hazard-pointer memory reclamation (Michael, IEEE TPDS 2004) over the
//! abstract word memory.
//!
//! The paper's queues use the epoch scheme of Algorithm 7, but §5.2.2
//! notes the design "is compatible with standard memory reclamation
//! schemes, such as epoch-based memory reclamation or hazard pointers".
//! This module supplies the hazard-pointer alternative so that claim is
//! executable: `baselines::ms_queue_hp` runs the Michael–Scott queue on
//! it, and the reclamation integration tests drive both schemes over the
//! same workloads.
//!
//! Differences from the epoch scheme that matter operationally:
//!
//! * protection is per *pointer*, not per position — a thread announces
//!   up to `k` specific nodes it may dereference;
//! * retirement is thread-local: each thread keeps its own retire list
//!   and scans all hazard slots once the list exceeds a threshold, so
//!   reclamation is wait-free for the reclaimer and never blocks on
//!   stalled peers (a stalled thread strands only the nodes its own
//!   hazards name, plus its unscanned retire list).

use absmem::{Addr, ThreadCtx, NULL};

/// Shared hazard-slot table: `threads × k` announcement words in the
/// abstract memory.
#[derive(Debug, Clone, Copy)]
pub struct HazardDomain {
    base: Addr,
    threads: usize,
    k: usize,
}

impl HazardDomain {
    /// Allocates the slot table (all empty) from a single thread.
    pub fn new<C: ThreadCtx>(ctx: &mut C, threads: usize, k: usize) -> Self {
        assert!(threads > 0 && k > 0);
        let base = ctx.alloc(threads * k);
        for i in 0..(threads * k) as u64 {
            ctx.write(base + i, NULL);
        }
        HazardDomain { base, threads, k }
    }

    /// Rebuilds a handle from a published base address.
    pub fn from_base(base: Addr, threads: usize, k: usize) -> Self {
        HazardDomain { base, threads, k }
    }

    /// The table's base address (for publication).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Hazard slots per thread.
    pub fn k(&self) -> usize {
        self.k
    }

    fn slot_addr(&self, thread: usize, slot: usize) -> Addr {
        debug_assert!(thread < self.threads && slot < self.k);
        self.base + (thread * self.k + slot) as u64
    }

    /// Announces the pointer read from `*src` in `slot` and validates it
    /// is still current, looping until stable (Michael's protect idiom).
    /// Returns the protected pointer (possibly NULL).
    pub fn protect<C: ThreadCtx>(&self, ctx: &mut C, slot: usize, src: Addr) -> Addr {
        let s = self.slot_addr(ctx.thread_id(), slot);
        loop {
            let p = ctx.read(src);
            ctx.write(s, p);
            // SC memory: the re-read validates the announcement ordering.
            if ctx.read(src) == p {
                return p;
            }
        }
    }

    /// Announces a pointer the caller already holds (no validation: the
    /// caller must re-validate reachability itself).
    pub fn announce<C: ThreadCtx>(&self, ctx: &mut C, slot: usize, p: Addr) {
        let s = self.slot_addr(ctx.thread_id(), slot);
        ctx.write(s, p);
    }

    /// Clears one slot.
    pub fn clear<C: ThreadCtx>(&self, ctx: &mut C, slot: usize) {
        let s = self.slot_addr(ctx.thread_id(), slot);
        ctx.write(s, NULL);
    }

    /// Clears all of the calling thread's slots.
    pub fn clear_all<C: ThreadCtx>(&self, ctx: &mut C) {
        for slot in 0..self.k {
            self.clear(ctx, slot);
        }
    }

    /// Reads every thread's announcements (the scan step).
    fn collect_hazards<C: ThreadCtx>(&self, ctx: &mut C) -> Vec<Addr> {
        let mut v = Vec::with_capacity(self.threads * self.k);
        for i in 0..(self.threads * self.k) as u64 {
            let p = ctx.read(self.base + i);
            if p != NULL {
                v.push(p);
            }
        }
        v.sort_unstable();
        v
    }
}

/// A thread's private retire list.
#[derive(Debug, Default)]
pub struct RetireList {
    retired: Vec<(Addr, usize)>,
    /// Scan when the list reaches this length (defaults to a multiple of
    /// the table size at first retire).
    threshold: usize,
    /// Scribble a poison pattern over nodes as they are freed, so that a
    /// use-after-free in tests reads an obviously-wrong value.
    pub poison: bool,
    /// Nodes actually freed by this thread (stats/tests).
    pub freed: u64,
}

/// The poison pattern written into freed nodes when enabled.
pub const HP_POISON: u64 = 0xBAD0_BAD0_BAD0_BAD0;

impl RetireList {
    /// Creates an empty list with an explicit scan threshold.
    pub fn with_threshold(threshold: usize) -> Self {
        RetireList {
            retired: Vec::new(),
            threshold: threshold.max(1),
            poison: cfg!(debug_assertions),
            freed: 0,
        }
    }

    /// Number of nodes currently awaiting reclamation.
    pub fn pending(&self) -> usize {
        self.retired.len()
    }

    /// Retires `node` (of `words` words); frees eligible nodes when the
    /// list exceeds the threshold.
    pub fn retire<C: ThreadCtx>(
        &mut self,
        ctx: &mut C,
        dom: &HazardDomain,
        node: Addr,
        words: usize,
    ) {
        debug_assert_ne!(node, NULL);
        self.retired.push((node, words));
        if self.retired.len() >= self.threshold {
            self.scan(ctx, dom);
        }
    }

    /// Frees every retired node no hazard slot names (Michael's Scan).
    pub fn scan<C: ThreadCtx>(&mut self, ctx: &mut C, dom: &HazardDomain) {
        let hazards = dom.collect_hazards(ctx);
        let mut kept = Vec::with_capacity(self.retired.len());
        for (node, words) in self.retired.drain(..) {
            if hazards.binary_search(&node).is_ok() {
                kept.push((node, words));
            } else {
                if self.poison {
                    for w in 0..words as u64 {
                        ctx.write(node + w, HP_POISON);
                    }
                }
                ctx.free(node, words);
                self.freed += 1;
            }
        }
        self.retired = kept;
    }

    /// Force-frees everything unprotected (shutdown path; call after all
    /// threads have quiesced).
    pub fn drain_all<C: ThreadCtx>(&mut self, ctx: &mut C, dom: &HazardDomain) {
        self.scan(ctx, dom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absmem::native::{run_threads, NativeHeap};
    use std::sync::Arc;

    #[test]
    fn protect_returns_current_pointer() {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let dom = HazardDomain::new(&mut ctx, 2, 2);
        let src = ctx.alloc(1);
        let node = ctx.alloc(2);
        ctx.write(src, node);
        assert_eq!(dom.protect(&mut ctx, 0, src), node);
        // The announcement is visible in the table.
        assert_eq!(ctx.read(dom.base()), node);
        dom.clear(&mut ctx, 0);
        assert_eq!(ctx.read(dom.base()), NULL);
    }

    #[test]
    fn protected_nodes_survive_scan() {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let dom = HazardDomain::new(&mut ctx, 1, 1);
        let a = ctx.alloc(2);
        let b = ctx.alloc(2);
        dom.announce(&mut ctx, 0, a);
        let mut rl = RetireList::with_threshold(1);
        rl.retire(&mut ctx, &dom, a, 2); // protected: must be kept
        assert_eq!(rl.pending(), 1, "protected node not freed");
        rl.retire(&mut ctx, &dom, b, 2); // unprotected: freed
        assert_eq!(rl.freed, 1);
        dom.clear(&mut ctx, 0);
        rl.scan(&mut ctx, &dom);
        assert_eq!(rl.pending(), 0);
        assert_eq!(rl.freed, 2);
    }

    #[test]
    fn freed_addresses_recycle() {
        let heap = Arc::new(NativeHeap::new(1 << 16));
        let mut ctx = heap.ctx(0);
        let dom = HazardDomain::new(&mut ctx, 1, 1);
        let mut rl = RetireList::with_threshold(1);
        let a = ctx.alloc(2);
        rl.retire(&mut ctx, &dom, a, 2);
        assert_eq!(rl.freed, 1);
        let b = ctx.alloc(2);
        assert_eq!(a, b, "allocator must recycle the freed node");
    }

    #[test]
    fn concurrent_protect_blocks_concurrent_free() {
        // Thread 0 repeatedly retires nodes; thread 1 protects the shared
        // pointer and verifies the node's payload stays intact while
        // protected.
        let heap = Arc::new(NativeHeap::new(1 << 20));
        let (dom, src) = {
            let mut ctx = heap.ctx(0);
            let dom = HazardDomain::new(&mut ctx, 2, 1);
            let src = ctx.alloc(1);
            let first = ctx.alloc(2);
            ctx.write(first, 0xA5A5);
            ctx.write(src, first);
            (dom, src)
        };
        run_threads(&heap, 2, |ctx| {
            if ctx.thread_id() == 0 {
                let mut rl = RetireList::with_threshold(4);
                rl.poison = true; // freed nodes read as HP_POISON
                for i in 0..2_000u64 {
                    // Swap in a fresh node, retire the old one.
                    let fresh = ctx.alloc(2);
                    ctx.write(fresh, 0xA5A5);
                    let old = ctx.swap(src, fresh);
                    rl.retire(ctx, &dom, old, 2);
                    if i % 64 == 0 {
                        rl.scan(ctx, &dom);
                    }
                }
            } else {
                for _ in 0..2_000u64 {
                    let p = dom.protect(ctx, 0, src);
                    // While protected the node cannot be freed, so its
                    // payload is never the poison pattern.
                    let v = ctx.read(p);
                    assert_eq!(v, 0xA5A5, "dereferenced a reclaimed node");
                    dom.clear(ctx, 0);
                }
            }
        });
    }
}
