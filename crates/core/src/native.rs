//! The native, typed SBQ: a lock-free MPMC FIFO queue for real programs,
//! built from the modular baskets queue running on real atomics.
//!
//! Without hardware transactional memory (TSX is absent/fused-off on
//! current parts), the tail append uses the paper's **SBQ-CAS** strategy —
//! read, bounded delay, CAS — which shares TxCAS's delay placement but not
//! its scalable-failure property (§6.1). The scalable basket is identical
//! to the paper's, so enqueue contention still spreads across
//! per-thread basket cells instead of retrying the tail CAS.
//!
//! Elements are boxed and their addresses stored as basket elements; the
//! queue owns any elements still inside at drop time.

use crate::basket::SbqBasket;
use crate::modular::{EnqueuerState, ModularQueue, QueueConfig};
use absmem::native::{NativeCtx, NativeHeap};
use absmem::{DelayedCas, ThreadCtx};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// A scalable-baskets MPMC queue of `T`.
///
/// Create one queue, then one [`SbqHandle`] per thread with
/// [`Sbq::handle`]. Handles are cheap and `Send`; the queue itself is
/// shared behind an [`Arc`].
///
/// ```
/// use sbq::native::Sbq;
/// use std::sync::Arc;
///
/// let q = Arc::new(Sbq::<String>::new(4));
/// let mut h = q.handle();
/// h.enqueue("hello".to_string());
/// assert_eq!(h.dequeue(), Some("hello".to_string()));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct Sbq<T> {
    heap: Arc<NativeHeap>,
    queue: ModularQueue<SbqBasket, DelayedCas>,
    next_tid: AtomicUsize,
    max_threads: usize,
    _marker: PhantomData<T>,
}

// The queue hands boxed T values between threads.
unsafe impl<T: Send> Send for Sbq<T> {}
unsafe impl<T: Send> Sync for Sbq<T> {}

impl<T> Sbq<T> {
    /// Creates a queue for up to `max_threads` concurrently attached
    /// handles.
    pub fn new(max_threads: usize) -> Self {
        Self::with_heap_words(max_threads, 1 << 22)
    }

    /// As [`new`](Self::new) with an explicit internal heap size (words)
    /// for workloads that hold very many elements in flight.
    pub fn with_heap_words(max_threads: usize, heap_words: usize) -> Self {
        assert!(max_threads > 0);
        let heap = Arc::new(NativeHeap::new(heap_words));
        let mut ctx = heap.ctx(0);
        let queue = ModularQueue::new(
            &mut ctx,
            SbqBasket::new(max_threads),
            DelayedCas::default(),
            QueueConfig {
                max_threads,
                reclaim: true,
                poison_on_free: false,
            },
        );
        Sbq {
            heap,
            queue,
            next_tid: AtomicUsize::new(0),
            max_threads,
            _marker: PhantomData,
        }
    }

    /// Creates a per-thread handle. Panics once `max_threads` handles have
    /// been issued: handle identity doubles as the basket cell index and
    /// the reclamation protector slot.
    pub fn handle(self: &Arc<Self>) -> SbqHandle<T> {
        let tid = self.next_tid.fetch_add(1, SeqCst);
        assert!(
            tid < self.max_threads,
            "more handles ({}) than max_threads ({})",
            tid + 1,
            self.max_threads
        );
        SbqHandle {
            q: Arc::clone(self),
            ctx: self.heap.ctx(tid),
            st: EnqueuerState::default(),
        }
    }
}

impl<T> Drop for Sbq<T> {
    fn drop(&mut self) {
        // Drain remaining elements so their boxes are released. We have
        // exclusive access here (`&mut self`).
        let mut ctx = self.heap.ctx(0);
        while let Some(bits) = self.queue.dequeue(&mut ctx) {
            // SAFETY: every element in the queue was produced by
            // Box::into_raw in `enqueue` and dequeued exactly once.
            drop(unsafe { Box::from_raw(bits as usize as *mut T) });
        }
    }
}

/// A per-thread handle onto an [`Sbq`].
pub struct SbqHandle<T> {
    q: Arc<Sbq<T>>,
    ctx: NativeCtx,
    st: EnqueuerState,
}

impl<T: Send> SbqHandle<T> {
    /// Appends `value` to the queue.
    pub fn enqueue(&mut self, value: T) {
        let bits = Box::into_raw(Box::new(value)) as usize as u64;
        debug_assert!(bits > 0 && bits <= crate::basket::ELEM_MAX);
        self.q.queue.enqueue(&mut self.ctx, &mut self.st, bits);
    }

    /// Removes and returns the oldest element, or `None` if the queue was
    /// observed empty.
    pub fn dequeue(&mut self) -> Option<T> {
        let bits = self.q.queue.dequeue(&mut self.ctx)?;
        // SAFETY: see Drop; each stored pointer is consumed exactly once
        // (the basket guarantees no element is extracted twice).
        Some(*unsafe { Box::from_raw(bits as usize as *mut T) })
    }

    /// Best-effort emptiness check (false negatives possible under
    /// concurrency, false positives not).
    pub fn is_empty(&mut self) -> bool {
        self.q.queue.is_empty(&mut self.ctx)
    }

    /// The handle's dense thread id.
    pub fn thread_id(&self) -> usize {
        self.ctx.thread_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_preserves_values() {
        let q = Arc::new(Sbq::<Vec<u32>>::new(2));
        let mut h = q.handle();
        h.enqueue(vec![1, 2, 3]);
        h.enqueue(vec![]);
        assert_eq!(h.dequeue(), Some(vec![1, 2, 3]));
        assert_eq!(h.dequeue(), Some(vec![]));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn drop_releases_undequeued_elements() {
        // Miri-style leak check by proxy: drop counters.
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        {
            let q = Arc::new(Sbq::<D>::new(2));
            let mut h = q.handle();
            for _ in 0..10 {
                h.enqueue(D);
            }
            let _ = h.dequeue(); // one dropped by caller
            drop(h);
        } // nine dropped by the queue
        assert_eq!(DROPS.load(SeqCst), 10);
    }

    #[test]
    fn handles_capped_at_max_threads() {
        let q = Arc::new(Sbq::<u32>::new(1));
        let _h = q.handle();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.handle()));
        assert!(r.is_err(), "second handle must panic");
    }

    #[test]
    fn mpmc_stress_conserves_elements() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 2_000;
        let q = Arc::new(Sbq::<u64>::new(PRODUCERS + CONSUMERS));
        let done = Arc::new(AtomicUsize::new(0));
        let got: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..PRODUCERS as u64 {
                let mut h = q.handle();
                let done = Arc::clone(&done);
                s.spawn(move || {
                    for i in 0..PER {
                        h.enqueue(p * PER + i + 1);
                    }
                    done.fetch_add(1, SeqCst);
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let mut h = q.handle();
                    let done = Arc::clone(&done);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match h.dequeue() {
                                Some(v) => got.push(v),
                                None => {
                                    if done.load(SeqCst) == PRODUCERS && h.is_empty() {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers.into_iter().map(|c| c.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = got.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=PRODUCERS as u64 * PER).collect();
        assert_eq!(all, expect, "every element dequeued exactly once");
    }

    #[test]
    fn per_producer_fifo_order_holds() {
        // Single producer, single consumer: strict FIFO.
        let q = Arc::new(Sbq::<u64>::new(2));
        let mut prod = q.handle();
        let mut cons = q.handle();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 1..=5_000u64 {
                    prod.enqueue(i);
                }
            });
            s.spawn(move || {
                let mut expect = 1u64;
                while expect <= 5_000 {
                    if let Some(v) = cons.dequeue() {
                        assert_eq!(v, expect, "FIFO violation");
                        expect += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}
