//! # runner — parallel experiment job pool with deterministic merge
//!
//! Every experiment layer in this tree (figure sweeps, wall-clock bench
//! points, fuzz campaign seeds, cross-scheduler differential runs) is a
//! list of *independent* jobs: each one spins up its own `Machine` or
//! native-backend run and shares nothing with its neighbours. This crate
//! fans such a list across `jobs` OS threads while keeping the observable
//! output **byte-identical to a serial run**:
//!
//! * jobs are claimed from an atomic cursor, so workers stay busy
//!   regardless of per-job skew;
//! * each result lands in a slot indexed by its *submission* position;
//! * consumption (printing, artifact writing, failure reporting) happens
//!   in submission order, never in completion order.
//!
//! That last point is the determinism-of-merge contract: anything
//! derived from the merged stream — a figure TSV, a fuzz-artifact
//! directory, "the first failing seed" — cannot depend on host
//! scheduling. With `jobs = 1` the pool degenerates to a plain in-order
//! loop (results are consumed as they are produced), which doubles as
//! the reference the equivalence suite diffs the parallel path against.
//!
//! The pool also measures itself through [`obs`]: per-job wall latencies
//! go into a log-bucketed [`Histogram`] (per-worker histograms folded
//! with the exact associative merge), and [`JobReport::utilization_trace`]
//! renders one Chrome-trace track per worker — an `op` span per job plus
//! a `job-claim` instant — so pool utilization can be eyeballed in
//! Perfetto next to the simulator traces.

use obs::{Histogram, InstantKind, ObsSink, SpanKind, TraceMeta};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker-thread count to use when the caller does not specify one:
/// `SBQ_JOBS` when set to a positive integer, else the host's available
/// parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    if let Some(n) = std::env::var("SBQ_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One job's execution interval, in nanoseconds since the pool started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpan {
    /// Worker thread (0-based) that ran the job.
    pub worker: usize,
    /// The job's submission index.
    pub index: usize,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// What the pool observed about one batch of jobs.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Worker threads actually used (`min(requested, tasks)`, at least 1).
    pub jobs: usize,
    /// Jobs executed.
    pub tasks: usize,
    /// Per-job wall-latency distribution (ns). Built per worker and
    /// folded with [`Histogram::merge`], which is exact, so the report is
    /// identical for any worker count modulo the latencies themselves.
    pub latency: Histogram,
    /// Every job's execution interval, sorted by submission index.
    pub spans: Vec<JobSpan>,
    /// Wall time of the whole batch (ns).
    pub total_wall_ns: u64,
}

impl JobReport {
    fn new(jobs: usize, tasks: usize) -> JobReport {
        JobReport {
            jobs,
            tasks,
            latency: Histogram::new(),
            spans: Vec::with_capacity(tasks),
            total_wall_ns: 0,
        }
    }

    /// Fraction of `jobs × total_wall_ns` spent inside jobs (0 when the
    /// batch was empty): the pool's utilization.
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self
            .spans
            .iter()
            .map(|s| s.end_ns.saturating_sub(s.start_ns))
            .sum();
        let capacity = self.jobs as u64 * self.total_wall_ns;
        if capacity == 0 {
            0.0
        } else {
            busy as f64 / capacity as f64
        }
    }

    /// Folds a subsequent batch's report into this one, as if the two
    /// batches had run back-to-back on a single pool: the other batch's
    /// spans are shifted onto the end of this report's timeline and its
    /// submission indices are offset past this batch's. Lets a driver
    /// that runs several pools in sequence (e.g. `simctl bench` with the
    /// native series on) report one combined summary and trace.
    pub fn absorb(&mut self, other: &JobReport) {
        let (dt, di) = (self.total_wall_ns, self.tasks);
        self.jobs = self.jobs.max(other.jobs);
        self.tasks += other.tasks;
        self.latency.merge(&other.latency);
        self.spans.extend(other.spans.iter().map(|s| JobSpan {
            worker: s.worker,
            index: s.index + di,
            start_ns: s.start_ns + dt,
            end_ns: s.end_ns + dt,
        }));
        self.total_wall_ns += other.total_wall_ns;
    }

    /// One-line human summary for CLI diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "runner: {} job(s) on {} worker(s) in {:.1} ms (p50 {:.1} ms, p99 {:.1} ms, utilization {:.0}%)",
            self.tasks,
            self.jobs,
            self.total_wall_ns as f64 / 1e6,
            self.latency.p50() as f64 / 1e6,
            self.latency.p99() as f64 / 1e6,
            self.utilization() * 100.0
        )
    }

    /// Renders the pool's own timeline as a Chrome trace-event document:
    /// one track per worker, an `op` span per job (payload = submission
    /// index) and a `job-claim` instant at each claim. Timestamps are
    /// wall nanoseconds since the pool started, so unlike the simulator
    /// exports this document is *not* byte-stable across runs — it is a
    /// utilization diagnostic, not an artifact.
    pub fn utilization_trace(&self, label: &str) -> String {
        let per_worker = self
            .spans
            .iter()
            .fold(vec![0usize; self.jobs.max(1)], |mut acc, s| {
                acc[s.worker] += 1;
                acc
            });
        let cap = per_worker.iter().copied().max().unwrap_or(0) * 2 + 4;
        let sink = ObsSink::new(cap);
        for worker in 0..self.jobs {
            let mut t = sink.thread(worker);
            for s in self.spans.iter().filter(|s| s.worker == worker) {
                t.instant(InstantKind::JobClaim, s.start_ns, s.index as u64);
                t.span(SpanKind::Op, s.start_ns, s.end_ns, s.index as u64);
            }
            sink.submit(t);
        }
        let meta = TraceMeta {
            backend: "runner",
            label: label.to_string(),
            fastpath: None,
            hops: None,
        };
        obs::export(&sink.take_logs(), &[], &meta)
    }
}

/// Runs `tasks` across at most `jobs` worker threads and hands each
/// result to `consume` **in submission order** (`consume(0, ..)`, then
/// `consume(1, ..)`, ...), regardless of completion order.
///
/// With `jobs <= 1` the tasks run serially on the calling thread and are
/// consumed as they finish — the reference behaviour the parallel path
/// must be indistinguishable from. With more workers, results are parked
/// in submission-indexed slots and consumed after the pool drains.
///
/// A panicking job does not poison the merge: remaining workers finish
/// their claimed jobs, then the first worker's panic payload is resumed
/// on the caller, so the original failure is the one reported.
pub fn run_ordered<T, F>(jobs: usize, tasks: Vec<F>, mut consume: impl FnMut(usize, T)) -> JobReport
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    let t0 = Instant::now();
    let mut report = JobReport::new(jobs, n);

    if jobs <= 1 {
        for (index, task) in tasks.into_iter().enumerate() {
            let start_ns = t0.elapsed().as_nanos() as u64;
            let out = task();
            let end_ns = t0.elapsed().as_nanos() as u64;
            report.latency.record(end_ns - start_ns);
            report.spans.push(JobSpan {
                worker: 0,
                index,
                start_ns,
                end_ns,
            });
            consume(index, out);
        }
        report.total_wall_ns = t0.elapsed().as_nanos() as u64;
        return report;
    }

    // Slot-indexed hand-off: worker w claims submission index i from the
    // cursor, runs it, and parks the result in slots[i].
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);

    let joined: Vec<std::thread::Result<(Histogram, Vec<JobSpan>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let (slots, tasks, cursor, t0) = (&slots, &tasks, &cursor, &t0);
                scope.spawn(move || {
                    let mut latency = Histogram::new();
                    let mut spans = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let task = tasks[index]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("job claimed twice");
                        let start_ns = t0.elapsed().as_nanos() as u64;
                        let out = task();
                        let end_ns = t0.elapsed().as_nanos() as u64;
                        latency.record(end_ns - start_ns);
                        spans.push(JobSpan {
                            worker,
                            index,
                            start_ns,
                            end_ns,
                        });
                        *slots[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                    (latency, spans)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut first_panic = None;
    for r in joined {
        match r {
            Ok((latency, spans)) => {
                report.latency.merge(&latency);
                report.spans.extend(spans);
            }
            Err(payload) => {
                let _ = first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    report.spans.sort_by_key(|s| s.index);
    report.total_wall_ns = t0.elapsed().as_nanos() as u64;

    // The deterministic merge: submission order, not completion order.
    for (index, slot) in slots.into_iter().enumerate() {
        let out = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("drained pool left an empty slot");
        consume(index, out);
    }
    report
}

/// [`run_ordered`] collecting the results into a `Vec` (submission
/// order).
pub fn run_all<T, F>(jobs: usize, tasks: Vec<F>) -> (Vec<T>, JobReport)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let mut out = Vec::with_capacity(tasks.len());
    let report = run_ordered(jobs, tasks, |_, r| out.push(r));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Later submissions sleep less, so under any worker count > 1 they
    /// *complete* first — the merge must still consume in submission
    /// order.
    #[test]
    fn merge_is_submission_order_not_completion_order() {
        let n = 12usize;
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(2 * (n - i) as u64));
                    i * 10
                }
            })
            .collect();
        let mut seen = Vec::new();
        let report = run_ordered(4, tasks, |i, v| seen.push((i, v)));
        assert_eq!(seen, (0..n).map(|i| (i, i * 10)).collect::<Vec<_>>());
        assert_eq!(report.tasks, n);
        assert_eq!(report.jobs, 4);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..40usize).map(|i| move || i * i + 1).collect::<Vec<_>>();
        let (serial, r1) = run_all(1, mk());
        let (parallel, r8) = run_all(8, mk());
        assert_eq!(serial, parallel);
        assert_eq!(r1.latency.count(), 40);
        assert_eq!(r8.latency.count(), 40);
        // Every submission index appears exactly once in the spans.
        let mut idx: Vec<usize> = r8.spans.iter().map(|s| s.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_clamped_to_task_count() {
        let (out, report) = run_all(64, vec![|| 7u32, || 8u32]);
        assert_eq!(out, vec![7, 8]);
        assert_eq!(report.jobs, 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let tasks: Vec<fn() -> u32> = Vec::new();
        let (out, report) = run_all(8, tasks);
        assert!(out.is_empty());
        assert_eq!(report.tasks, 0);
        assert_eq!(report.latency.count(), 0);
        assert_eq!(report.utilization(), 0.0);
    }

    #[test]
    fn job_panic_resurfaces_with_its_original_payload() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job 1 exploded")),
            Box::new(|| 3),
        ];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_all(3, tasks)))
            .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job 1 exploded"), "got panic payload {msg:?}");
    }

    #[test]
    fn utilization_trace_validates_and_has_one_track_per_worker() {
        let tasks: Vec<_> = (0..6)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(1));
                    i
                }
            })
            .collect();
        let (_, report) = run_all(2, tasks);
        let json = report.utilization_trace("runner unit test");
        let sum = obs::validate(&json).expect("utilization trace must validate");
        assert_eq!(sum.spans, 6, "one op span per job: {sum:?}");
        assert!(sum.names.contains("job-claim"));
        assert!(sum.tracks.len() <= 2, "at most one track per worker");
    }

    #[test]
    fn absorb_concatenates_batches_on_one_timeline() {
        let (_, mut a) = run_all(2, vec![|| 1u32, || 2]);
        let (_, b) = run_all(3, vec![|| 3u32, || 4, || 5]);
        let a_wall = a.total_wall_ns;
        a.absorb(&b);
        assert_eq!(a.tasks, 5);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.latency.count(), 5);
        assert_eq!(a.spans.len(), 5);
        // The absorbed spans keep going where the first batch stopped.
        assert_eq!(a.spans[2].index, 2);
        assert!(a.spans[2].start_ns >= a_wall);
        assert_eq!(a.total_wall_ns, a_wall + b.total_wall_ns);
        let json = a.utilization_trace("absorb test");
        obs::validate(&json).expect("combined trace must validate");
    }

    #[test]
    fn default_jobs_is_positive_and_honours_env() {
        assert!(default_jobs() >= 1);
        std::env::set_var("SBQ_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        std::env::set_var("SBQ_JOBS", "not-a-number");
        assert!(default_jobs() >= 1);
        std::env::remove_var("SBQ_JOBS");
    }
}
