//! Negative tests for the linearizability checker: hand-crafted
//! histories that are *not* linearizable as a FIFO queue, each rejected
//! with exactly the right `Violation` kind — and each minimized by the
//! shrinker to a 1-minimal witness of the same kind.

use linearize::{check_queue_linearizable, shrink_history, Event, Op, Violation};
use std::mem::discriminant;

fn ev(thread: usize, op: Op, invoke: u64, ret: u64) -> Event {
    Event {
        thread,
        op,
        invoke,
        ret,
    }
}

/// Checks `history` is rejected with `expect`'s kind, then that the
/// shrinker preserves the kind and produces a 1-minimal witness:
/// removing any single event either legalizes the history or changes the
/// violation kind.
fn assert_rejected_and_minimized(history: &[Event], expect: &Violation) {
    let got = check_queue_linearizable(history).expect_err("history must be rejected");
    assert_eq!(
        discriminant(&got),
        discriminant(expect),
        "wrong violation kind: got {got}, expected like {expect}"
    );

    let (min, min_v) = shrink_history(history).expect("failing history must shrink");
    assert_eq!(
        discriminant(&min_v),
        discriminant(expect),
        "shrinking changed the violation kind to {min_v}"
    );
    assert!(min.len() <= history.len());
    assert_eq!(
        discriminant(&check_queue_linearizable(&min).expect_err("shrunk history must still fail")),
        discriminant(expect)
    );
    for i in 0..min.len() {
        let mut smaller = min.to_vec();
        smaller.remove(i);
        match check_queue_linearizable(&smaller) {
            Ok(()) => {}
            Err(v) => assert_ne!(
                discriminant(&v),
                discriminant(expect),
                "witness not 1-minimal: event {i} is removable"
            ),
        }
    }
}

#[test]
fn value_duplication_is_repeat() {
    // Two dequeuers both return 1: the planted-bug shape.
    let h = [
        ev(0, Op::Enq(1), 0, 1),
        ev(1, Op::DeqSome(1), 2, 3),
        ev(2, Op::DeqSome(1), 4, 5),
    ];
    assert_rejected_and_minimized(&h, &Violation::Repeat { value: 1 });
}

#[test]
fn invented_value_is_fresh() {
    // A dequeue returns a value nobody enqueued (a lost/corrupted cell).
    let h = [ev(0, Op::Enq(1), 0, 1), ev(1, Op::DeqSome(2), 2, 3)];
    assert_rejected_and_minimized(&h, &Violation::Fresh { value: 2 });
}

#[test]
fn fifo_inversion_is_ord() {
    // enq(1) completed strictly before enq(2) began, yet 2 came out
    // first while 1 also came out — an order inversion.
    let h = [
        ev(0, Op::Enq(1), 0, 1),
        ev(0, Op::Enq(2), 2, 3),
        ev(1, Op::DeqSome(2), 4, 5),
        ev(1, Op::DeqSome(1), 6, 7),
    ];
    assert_rejected_and_minimized(
        &h,
        &Violation::Ord {
            first: 1,
            second: 2,
        },
    );
}

#[test]
fn empty_dequeue_in_nonempty_window_is_wit() {
    // 1 was enqueued before the null dequeue began and not dequeued
    // until after it returned: the queue was provably non-empty for the
    // dequeue's entire window.
    let h = [
        ev(0, Op::Enq(1), 0, 1),
        ev(1, Op::DeqNull, 2, 3),
        ev(2, Op::DeqSome(1), 4, 5),
    ];
    assert_rejected_and_minimized(
        &h,
        &Violation::Wit {
            witness: 1,
            deq_thread: 1,
        },
    );
}

#[test]
fn lost_enqueue_is_detected() {
    // A "lost" enqueue: the value vanishes, so a later dequeue in a
    // window where it should have been the only element reports empty.
    // Same observable as the Wit pattern — that is the kind the checker
    // must report.
    let h = [
        ev(0, Op::Enq(9), 0, 1),
        ev(1, Op::DeqNull, 10, 11),
        ev(1, Op::DeqNull, 12, 13),
        ev(2, Op::DeqSome(9), 20, 21),
    ];
    assert_rejected_and_minimized(
        &h,
        &Violation::Wit {
            witness: 9,
            deq_thread: 1,
        },
    );
}

#[test]
fn violations_survive_concurrency_noise() {
    // The same four defects buried inside overlapping, legal traffic
    // still come out with the right kind after shrinking.
    let mut h = vec![
        // Legal background: 10..13 flow through in order, overlapping.
        ev(3, Op::Enq(10), 0, 6),
        ev(3, Op::Enq(11), 7, 9),
        ev(4, Op::DeqSome(10), 8, 12),
        ev(3, Op::Enq(12), 10, 14),
        ev(4, Op::DeqSome(11), 13, 18),
        ev(4, Op::DeqSome(12), 19, 22),
    ];
    // The defect: value 5 dequeued twice by concurrent dequeuers.
    h.push(ev(0, Op::Enq(5), 1, 2));
    h.push(ev(1, Op::DeqSome(5), 3, 16));
    h.push(ev(2, Op::DeqSome(5), 4, 17));
    assert_rejected_and_minimized(&h, &Violation::Repeat { value: 5 });
}

#[test]
fn valid_histories_do_not_shrink() {
    let h = [
        ev(0, Op::Enq(1), 0, 5),
        ev(1, Op::DeqSome(1), 2, 7),
        ev(1, Op::DeqNull, 8, 9),
    ];
    assert!(check_queue_linearizable(&h).is_ok());
    assert!(shrink_history(&h).is_none());
}
