//! # linearize — aspect-oriented queue linearizability checking
//!
//! The paper proves SBQ linearizable with the aspect-oriented framework of
//! Henzinger, Sezgin & Vafeiadis (CONCUR 2013): a complete concurrent
//! queue history (with unique enqueued values) is linearizable iff it is
//! free of four violation patterns (§5.3.2). This crate checks recorded
//! histories for those patterns, giving the test suite a machine-checkable
//! version of the paper's correctness argument:
//!
//! * **VFresh** — a dequeue returns a value never enqueued;
//! * **VRepeat** — two dequeues return the value of the same enqueue;
//! * **VOrd** — FIFO order inversion: `enqueue(a)` precedes `enqueue(b)`,
//!   `b` is dequeued, but `a` either is never dequeued or its dequeue is
//!   invoked only after `b`'s dequeue completes;
//! * **VWit** — a dequeue returns NULL (empty) although some element was
//!   enqueued before the dequeue's invocation and remained undequeued
//!   throughout the dequeue's whole interval.
//!
//! The checks are *sound*: every reported violation is a real
//! non-linearizability witness. They are conservative for VWit/VOrd in
//! the presence of overlapping intervals (a racy-but-legal history is
//! never flagged).
//!
//! [`check_queue_linearizable`] layers a Wing & Gong-style explicit
//! linearization search on top of the pattern pass, making the check
//! *complete* for FIFO histories (up to a node budget): if no legal
//! linearization exists, the search reports [`Violation::NoLinearization`]
//! even when none of the four named patterns matches. On violation,
//! [`shrink_history`] minimizes the history while preserving the
//! violation kind — the fuzzer's counterexample reducer.
//!
//! Timestamps are arbitrary `u64`s; the only requirement is that for any
//! two events where one *returns before the other is invoked*, the
//! recorded numbers reflect it. A shared atomic counter (native runs) or
//! the simulated clock (simulator runs) both qualify.

use std::collections::HashMap;

/// One completed queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `enqueue(value)`; values must be unique across the history.
    Enq(u64),
    /// A dequeue that returned `value`.
    DeqSome(u64),
    /// A dequeue that reported the queue empty.
    DeqNull,
}

/// A recorded operation with its execution interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Executing thread (diagnostics only).
    pub thread: usize,
    /// The operation and its payload.
    pub op: Op,
    /// Invocation timestamp.
    pub invoke: u64,
    /// Return timestamp; must be `>= invoke`.
    pub ret: u64,
}

/// A detected linearizability violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Dequeued value was never enqueued.
    Fresh { value: u64 },
    /// Value dequeued more than once.
    Repeat { value: u64 },
    /// FIFO inversion between the enqueues of `first` and `second`.
    Ord { first: u64, second: u64 },
    /// Empty-dequeue although `witness` was present throughout.
    Wit { witness: u64, deq_thread: usize },
    /// Malformed history (duplicate enqueue value, interval with
    /// `ret < invoke`, ...): the *recording* is broken, not the queue.
    Malformed { reason: String },
    /// The exhaustive linearization search proved that no legal
    /// sequential FIFO order of the history exists, although none of the
    /// four named patterns matched on its own.
    NoLinearization,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Fresh { value } => write!(f, "VFresh: value {value} never enqueued"),
            Violation::Repeat { value } => write!(f, "VRepeat: value {value} dequeued twice"),
            Violation::Ord { first, second } => write!(
                f,
                "VOrd: enq({first}) completed before enq({second}) began, but FIFO was inverted"
            ),
            Violation::Wit {
                witness,
                deq_thread,
            } => write!(
                f,
                "VWit: thread {deq_thread} saw empty while {witness} was enqueued and undequeued"
            ),
            Violation::Malformed { reason } => write!(f, "malformed history: {reason}"),
            Violation::NoLinearization => {
                write!(f, "no legal linearization of the history exists")
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    invoke: u64,
    ret: u64,
}

/// Checks a complete queue history; returns the first violation found.
///
/// Requirements on the input: every operation has completed (no pending
/// calls — complete your histories by joining all threads first), and
/// enqueued values are unique.
pub fn check_queue_history(events: &[Event]) -> Result<(), Violation> {
    let mut enq: HashMap<u64, Interval> = HashMap::new();
    let mut deq: HashMap<u64, Interval> = HashMap::new();
    let mut nulls: Vec<(usize, Interval)> = Vec::new();

    for e in events {
        if e.ret < e.invoke {
            return Err(Violation::Malformed {
                reason: format!("event {e:?} returns before invocation"),
            });
        }
        let iv = Interval {
            invoke: e.invoke,
            ret: e.ret,
        };
        match e.op {
            Op::Enq(v) => {
                if enq.insert(v, iv).is_some() {
                    return Err(Violation::Malformed {
                        reason: format!("value {v} enqueued twice"),
                    });
                }
            }
            Op::DeqSome(v) => {
                if deq.insert(v, iv).is_some() {
                    return Err(Violation::Repeat { value: v });
                }
            }
            Op::DeqNull => nulls.push((e.thread, iv)),
        }
    }

    // VFresh: every dequeued value has a matching enqueue.
    for v in deq.keys() {
        if !enq.contains_key(v) {
            return Err(Violation::Fresh { value: *v });
        }
    }

    // VOrd: for a,b with enq(a).ret < enq(b).invoke and b dequeued:
    // a must be dequeued, and deq(a) must be invoked before deq(b)
    // returns.
    // Sort enqueues by return time so each b only scans a-candidates that
    // finished before it began.
    let mut enq_by_ret: Vec<(u64, Interval)> = enq.iter().map(|(&v, &iv)| (v, iv)).collect();
    enq_by_ret.sort_by_key(|(_, iv)| iv.ret);
    for (&b, biv) in &enq {
        let Some(db) = deq.get(&b) else { continue };
        for &(a, aiv) in &enq_by_ret {
            if aiv.ret >= biv.invoke {
                break; // sorted: no further candidates strictly precede b
            }
            match deq.get(&a) {
                None => {
                    return Err(Violation::Ord {
                        first: a,
                        second: b,
                    })
                }
                Some(da) => {
                    if da.invoke > db.ret {
                        return Err(Violation::Ord {
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }
    }

    // VWit: a null dequeue D is a violation if some value x was enqueued
    // (completed) before D's invocation and x's dequeue (if any) was
    // invoked only after D returned — i.e. x was inside the queue for all
    // of D's interval.
    for (thread, d) in &nulls {
        for (&x, xiv) in &enq {
            if xiv.ret >= d.invoke {
                continue;
            }
            let gone_during_d = match deq.get(&x) {
                None => false,
                Some(dx) => dx.invoke <= d.ret,
            };
            if !gone_during_d {
                return Err(Violation::Wit {
                    witness: x,
                    deq_thread: *thread,
                });
            }
        }
    }

    Ok(())
}

/// Node budget for the default linearization search. At ~`O(n)` work per
/// node this keeps a single check well under a millisecond-scale bound;
/// the fuzzer's histories (a few hundred events) stay far below it in
/// practice because the exact-state memo collapses the search space.
pub const DEFAULT_SEARCH_BUDGET: usize = 200_000;

/// Outcome of the explicit linearization search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchResult {
    /// A legal sequential FIFO order exists.
    Linearizable,
    /// The whole search space was exhausted without finding one.
    NoLinearization,
    /// The node budget ran out first — the search is inconclusive and
    /// callers treat it as a (conservative) pass.
    BudgetExhausted,
}

/// Undo record for one applied operation in the search.
enum Applied {
    PushedBack,
    PoppedFront(u64),
    Nothing,
}

/// Wing & Gong-style DFS over linearization orders of a FIFO history.
///
/// At each step the candidates are the *minimal* remaining operations —
/// those whose invocation precedes every remaining operation's return
/// (no remaining op finished strictly before they began, so they may
/// legally take the next linearization point). A candidate is applied to
/// the abstract `VecDeque` queue model and the search recurses; visited
/// `(done-set, queue-contents)` states are memoized exactly, which makes
/// revisits — and there are combinatorially many — O(1) rejections.
struct Search<'a> {
    ev: &'a [Event],
    done: Vec<bool>,
    ndone: usize,
    queue: std::collections::VecDeque<u64>,
    seen: std::collections::HashSet<(Vec<u64>, Vec<u64>)>,
    nodes: usize,
    budget: usize,
}

impl Search<'_> {
    /// Exact state key: done-set bitmap plus the queue contents. Both are
    /// needed — two different done-sets can leave the same queue and vice
    /// versa — and the key must be exact (not a hash digest) so the memo
    /// can never wrongly prune a live branch into a false
    /// `NoLinearization`.
    fn key(&self) -> (Vec<u64>, Vec<u64>) {
        let mut words = vec![0u64; self.done.len().div_ceil(64)];
        for (i, &d) in self.done.iter().enumerate() {
            if d {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        (words, self.queue.iter().copied().collect())
    }

    /// Applies operation `i` to the queue model, or `None` if illegal in
    /// the current state.
    fn apply(&mut self, i: usize) -> Option<Applied> {
        match self.ev[i].op {
            Op::Enq(v) => {
                self.queue.push_back(v);
                Some(Applied::PushedBack)
            }
            Op::DeqSome(v) => {
                if self.queue.front() == Some(&v) {
                    self.queue.pop_front();
                    Some(Applied::PoppedFront(v))
                } else {
                    None
                }
            }
            Op::DeqNull => {
                if self.queue.is_empty() {
                    Some(Applied::Nothing)
                } else {
                    None
                }
            }
        }
    }

    fn unapply(&mut self, a: Applied) {
        match a {
            Applied::PushedBack => {
                self.queue.pop_back();
            }
            Applied::PoppedFront(v) => self.queue.push_front(v),
            Applied::Nothing => {}
        }
    }

    fn dfs(&mut self) -> SearchResult {
        if self.ndone == self.ev.len() {
            return SearchResult::Linearizable;
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            return SearchResult::BudgetExhausted;
        }
        if !self.seen.insert(self.key()) {
            // Already explored from this state and found nothing.
            return SearchResult::NoLinearization;
        }
        // An op may linearize next iff no remaining op returned strictly
        // before its invocation — equivalently its invocation is at or
        // before the minimum remaining return time.
        let min_ret = self
            .ev
            .iter()
            .zip(&self.done)
            .filter(|&(_, &d)| !d)
            .map(|(e, _)| e.ret)
            .min()
            .expect("ndone < len");
        for i in 0..self.ev.len() {
            if self.done[i] || self.ev[i].invoke > min_ret {
                continue;
            }
            let Some(undo) = self.apply(i) else { continue };
            self.done[i] = true;
            self.ndone += 1;
            let r = self.dfs();
            self.done[i] = false;
            self.ndone -= 1;
            self.unapply(undo);
            if r != SearchResult::NoLinearization {
                return r; // found one, or ran out of budget
            }
        }
        SearchResult::NoLinearization
    }
}

fn search_linearization(events: &[Event], budget: usize) -> SearchResult {
    if events.is_empty() {
        return SearchResult::Linearizable;
    }
    Search {
        ev: events,
        done: vec![false; events.len()],
        ndone: 0,
        queue: std::collections::VecDeque::new(),
        seen: std::collections::HashSet::new(),
        nodes: 0,
        budget,
    }
    .dfs()
}

/// Complete linearizability check with an explicit node budget (see
/// [`check_queue_linearizable`]).
pub fn check_queue_linearizable_budgeted(events: &[Event], budget: usize) -> Result<(), Violation> {
    // The pattern pass runs first so violations it can name keep their
    // precise kind (and it is the cheaper check); the search then covers
    // everything the patterns provably cannot express alone.
    check_queue_history(events)?;
    match search_linearization(events, budget) {
        SearchResult::NoLinearization => Err(Violation::NoLinearization),
        SearchResult::Linearizable | SearchResult::BudgetExhausted => Ok(()),
    }
}

/// Complete linearizability check: the aspect pattern pass (precise
/// violation kinds, always sound) followed by a Wing & Gong-style
/// explicit search for a legal linearization order. The search makes the
/// combined check complete for FIFO histories — any history it accepts
/// within [`DEFAULT_SEARCH_BUDGET`] nodes really is linearizable, and
/// any unlinearizable history is rejected (with the matching aspect kind
/// when one applies, [`Violation::NoLinearization`] otherwise).
pub fn check_queue_linearizable(events: &[Event]) -> Result<(), Violation> {
    check_queue_linearizable_budgeted(events, DEFAULT_SEARCH_BUDGET)
}

/// Node budget per candidate during shrinking: each removal probe re-runs
/// the full check, so individual probes get a smaller search allowance.
const SHRINK_SEARCH_BUDGET: usize = 50_000;

/// Minimizes a failing history: greedily removes events, keeping a
/// removal only if the checker still reports a violation of the *same
/// kind* (enum discriminant), and repeats to a fixpoint. Returns the
/// minimized history and its violation, or `None` if the input history
/// passes the checker. The result is 1-minimal: removing any single
/// further event changes or clears the verdict.
pub fn shrink_history(events: &[Event]) -> Option<(Vec<Event>, Violation)> {
    let first = check_queue_linearizable_budgeted(events, SHRINK_SEARCH_BUDGET).err()?;
    let kind = std::mem::discriminant(&first);
    let mut cur = events.to_vec();
    let mut violation = first;
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            match check_queue_linearizable_budgeted(&cand, SHRINK_SEARCH_BUDGET) {
                Err(v) if std::mem::discriminant(&v) == kind => {
                    cur = cand;
                    violation = v;
                    progressed = true;
                    // Do not advance: the element now at `i` is unprobed.
                }
                _ => i += 1,
            }
        }
        if !progressed {
            return Some((cur, violation));
        }
    }
}

/// Convenience recorder: collects events with timestamps from a shared
/// atomic counter, one recorder per thread, merged at the end.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
}

impl Recorder {
    /// Creates an empty per-thread recorder.
    pub fn new() -> Self {
        Recorder { events: Vec::new() }
    }

    /// Records one completed operation.
    pub fn record(&mut self, thread: usize, op: Op, invoke: u64, ret: u64) {
        self.events.push(Event {
            thread,
            op,
            invoke,
            ret,
        });
    }

    /// Consumes the recorder, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Merges several per-thread recorders into one history.
    pub fn merge(recorders: impl IntoIterator<Item = Recorder>) -> Vec<Event> {
        recorders.into_iter().flat_map(|r| r.events).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: usize, op: Op, invoke: u64, ret: u64) -> Event {
        Event {
            thread,
            op,
            invoke,
            ret,
        }
    }

    #[test]
    fn empty_history_ok() {
        assert_eq!(check_queue_history(&[]), Ok(()));
    }

    #[test]
    fn sequential_fifo_ok() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(0, Op::Enq(2), 2, 3),
            ev(0, Op::DeqSome(1), 4, 5),
            ev(0, Op::DeqSome(2), 6, 7),
            ev(0, Op::DeqNull, 8, 9),
        ];
        assert_eq!(check_queue_history(&h), Ok(()));
    }

    #[test]
    fn detects_fresh() {
        let h = vec![ev(0, Op::DeqSome(9), 0, 1)];
        assert_eq!(check_queue_history(&h), Err(Violation::Fresh { value: 9 }));
    }

    #[test]
    fn detects_repeat() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(0, Op::DeqSome(1), 2, 3),
            ev(1, Op::DeqSome(1), 2, 3),
        ];
        assert_eq!(check_queue_history(&h), Err(Violation::Repeat { value: 1 }));
    }

    #[test]
    fn detects_ord_when_first_never_dequeued() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(0, Op::Enq(2), 2, 3),
            ev(1, Op::DeqSome(2), 4, 5),
        ];
        assert_eq!(
            check_queue_history(&h),
            Err(Violation::Ord {
                first: 1,
                second: 2
            })
        );
    }

    #[test]
    fn detects_ord_inverted_dequeues() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(0, Op::Enq(2), 2, 3),
            ev(1, Op::DeqSome(2), 4, 5),
            ev(1, Op::DeqSome(1), 6, 7), // invoked after deq(2) returned
        ];
        assert_eq!(
            check_queue_history(&h),
            Err(Violation::Ord {
                first: 1,
                second: 2
            })
        );
    }

    #[test]
    fn overlapping_enqueues_any_order_ok() {
        // enq(1) and enq(2) overlap: either dequeue order linearizes.
        let h = vec![
            ev(0, Op::Enq(1), 0, 10),
            ev(1, Op::Enq(2), 0, 10),
            ev(2, Op::DeqSome(2), 11, 12),
            ev(2, Op::DeqSome(1), 13, 14),
        ];
        assert_eq!(check_queue_history(&h), Ok(()));
    }

    #[test]
    fn overlapping_dequeues_any_order_ok() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(0, Op::Enq(2), 2, 3),
            // Two dequeues overlap; (2) may "return first".
            ev(1, Op::DeqSome(2), 4, 9),
            ev(2, Op::DeqSome(1), 4, 9),
        ];
        assert_eq!(check_queue_history(&h), Ok(()));
    }

    #[test]
    fn detects_wit() {
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(1, Op::DeqNull, 2, 3), // 1 is inside and undequeued
            ev(2, Op::DeqSome(1), 4, 5),
        ];
        assert!(matches!(
            check_queue_history(&h),
            Err(Violation::Wit { witness: 1, .. })
        ));
    }

    #[test]
    fn null_concurrent_with_enqueue_ok() {
        // enq(1) overlaps the null dequeue: the null can linearize first.
        let h = vec![
            ev(0, Op::Enq(1), 0, 5),
            ev(1, Op::DeqNull, 2, 3),
            ev(1, Op::DeqSome(1), 6, 7),
        ];
        assert_eq!(check_queue_history(&h), Ok(()));
    }

    #[test]
    fn null_concurrent_with_removing_dequeue_ok() {
        // x's dequeue overlaps the null: x may leave before the null
        // linearizes.
        let h = vec![
            ev(0, Op::Enq(1), 0, 1),
            ev(1, Op::DeqSome(1), 2, 10),
            ev(2, Op::DeqNull, 3, 9),
        ];
        assert_eq!(check_queue_history(&h), Ok(()));
    }

    #[test]
    fn rejects_malformed_duplicate_enqueue() {
        let h = vec![ev(0, Op::Enq(1), 0, 1), ev(1, Op::Enq(1), 2, 3)];
        assert!(matches!(
            check_queue_history(&h),
            Err(Violation::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_malformed_interval() {
        let h = vec![ev(0, Op::Enq(1), 5, 1)];
        assert!(matches!(
            check_queue_history(&h),
            Err(Violation::Malformed { .. })
        ));
    }

    #[test]
    fn search_accepts_valid_histories() {
        let histories: Vec<Vec<Event>> = vec![
            vec![],
            vec![
                ev(0, Op::Enq(1), 0, 1),
                ev(0, Op::Enq(2), 2, 3),
                ev(0, Op::DeqSome(1), 4, 5),
                ev(0, Op::DeqSome(2), 6, 7),
                ev(0, Op::DeqNull, 8, 9),
            ],
            // Overlapping enqueues: either linearization order works.
            vec![
                ev(0, Op::Enq(1), 0, 10),
                ev(1, Op::Enq(2), 0, 10),
                ev(2, Op::DeqSome(2), 11, 12),
                ev(2, Op::DeqSome(1), 13, 14),
            ],
            // Null concurrent with the removing dequeue.
            vec![
                ev(0, Op::Enq(1), 0, 1),
                ev(1, Op::DeqSome(1), 2, 10),
                ev(2, Op::DeqNull, 3, 9),
            ],
        ];
        for h in &histories {
            assert_eq!(
                search_linearization(h, DEFAULT_SEARCH_BUDGET),
                SearchResult::Linearizable
            );
            assert_eq!(check_queue_linearizable(h), Ok(()));
        }
    }

    /// The search is an independent implementation: it must reject the
    /// pattern-check's violation histories on its own (no legal order of
    /// the queue model exists), not just defer to the pattern pass.
    #[test]
    fn search_independently_rejects_violations() {
        let histories: Vec<Vec<Event>> = vec![
            // FIFO inversion with strictly ordered dequeues.
            vec![
                ev(0, Op::Enq(1), 0, 1),
                ev(0, Op::Enq(2), 2, 3),
                ev(1, Op::DeqSome(2), 4, 5),
                ev(1, Op::DeqSome(1), 6, 7),
            ],
            // Value dequeued twice.
            vec![
                ev(0, Op::Enq(1), 0, 1),
                ev(0, Op::DeqSome(1), 2, 3),
                ev(1, Op::DeqSome(1), 4, 5),
            ],
            // Value never enqueued.
            vec![ev(0, Op::DeqSome(9), 0, 1)],
            // Empty dequeue in a non-empty window.
            vec![
                ev(0, Op::Enq(1), 0, 1),
                ev(1, Op::DeqNull, 2, 3),
                ev(2, Op::DeqSome(1), 4, 5),
            ],
        ];
        for h in &histories {
            assert_eq!(
                search_linearization(h, DEFAULT_SEARCH_BUDGET),
                SearchResult::NoLinearization
            );
            assert!(check_queue_linearizable(h).is_err());
        }
    }

    #[test]
    fn exhausted_budget_is_a_conservative_pass() {
        // Many mutually overlapping enqueues force a wide search frontier;
        // with a one-node budget the search must give up, not misreport.
        let mut h: Vec<Event> = (0..12).map(|i| ev(i, Op::Enq(i as u64), 0, 100)).collect();
        for i in 0..12 {
            h.push(ev(i, Op::DeqSome(i as u64), 101, 110));
        }
        assert_eq!(search_linearization(&h, 1), SearchResult::BudgetExhausted);
        assert_eq!(check_queue_linearizable_budgeted(&h, 1), Ok(()));
    }

    #[test]
    fn shrink_returns_none_on_valid_history() {
        let h = vec![ev(0, Op::Enq(1), 0, 1), ev(0, Op::DeqSome(1), 2, 3)];
        assert!(shrink_history(&h).is_none());
    }

    #[test]
    fn shrink_minimizes_and_preserves_kind() {
        // A long valid prefix followed by a duplicated dequeue.
        let mut h = Vec::new();
        let mut t = 0;
        for v in 1..=20u64 {
            h.push(ev(0, Op::Enq(v), t, t + 1));
            t += 2;
        }
        for v in 1..=20u64 {
            h.push(ev(0, Op::DeqSome(v), t, t + 1));
            t += 2;
        }
        h.push(ev(1, Op::DeqSome(7), t, t + 1));
        let (min, v) = shrink_history(&h).expect("history must fail");
        assert_eq!(v, Violation::Repeat { value: 7 });
        // 1-minimal: two dequeues of 7 are all it takes (the enqueue is
        // not needed for VRepeat).
        assert_eq!(min.len(), 2);
        for i in 0..min.len() {
            let mut sub = min.clone();
            sub.remove(i);
            assert!(
                !matches!(
                    check_queue_linearizable(&sub),
                    Err(Violation::Repeat { .. })
                ),
                "shrunk history is not 1-minimal"
            );
        }
    }

    #[test]
    fn recorder_merge_collects_everything() {
        let mut r1 = Recorder::new();
        let mut r2 = Recorder::new();
        r1.record(0, Op::Enq(1), 0, 1);
        r2.record(1, Op::DeqSome(1), 2, 3);
        let h = Recorder::merge([r1, r2]);
        assert_eq!(h.len(), 2);
        assert_eq!(check_queue_history(&h), Ok(()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use simrng::SimRng;

    /// Generates a random *valid* sequential history by simulating a real
    /// FIFO queue, then perturbs nothing: the checker must accept it.
    fn valid_history(ops: Vec<bool>) -> Vec<Event> {
        let mut q = std::collections::VecDeque::new();
        let mut t = 0u64;
        let mut next_v = 1u64;
        let mut h = Vec::new();
        for is_enq in ops {
            let (i, r) = (t, t + 1);
            t += 2;
            if is_enq {
                q.push_back(next_v);
                h.push(Event {
                    thread: 0,
                    op: Op::Enq(next_v),
                    invoke: i,
                    ret: r,
                });
                next_v += 1;
            } else {
                match q.pop_front() {
                    Some(v) => h.push(Event {
                        thread: 0,
                        op: Op::DeqSome(v),
                        invoke: i,
                        ret: r,
                    }),
                    None => h.push(Event {
                        thread: 0,
                        op: Op::DeqNull,
                        invoke: i,
                        ret: r,
                    }),
                }
            }
        }
        h
    }

    #[test]
    fn accepts_all_valid_sequential_histories() {
        let mut rng = SimRng::seed_from_u64(0x11a2);
        for _ in 0..256 {
            let n = rng.gen_usize(200);
            let ops: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let h = valid_history(ops);
            assert_eq!(check_queue_history(&h), Ok(()));
        }
    }

    /// Random linearizable *concurrent* histories: execute a sequential
    /// queue at increasing linearization points, then widen every
    /// operation's interval around its point. By construction a legal
    /// order exists, so the full checker (patterns + search) must accept
    /// every history despite the overlapping intervals.
    #[test]
    fn accepts_randomized_concurrent_linearizable_histories() {
        let mut rng = SimRng::seed_from_u64(0x77aa);
        for round in 0..64 {
            let n = 4 + rng.gen_usize(40);
            let mut q = std::collections::VecDeque::new();
            let mut next_v = 1u64;
            let mut h = Vec::new();
            for k in 0..n {
                let lp = (k as u64 + 1) * 10;
                let invoke = lp - rng.gen_range_inclusive(0, 9);
                let ret = lp + rng.gen_range_inclusive(0, 9);
                let op = if rng.gen_bool(0.5) {
                    q.push_back(next_v);
                    next_v += 1;
                    Op::Enq(next_v - 1)
                } else {
                    match q.pop_front() {
                        Some(v) => Op::DeqSome(v),
                        None => Op::DeqNull,
                    }
                };
                h.push(Event {
                    thread: k % 4,
                    op,
                    invoke,
                    ret,
                });
            }
            assert_eq!(check_queue_linearizable(&h), Ok(()), "round {round}");
        }
    }

    /// Swapping the values of two distinct non-adjacent dequeues in a
    /// long valid history must produce a detectable violation.
    #[test]
    fn detects_injected_order_swap() {
        for n in 4usize..40 {
            // Build: n enqueues then n dequeues, all sequential.
            let ops: Vec<bool> = (0..n).map(|_| true).chain((0..n).map(|_| false)).collect();
            let mut h = valid_history(ops);
            // Swap the first and last dequeue's values.
            let d1 = 2 * n - n; // first dequeue index in h
            let d2 = h.len() - 1;
            let (a, b) = match (h[d1].op, h[d2].op) {
                (Op::DeqSome(a), Op::DeqSome(b)) => (a, b),
                _ => unreachable!(),
            };
            h[d1].op = Op::DeqSome(b);
            h[d2].op = Op::DeqSome(a);
            assert!(check_queue_history(&h).is_err(), "n={n}");
        }
    }
}
