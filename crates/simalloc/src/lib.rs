//! A scalable word-range allocator used as the reproduction's stand-in for
//! the Memkind allocator the paper's evaluation links against.
//!
//! Both the native (real-atomics) queue backend and the cache-coherence
//! simulator address memory as a flat array of 64-bit words. This crate
//! hands out *address ranges* in that word space; it never touches the word
//! contents. The design mirrors what matters about Memkind for the paper's
//! benchmarks: allocation must not become a contended serialization point,
//! so each thread owns a cache of free blocks per size class and only falls
//! back to a shared pool in batches.
//!
//! Address 0 is reserved as the `NULL` sentinel and is never handed out.
//!
//! ```
//! use simalloc::WordPool;
//! use std::sync::Arc;
//!
//! let pool = Arc::new(WordPool::new(1 << 20));
//! let mut a = pool.thread_cache();
//! let node = a.alloc(4);
//! assert_ne!(node, 0);
//! a.free(node, 4);
//! assert_eq!(a.alloc(4), node); // served from the local cache
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Number of size classes. Class `c` holds blocks of `1 << c` words, so the
/// largest supported allocation is `1 << (NUM_CLASSES - 1)` words (32 Mi
/// words — far beyond anything the queues allocate).
const NUM_CLASSES: usize = 26;

/// A thread refills its local cache with this many blocks at once, and
/// returns half of an overfull class to the shared pool. Batching is what
/// keeps the shared mutex off the benchmark fast path.
const REFILL_BATCH: usize = 32;

/// Local cache capacity per size class before spilling to the shared pool.
const LOCAL_CAP: usize = 2 * REFILL_BATCH;

/// Statistics counters maintained with relaxed atomics; cheap enough to keep
/// on in production builds.
#[derive(Debug, Default)]
pub struct PoolStats {
    allocs: AtomicU64,
    frees: AtomicU64,
    refills: AtomicU64,
    spills: AtomicU64,
}

/// A snapshot of [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total successful `alloc` calls across all thread caches.
    pub allocs: u64,
    /// Total `free` calls across all thread caches.
    pub frees: u64,
    /// Times a thread cache had to visit the shared pool to refill.
    pub refills: u64,
    /// Times a thread cache spilled excess blocks to the shared pool.
    pub spills: u64,
}

/// The shared word pool. Clone an [`Arc`] of it into each thread and call
/// [`WordPool::thread_cache`] to obtain that thread's allocation handle.
pub struct WordPool {
    /// Next never-allocated address. Grows monotonically; the word space is
    /// virtual (the simulator materializes words lazily), so running past a
    /// physical heap is the *backend's* concern, not ours.
    frontier: AtomicU64,
    /// Shared free lists, one per size class.
    global: [Mutex<Vec<u64>>; NUM_CLASSES],
    stats: PoolStats,
}

impl WordPool {
    /// Creates a pool whose bump frontier starts at `base_hint.max(8)`.
    /// The argument is a hint for how much address space the caller expects
    /// to pre-reserve below the frontier (address 0..base are never issued);
    /// passing the heap size keeps simulator heaps and native heaps laid out
    /// identically.
    pub fn new(base_hint: u64) -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed only
        const EMPTY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        WordPool {
            frontier: AtomicU64::new(base_hint.max(8)),
            global: [EMPTY; NUM_CLASSES],
            stats: PoolStats::default(),
        }
    }

    /// Returns a fresh per-thread allocation cache.
    pub fn thread_cache(self: &Arc<Self>) -> ThreadCache {
        ThreadCache {
            pool: Arc::clone(self),
            local: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Current bump frontier — the high-water mark of address space ever
    /// issued. Backends size their physical storage from this.
    pub fn high_water(&self) -> u64 {
        self.frontier.load(Ordering::Relaxed)
    }

    /// Snapshot of the allocation counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            allocs: self.stats.allocs.load(Ordering::Relaxed),
            frees: self.stats.frees.load(Ordering::Relaxed),
            refills: self.stats.refills.load(Ordering::Relaxed),
            spills: self.stats.spills.load(Ordering::Relaxed),
        }
    }

    /// Size class for an allocation of `words` words.
    fn class_of(words: usize) -> usize {
        assert!(words > 0, "zero-size allocation");
        let c = usize::BITS as usize - (words - 1).leading_zeros() as usize;
        let c = if words == 1 { 0 } else { c };
        assert!(c < NUM_CLASSES, "allocation of {words} words too large");
        c
    }

    /// Block size (in words) of class `c`.
    fn class_words(c: usize) -> u64 {
        1u64 << c
    }

    fn refill(&self, class: usize, out: &mut Vec<u64>) {
        self.stats.refills.fetch_add(1, Ordering::Relaxed);
        {
            // Free-list locks recover from poisoning: a panicking peer
            // cannot corrupt a Vec of addresses, and cascading the panic
            // here would mask the original failure.
            let mut g = self.global[class].lock().unwrap_or_else(|e| e.into_inner());
            let take = REFILL_BATCH.min(g.len());
            if take > 0 {
                let at = g.len() - take;
                out.extend(g.drain(at..));
                return;
            }
        }
        // Shared list empty: carve a fresh batch from the frontier. One
        // fetch_add covers the whole batch, so frontier contention is
        // 1/REFILL_BATCH of the allocation rate.
        let sz = Self::class_words(class);
        let start = self
            .frontier
            .fetch_add(sz * REFILL_BATCH as u64, Ordering::Relaxed);
        out.extend((0..REFILL_BATCH as u64).map(|i| start + i * sz));
    }

    fn spill(&self, class: usize, local: &mut Vec<u64>) {
        self.stats.spills.fetch_add(1, Ordering::Relaxed);
        let keep = LOCAL_CAP / 2;
        let mut g = self.global[class].lock().unwrap_or_else(|e| e.into_inner());
        g.extend(local.drain(keep..));
    }
}

impl std::fmt::Debug for WordPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WordPool")
            .field("frontier", &self.high_water())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Per-thread allocation handle. Not `Sync`; create one per thread.
pub struct ThreadCache {
    pool: Arc<WordPool>,
    local: [Vec<u64>; NUM_CLASSES],
}

impl ThreadCache {
    /// Allocates a block of at least `words` words and returns its base
    /// address. Never returns 0.
    pub fn alloc(&mut self, words: usize) -> u64 {
        let class = WordPool::class_of(words);
        self.pool.stats.allocs.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = self.local[class].pop() {
            return a;
        }
        self.pool.refill(class, &mut self.local[class]);
        self.local[class]
            .pop()
            .expect("refill always yields at least one block")
    }

    /// Returns a block previously obtained from [`alloc`](Self::alloc) with
    /// the same `words` argument (rounding to the size class is handled
    /// internally, so passing the original request size is correct).
    pub fn free(&mut self, addr: u64, words: usize) {
        assert_ne!(addr, 0, "freeing NULL");
        let class = WordPool::class_of(words);
        self.pool.stats.frees.fetch_add(1, Ordering::Relaxed);
        self.local[class].push(addr);
        if self.local[class].len() > LOCAL_CAP {
            self.pool.spill(class, &mut self.local[class]);
        }
    }

    /// The shared pool this cache draws from.
    pub fn pool(&self) -> &Arc<WordPool> {
        &self.pool
    }
}

impl Drop for ThreadCache {
    fn drop(&mut self) {
        // Return everything to the shared pool so short-lived threads do not
        // leak address space.
        for (class, list) in self.local.iter_mut().enumerate() {
            if !list.is_empty() {
                // Drop runs during unwinding too; a poisoned lock must not
                // turn the first panic into an abort-by-double-panic.
                let mut g = self.pool.global[class]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                g.append(list);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pool() -> Arc<WordPool> {
        Arc::new(WordPool::new(8))
    }

    #[test]
    fn class_of_rounds_to_power_of_two() {
        assert_eq!(WordPool::class_of(1), 0);
        assert_eq!(WordPool::class_of(2), 1);
        assert_eq!(WordPool::class_of(3), 2);
        assert_eq!(WordPool::class_of(4), 2);
        assert_eq!(WordPool::class_of(5), 3);
        assert_eq!(WordPool::class_of(64), 6);
        assert_eq!(WordPool::class_of(65), 7);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_alloc_panics() {
        WordPool::class_of(0);
    }

    #[test]
    fn never_returns_null() {
        let p = pool();
        let mut c = p.thread_cache();
        for sz in [1usize, 2, 3, 7, 100] {
            assert_ne!(c.alloc(sz), 0);
        }
    }

    #[test]
    fn blocks_do_not_overlap() {
        let p = pool();
        let mut c = p.thread_cache();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for i in 0..500usize {
            let sz = 1 + (i % 9);
            let a = c.alloc(sz);
            let end = a + WordPool::class_words(WordPool::class_of(sz));
            for &(s, e) in &spans {
                assert!(end <= s || a >= e, "overlap: [{a},{end}) vs [{s},{e})");
            }
            spans.push((a, end));
        }
    }

    #[test]
    fn free_then_alloc_reuses_locally() {
        let p = pool();
        let mut c = p.thread_cache();
        let a = c.alloc(4);
        c.free(a, 4);
        assert_eq!(c.alloc(4), a);
        assert_eq!(p.stats().refills, 1, "second alloc must not refill");
    }

    #[test]
    fn spill_and_cross_thread_reuse() {
        let p = pool();
        let addrs: Vec<u64> = {
            let mut c = p.thread_cache();
            let v: Vec<u64> = (0..200).map(|_| c.alloc(2)).collect();
            for &a in &v {
                c.free(a, 2);
            }
            v
        }; // drop returns the cache to the pool
        let mut c2 = p.thread_cache();
        let set: HashSet<u64> = addrs.into_iter().collect();
        let reused = (0..200).filter(|_| set.contains(&c2.alloc(2))).count();
        assert!(reused > 150, "most blocks should be recycled, got {reused}");
    }

    #[test]
    fn concurrent_alloc_free_yields_disjoint_live_blocks() {
        let p = pool();
        let per_thread: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let mut c = p.thread_cache();
                        let mut live = Vec::new();
                        for i in 0..2000usize {
                            let sz = 1 + (i % 5);
                            let a = c.alloc(sz);
                            if i % 3 == 0 {
                                c.free(a, sz);
                            } else {
                                live.push((a, sz));
                            }
                        }
                        live.iter().map(|&(a, _)| a).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen = HashSet::new();
        for list in per_thread {
            for a in list {
                assert!(seen.insert(a), "address {a} live in two threads");
            }
        }
    }

    #[test]
    fn stats_count_allocs_and_frees() {
        let p = pool();
        let mut c = p.thread_cache();
        let a = c.alloc(1);
        let b = c.alloc(1);
        c.free(a, 1);
        c.free(b, 1);
        let s = p.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
    }

    #[test]
    fn high_water_grows_with_frontier_use() {
        let p = pool();
        let before = p.high_water();
        let mut c = p.thread_cache();
        let _ = c.alloc(1024);
        assert!(p.high_water() > before);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use simrng::SimRng;

    /// Any interleaving of allocs and frees keeps live blocks disjoint and
    /// never yields NULL. 256 deterministic random scripts of up to 300
    /// operations each (sizes 1..33, free with probability one half).
    #[test]
    fn live_blocks_always_disjoint() {
        for case in 0..256u64 {
            let mut rng = SimRng::seed_from_u64(0xa110c ^ case);
            let nops = 1 + rng.gen_usize(300);
            let p = Arc::new(WordPool::new(8));
            let mut c = p.thread_cache();
            let mut live: Vec<(u64, usize)> = Vec::new();
            for _ in 0..nops {
                let sz = 1 + rng.gen_usize(32);
                let do_free = rng.gen_bool(0.5);
                if do_free && !live.is_empty() {
                    let (a, s) = live.swap_remove(live.len() / 2);
                    c.free(a, s);
                } else {
                    let a = c.alloc(sz);
                    assert_ne!(a, 0, "case {case}: alloc returned NULL");
                    let end = a + WordPool::class_words(WordPool::class_of(sz));
                    for &(la, ls) in &live {
                        let lend = la + WordPool::class_words(WordPool::class_of(ls));
                        assert!(
                            end <= la || a >= lend,
                            "case {case}: block {a:#x}+{sz} overlaps {la:#x}+{ls}"
                        );
                    }
                    live.push((a, sz));
                }
            }
        }
    }
}
