//! Saturation-knee detection over a measured offered-load curve.
//!
//! A load sweep produces one probe per offered rate, in ascending rate
//! order. The **knee** is the first probe where the service stops
//! meeting its SLO: either the end-to-end p99 exceeds the latency
//! budget, or the ingress queue depth diverged (grew past the depth
//! budget, the open-loop signature of offered load exceeding service
//! capacity — depth at or past the budget can only keep growing). The
//! finder is first-crossing, not best-fit: on a noisy curve the
//! earliest violation wins, because an operator cares about the lowest
//! rate at which the SLO was ever broken.

/// One offered-load point's knee-relevant measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneeProbe {
    /// Offered load, requests/sec (probes must be in ascending order).
    pub offered_rps: u64,
    /// Measured end-to-end p99 latency, ns.
    pub p99_ns: f64,
    /// Whether the point's peak queue depth exceeded the depth budget.
    pub diverged: bool,
}

/// Why a probe was declared the knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KneeReason {
    /// End-to-end p99 exceeded the latency SLO.
    SloExceeded,
    /// Queue depth exceeded the divergence budget.
    DepthDiverged,
}

impl KneeReason {
    /// Stable token used in TSV/JSON output.
    pub fn name(self) -> &'static str {
        match self {
            KneeReason::SloExceeded => "slo-exceeded",
            KneeReason::DepthDiverged => "depth-diverged",
        }
    }
}

/// A detected saturation knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knee {
    /// Index of the first violating probe.
    pub index: usize,
    /// Its offered load, requests/sec.
    pub offered_rps: u64,
    pub reason: KneeReason,
}

/// Finds the first probe violating the SLO, or `None` when the whole
/// curve is healthy. `slo_p99_ns <= 0` disables the latency criterion
/// (depth divergence still counts), so purely throughput-oriented
/// sweeps can use the same finder. Depth divergence outranks the
/// latency check on a probe that trips both, since an unbounded queue
/// makes any latency figure for that point transient.
pub fn find_knee(probes: &[KneeProbe], slo_p99_ns: f64) -> Option<Knee> {
    for (index, p) in probes.iter().enumerate() {
        let reason = if p.diverged {
            Some(KneeReason::DepthDiverged)
        } else if slo_p99_ns > 0.0 && p.p99_ns > slo_p99_ns {
            Some(KneeReason::SloExceeded)
        } else {
            None
        };
        if let Some(reason) = reason {
            return Some(Knee {
                index,
                offered_rps: p.offered_rps,
                reason,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(rps: u64, p99: f64) -> KneeProbe {
        KneeProbe {
            offered_rps: rps,
            p99_ns: p99,
            diverged: false,
        }
    }

    #[test]
    fn exact_knee_on_step_curve() {
        // Flat at 1 µs, steps to 100 µs at 800k rps.
        let probes = [
            probe(200_000, 1_000.0),
            probe(400_000, 1_000.0),
            probe(600_000, 1_100.0),
            probe(800_000, 100_000.0),
            probe(1_000_000, 400_000.0),
        ];
        let k = find_knee(&probes, 50_000.0).expect("step curve has a knee");
        assert_eq!(k.index, 3);
        assert_eq!(k.offered_rps, 800_000);
        assert_eq!(k.reason, KneeReason::SloExceeded);
    }

    #[test]
    fn healthy_curve_has_no_knee() {
        let probes = [
            probe(200_000, 1_000.0),
            probe(400_000, 1_200.0),
            probe(600_000, 1_500.0),
        ];
        assert_eq!(find_knee(&probes, 50_000.0), None);
        // A violation exactly at the SLO is still healthy (strict >).
        assert_eq!(find_knee(&[probe(100, 50_000.0)], 50_000.0), None);
    }

    #[test]
    fn first_crossing_wins_on_noisy_curve() {
        // Noise dips back under the SLO after the first violation; the
        // finder must still report the *first* crossing.
        let probes = [
            probe(100, 10.0),
            probe(200, 60.0), // first violation
            probe(300, 40.0), // noise dip
            probe(400, 90.0),
        ];
        let k = find_knee(&probes, 50.0).unwrap();
        assert_eq!(k.index, 1);
        assert_eq!(k.offered_rps, 200);
    }

    #[test]
    fn depth_divergence_trips_without_latency_slo() {
        let mut p = probe(500, 10.0);
        p.diverged = true;
        let k = find_knee(&[probe(100, 5.0), p], 0.0).unwrap();
        assert_eq!(k.index, 1);
        assert_eq!(k.reason, KneeReason::DepthDiverged);
        // SLO disabled: high p99 alone is not a knee.
        assert_eq!(find_knee(&[probe(100, 1e12)], 0.0), None);
    }

    #[test]
    fn divergence_outranks_latency_on_same_probe() {
        let p = KneeProbe {
            offered_rps: 900,
            p99_ns: 1e9,
            diverged: true,
        };
        assert_eq!(
            find_knee(&[p], 1.0).unwrap().reason,
            KneeReason::DepthDiverged
        );
    }

    #[test]
    fn empty_curve_has_no_knee() {
        assert_eq!(find_knee(&[], 1.0), None);
    }
}
