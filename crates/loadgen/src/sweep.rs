//! Offered-load sweeps: run one [`LoadPlan`] at a ladder of rates, fan
//! the points across the [`runner`] job pool, and find the saturation
//! knee.
//!
//! The merge is in submission (= ascending-rate) order, so the TSV/JSON
//! output is byte-identical for any job count; on the simulator every
//! value in the output is also deterministic across repeats, because a
//! point is a pure function of its plan. Job count and host wall-clock
//! deliberately never appear in the rendered artifacts.

use crate::knee::{find_knee, Knee, KneeProbe};
use crate::plan::LoadPlan;
use crate::stage::{run_load, LoadPoint};
use harness::{BackendKind, QueueKind};

/// One sweep: a base plan whose `rate_rps` is overridden per point.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub plan: LoadPlan,
    pub queue: QueueKind,
    pub backend: BackendKind,
    /// Offered rates to probe, ascending (the knee finder requires it;
    /// [`run_sweep`] sorts defensively).
    pub rates: Vec<u64>,
    /// End-to-end p99 latency SLO, ns; `<= 0` disables the latency
    /// criterion.
    pub slo_p99_ns: f64,
    /// Peak-ingress-depth budget; 0 = auto (`requests / 4`, at least 16).
    pub depth_slo: u64,
    /// Worker threads for the point fan-out (1 = serial reference).
    pub jobs: usize,
}

impl SweepSpec {
    /// The depth budget actually applied (resolves the 0 = auto rule).
    pub fn effective_depth_slo(&self) -> u64 {
        if self.depth_slo > 0 {
            self.depth_slo
        } else {
            (self.plan.requests / 4).max(16)
        }
    }
}

/// A completed sweep: the measured curve plus the detected knee.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub spec: SweepSpec,
    /// One point per probed rate, ascending.
    pub points: Vec<LoadPoint>,
    /// Per-point completion digests (sim determinism witnesses), same
    /// order as `points`.
    pub digests: Vec<u64>,
    pub knee: Option<Knee>,
}

/// The default rate ladder: the plan's nominal capacity scaled by
/// 1/4, 1/2, 3/4, 1, 3/2, and 2 — three healthy points, the nominal
/// knee region, and two overload points.
pub fn default_rates(plan: &LoadPlan) -> Vec<u64> {
    let cap = plan.capacity_rps().max(8);
    [(1u64, 4u64), (1, 2), (3, 4), (1, 1), (3, 2), (2, 1)]
        .iter()
        .map(|&(num, den)| (cap * num / den).max(1))
        .collect()
}

/// Runs every rate point (fanned across `spec.jobs` workers, merged in
/// submission order) and detects the knee.
pub fn run_sweep(spec: &SweepSpec) -> SweepResult {
    let mut spec = spec.clone();
    spec.rates.sort_unstable();
    spec.rates.dedup();
    let depth_slo = spec.effective_depth_slo();

    let tasks: Vec<_> = spec
        .rates
        .iter()
        .map(|&rate| {
            let plan = LoadPlan {
                rate_rps: rate,
                ..spec.plan.clone()
            };
            let queue = spec.queue;
            let backend = spec.backend;
            move || {
                let run = run_load(queue, &plan, backend, None);
                (run.point, run.completion_digest)
            }
        })
        .collect();
    let (results, _report) = runner::run_all(spec.jobs, tasks);

    let mut points = Vec::with_capacity(results.len());
    let mut digests = Vec::with_capacity(results.len());
    for (mut point, digest) in results {
        point.diverged = point.max_depth_ingress > depth_slo;
        points.push(point);
        digests.push(digest);
    }
    let probes: Vec<KneeProbe> = points
        .iter()
        .map(|p| KneeProbe {
            offered_rps: p.offered_rps,
            p99_ns: p.e2e_p99_ns,
            diverged: p.diverged,
        })
        .collect();
    let knee = find_knee(&probes, spec.slo_p99_ns);
    SweepResult {
        spec,
        points,
        digests,
        knee,
    }
}

/// Renders the curve as TSV: `# key value` preamble (plan, SLOs, knee),
/// a header line, then one row per rate point. Contains no job count or
/// wall-clock value, so a sim sweep's TSV is byte-identical across
/// repeats and job counts.
pub fn to_tsv(r: &SweepResult) -> String {
    let mut s = String::new();
    s.push_str(&format!("# queue {}\n", r.spec.queue.name()));
    s.push_str(&format!("# pattern {}\n", r.spec.plan.pattern.name()));
    s.push_str(&format!("# backend {}\n", r.spec.backend.name()));
    s.push_str(&format!("# slo-p99-ns {:.0}\n", r.spec.slo_p99_ns));
    s.push_str(&format!("# depth-slo {}\n", r.spec.effective_depth_slo()));
    match &r.knee {
        Some(k) => s.push_str(&format!(
            "# knee rate={} reason={}\n",
            k.offered_rps,
            k.reason.name()
        )),
        None => s.push_str("# knee none\n"),
    }
    s.push_str(
        "offered_rps\tachieved_rps\tcompleted\te2e_p50_ns\te2e_p99_ns\te2e_p999_ns\te2e_max_ns\
         \tenq_p50_ns\tsrc_lag_p99_ns\tmax_depth_in\tmax_depth_out\tend_cycles\tdiverged\n",
    );
    for p in &r.points {
        s.push_str(&format!(
            "{}\t{:.0}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\t{}\t{}\n",
            p.offered_rps,
            p.achieved_rps,
            p.completed,
            p.e2e_p50_ns,
            p.e2e_p99_ns,
            p.e2e_p999_ns,
            p.e2e_max_ns,
            p.enq_p50_ns,
            p.src_lag_p99_ns,
            p.max_depth_ingress,
            p.max_depth_egress,
            p.end_cycles,
            p.diverged as u8,
        ));
    }
    s
}

/// Renders the sweep as a JSON document (schema `sbq-loadgen-v1`),
/// hand-rolled like the wallbench exporter — no serializer dependency.
/// Same determinism contract as [`to_tsv`].
pub fn to_json(r: &SweepResult) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"sbq-loadgen-v1\",\n");
    s.push_str(&format!("  \"queue\": \"{}\",\n", r.spec.queue.name()));
    s.push_str(&format!(
        "  \"pattern\": \"{}\",\n",
        r.spec.plan.pattern.name()
    ));
    s.push_str(&format!("  \"backend\": \"{}\",\n", r.spec.backend.name()));
    s.push_str(&format!("  \"requests\": {},\n", r.spec.plan.requests));
    s.push_str(&format!(
        "  \"threads\": {{\"sources\": {}, \"workers\": {}, \"egress\": {}}},\n",
        r.spec.plan.sources, r.spec.plan.workers, r.spec.plan.egress
    ));
    s.push_str(&format!(
        "  \"service_cycles\": {},\n",
        r.spec.plan.service_cycles
    ));
    s.push_str(&format!(
        "  \"capacity_rps\": {},\n",
        r.spec.plan.capacity_rps()
    ));
    s.push_str(&format!("  \"slo_p99_ns\": {:.0},\n", r.spec.slo_p99_ns));
    s.push_str(&format!(
        "  \"depth_slo\": {},\n",
        r.spec.effective_depth_slo()
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"offered_rps\": {}, \"achieved_rps\": {:.0}, \"completed\": {}, \
             \"e2e_p50_ns\": {:.1}, \"e2e_p99_ns\": {:.1}, \"e2e_p999_ns\": {:.1}, \
             \"e2e_max_ns\": {:.1}, \"enq_p50_ns\": {:.1}, \"src_lag_p99_ns\": {:.1}, \
             \"max_depth_in\": {}, \"max_depth_out\": {}, \"end_cycles\": {}, \
             \"digest\": \"{:016x}\", \"diverged\": {}}}{}\n",
            p.offered_rps,
            p.achieved_rps,
            p.completed,
            p.e2e_p50_ns,
            p.e2e_p99_ns,
            p.e2e_p999_ns,
            p.e2e_max_ns,
            p.enq_p50_ns,
            p.src_lag_p99_ns,
            p.max_depth_ingress,
            p.max_depth_egress,
            p.end_cycles,
            r.digests[i],
            p.diverged,
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    match &r.knee {
        Some(k) => s.push_str(&format!(
            "  \"knee\": {{\"offered_rps\": {}, \"index\": {}, \"reason\": \"{}\"}}\n",
            k.offered_rps,
            k.index,
            k.reason.name()
        )),
        None => s.push_str("  \"knee\": null\n"),
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            plan: LoadPlan {
                requests: 32,
                sources: 1,
                workers: 1,
                egress: 1,
                service_cycles: 8_000,
                ..Default::default()
            },
            queue: QueueKind::SbqCas,
            backend: BackendKind::Sim,
            rates: vec![60_000, 2_000_000],
            slo_p99_ns: 0.0,
            depth_slo: 8,
            jobs: 1,
        }
    }

    #[test]
    fn sweep_finds_overload_knee_and_renders() {
        // Capacity ≈ 275k rps with one worker at 8k cycles; 2M rps must
        // diverge past a depth budget of 8.
        let r = run_sweep(&tiny_spec());
        assert_eq!(r.points.len(), 2);
        assert!(!r.points[0].diverged);
        assert!(r.points[1].diverged, "overload point must diverge");
        let k = r.knee.expect("overload sweep has a knee");
        assert_eq!(k.offered_rps, 2_000_000);
        let tsv = to_tsv(&r);
        assert!(tsv.contains("# knee rate=2000000 reason=depth-diverged"));
        assert_eq!(tsv.lines().filter(|l| !l.starts_with('#')).count(), 3);
        let json = to_json(&r);
        assert!(json.contains("\"schema\": \"sbq-loadgen-v1\""));
        assert!(json.contains("\"reason\": \"depth-diverged\""));
    }

    #[test]
    fn sweep_artifacts_are_jobs_invariant() {
        let spec = tiny_spec();
        let serial = run_sweep(&SweepSpec {
            jobs: 1,
            ..spec.clone()
        });
        let fanned = run_sweep(&SweepSpec { jobs: 4, ..spec });
        assert_eq!(serial.digests, fanned.digests);
        assert_eq!(to_tsv(&serial), to_tsv(&fanned));
        assert_eq!(to_json(&serial), to_json(&fanned));
    }

    #[test]
    fn dual_socket_88_core_sweep_finds_the_knee() {
        // The paper machine's width: 88 stage threads force
        // `machine_for` onto a dual-socket topology (44-core sockets,
        // interleaved directory homes). One healthy point and one
        // overload point bracket the knee like the narrow sweep above.
        let plan = LoadPlan {
            requests: 96,
            sources: 22,
            workers: 44,
            egress: 22,
            service_cycles: 4_000,
            ..Default::default()
        };
        let m = crate::stage::machine_for(&plan);
        assert_eq!(m.cores, 88);
        assert_eq!(m.sockets(), 2, "88 threads must span two sockets");
        let r = run_sweep(&SweepSpec {
            plan,
            queue: QueueKind::SbqCas,
            backend: BackendKind::Sim,
            rates: vec![100_000, 80_000_000],
            slo_p99_ns: 0.0,
            depth_slo: 24,
            jobs: 1,
        });
        assert!(!r.points[0].diverged, "low-rate point must stay healthy");
        let k = r.knee.expect("overload point must produce a knee");
        assert_eq!(k.offered_rps, 80_000_000);
        // Determinism at width: a repeat reproduces the digests.
        let again = run_sweep(&r.spec);
        assert_eq!(r.digests, again.digests);
    }

    #[test]
    fn default_rates_are_ascending_and_bracket_capacity() {
        let plan = LoadPlan::default();
        let rates = default_rates(&plan);
        assert_eq!(rates.len(), 6);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        let cap = plan.capacity_rps();
        assert!(rates[0] < cap && *rates.last().unwrap() > cap);
    }
}
