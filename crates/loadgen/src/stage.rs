//! The driven stage graph: ingress queue → worker pool → egress queue,
//! executed on any [`harness::Backend`].
//!
//! This generalizes `examples/pipeline.rs` into a *measured, open-loop*
//! service: sources replay the plan's precomputed arrival schedule
//! (waiting out the gap to each request's due time, never waiting for
//! completions), workers dequeue ingress, spend the request's service
//! time, and forward to egress, and egress threads timestamp
//! completion. Both stage boundaries are the queue implementation under
//! test — the same [`harness::QueueKind`] adapters the figures and the
//! fuzzer drive — so the saturation behaviour of each queue shows up as
//! end-to-end SLO latency, not just closed-loop ops/thread.
//!
//! Request `id` (1-based) is the queue element itself; its scheduled
//! arrival, ingress-enqueue, and completion times live in host-side
//! tables indexed by id. On the simulator every timestamp is a
//! deterministic function of the plan, so a run's histograms, digest,
//! and exported trace are byte-identical across repeats; on native the
//! same code measures wall-clock cycles.

use crate::plan::LoadPlan;
use absmem::ThreadCtx;
use coherence::MachineConfig;
use harness::{
    Backend, BackendKind, Job, NativeBackend, QueueAdapter, QueueKind, QueueParams, QueueVisitor,
    SimBackend, Substrate,
};
use obs::{Histogram, InstantKind, ObsSink, SpanKind};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One measured offered-load point (the TSV/JSON row).
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Queue series name (the paper's legend).
    pub queue: &'static str,
    /// Arrival-pattern token.
    pub pattern: &'static str,
    /// Mean offered load of the plan, requests/sec.
    pub offered_rps: u64,
    /// Requests driven (all of them complete — open loop never sheds).
    pub requests: u64,
    /// Requests observed at egress (equals `requests` on a sane run).
    pub completed: u64,
    /// Completion throughput over the whole run, requests/sec.
    pub achieved_rps: f64,
    /// End-to-end latency (scheduled arrival → egress dequeue), ns.
    pub e2e_p50_ns: f64,
    pub e2e_p99_ns: f64,
    pub e2e_p999_ns: f64,
    pub e2e_max_ns: f64,
    /// Ingress enqueue operation latency (source-side queue op), ns.
    pub enq_p50_ns: f64,
    /// How far sources fell behind their schedule (actual enqueue start
    /// minus scheduled arrival), ns — nonzero lag means the offered load
    /// exceeds what even the *ingress* side can absorb.
    pub src_lag_p99_ns: f64,
    /// Peak ingress / egress queue depth observed (enqueues minus
    /// dequeues after each operation) — the divergence signal.
    pub max_depth_ingress: u64,
    pub max_depth_egress: u64,
    /// Backend end-of-run time, cycles.
    pub end_cycles: u64,
    /// Whether the sweep marked this point as depth-diverged (set by
    /// `sweep::run_sweep` against its depth SLO; `false` from a bare
    /// [`run_load`]).
    pub diverged: bool,
}

/// A full run result: the data point plus the merged histograms and the
/// determinism digest (used by the equivalence suites).
#[derive(Debug)]
pub struct LoadRun {
    pub point: LoadPoint,
    /// End-to-end latency histogram, cycles.
    pub e2e: Histogram,
    /// Ingress enqueue op latency histogram, cycles.
    pub enq_op: Histogram,
    /// Worker service-stage sojourn (ingress dequeue → egress enqueue
    /// done), cycles.
    pub service: Histogram,
    /// Source scheduling lag histogram, cycles.
    pub src_lag: Histogram,
    /// Backend end-of-run time, cycles.
    pub end_time: u64,
    /// FNV-1a over every request's completion timestamp in id order plus
    /// the end time: two runs with equal digests completed every request
    /// at identical (simulated) times.
    pub completion_digest: u64,
}

/// Per-thread measurement output, merged after the run.
struct RoleOut {
    e2e: Histogram,
    enq_op: Histogram,
    service: Histogram,
    src_lag: Histogram,
}

impl RoleOut {
    fn new() -> RoleOut {
        RoleOut {
            e2e: Histogram::new(),
            enq_op: Histogram::new(),
            service: Histogram::new(),
            src_lag: Histogram::new(),
        }
    }
}

/// Host-side shared state: queue bases, counters, and per-request
/// timestamp tables. On the simulator the fibers interleave
/// deterministically, so these atomics are as reproducible as simulated
/// memory; on native they are ordinary racy-but-correct counters.
struct Shared {
    base_in: AtomicU64,
    base_out: AtomicU64,
    arrivals: Vec<u64>,
    sources_done: AtomicU64,
    ing_enq: AtomicU64,
    ing_deq: AtomicU64,
    eg_enq: AtomicU64,
    eg_deq: AtomicU64,
    ing_depth_max: AtomicU64,
    eg_depth_max: AtomicU64,
    /// Completion timestamp per request id (index 0 unused).
    final_t: Vec<AtomicU64>,
    outs: Mutex<Vec<RoleOut>>,
}

impl Shared {
    fn new(plan: &LoadPlan) -> Shared {
        Shared {
            base_in: AtomicU64::new(0),
            base_out: AtomicU64::new(0),
            arrivals: plan.arrival_offsets(),
            sources_done: AtomicU64::new(0),
            ing_enq: AtomicU64::new(0),
            ing_deq: AtomicU64::new(0),
            eg_enq: AtomicU64::new(0),
            eg_deq: AtomicU64::new(0),
            ing_depth_max: AtomicU64::new(0),
            eg_depth_max: AtomicU64::new(0),
            final_t: (0..=plan.requests).map(|_| AtomicU64::new(0)).collect(),
            outs: Mutex::new(Vec::new()),
        }
    }

    /// Records an enqueue on a (enq, deq) counter pair and updates the
    /// depth high-water mark.
    fn note_enqueue(enq: &AtomicU64, deq: &AtomicU64, depth_max: &AtomicU64) {
        let e = enq.fetch_add(1, SeqCst) + 1;
        let d = deq.load(SeqCst);
        depth_max.fetch_max(e.saturating_sub(d), SeqCst);
    }
}

/// The queue parameters the stage graph hands both boundary queues.
fn stage_queue_params(plan: &LoadPlan) -> QueueParams {
    let threads = plan.threads();
    QueueParams {
        max_threads: threads,
        // Basket cell index = thread id, and the egress queue sees
        // inserts from worker ids up to `sources + workers - 1`, so the
        // inserter bound must cover every thread that ever enqueues on
        // either queue (egress threads never do).
        enqueuers: plan.sources + plan.workers,
        basket_capacity: threads.max(44),
        ..Default::default()
    }
}

/// The simulated machine a load plan runs on: sockets of at most 44
/// cores (the paper machine's width), so an 88-thread plan lands on a
/// dual-socket topology with interleaved directory homes while narrow
/// plans keep their historical single-socket layout. Delay jitter is
/// off (the plan's own service jitter is the only noise source, so
/// runs are a pure function of the plan), invariant checking off for
/// throughput.
pub fn machine_for(plan: &LoadPlan) -> MachineConfig {
    let threads = plan.threads();
    let mut m = if threads > 44 {
        let sockets = threads.div_ceil(44);
        let mut m = MachineConfig::multi_socket(sockets, threads.div_ceil(sockets));
        m.cores = threads;
        m
    } else {
        MachineConfig::single_socket(threads)
    };
    m.delay_jitter_pct = 0;
    m.check_invariants = false;
    m.seed = plan.seed;
    m
}

/// Runs `plan` with queue type `Q` on `backend` and returns the full
/// result. Optionally emits typed spans into `obs` — recording reuses
/// the `ctx.now()` reads the latency accounting already performs, so a
/// sink cannot perturb the run (the obs on/off equivalence test pins
/// this).
pub fn run_load_on<B, Q>(backend: &mut B, plan: &LoadPlan, obs: Option<&Arc<ObsSink>>) -> LoadRun
where
    B: Backend,
    Q: QueueAdapter<B::Ctx> + 'static,
{
    plan.validate().expect("invalid load plan");
    let sh = Arc::new(Shared::new(plan));
    let n = plan.requests;
    let nthreads = plan.threads();
    let qp = stage_queue_params(plan);

    let mut programs: Vec<Job<B::Ctx>> = Vec::with_capacity(nthreads);
    // Sources: replay the arrival schedule.
    for s in 0..plan.sources {
        let sh = Arc::clone(&sh);
        let plan = plan.clone();
        let sink = obs.cloned();
        programs.push(Box::new(move |ctx: &mut B::Ctx| {
            let mut q = Q::attach(sh.base_in.load(SeqCst), ctx, &stage_queue_params(&plan));
            let mut tobs = sink.as_ref().map(|sk| sk.thread(ctx.thread_id()));
            let mut out = RoleOut::new();
            ctx.barrier();
            let start = ctx.now();
            let mut k = s;
            while (k as u64) < n {
                let id = k as u64 + 1;
                let due = start + sh.arrivals[k];
                let now = ctx.now();
                if now < due {
                    ctx.delay(due - now);
                }
                let t0 = ctx.now();
                out.src_lag.record(t0.saturating_sub(due));
                q.enqueue(ctx, id);
                let t1 = ctx.now();
                out.enq_op.record(t1 - t0);
                Shared::note_enqueue(&sh.ing_enq, &sh.ing_deq, &sh.ing_depth_max);
                if let Some(o) = &mut tobs {
                    o.instant(InstantKind::Arrival, due, id);
                    o.span(SpanKind::Enqueue, t0, t1, id);
                }
                k += plan.sources;
            }
            sh.sources_done.fetch_add(1, SeqCst);
            if let (Some(sk), Some(o)) = (&sink, tobs.take()) {
                sk.submit(o);
            }
            sh.outs.lock().unwrap_or_else(|e| e.into_inner()).push(out);
        }));
    }
    // Workers: ingress → service → egress.
    for _ in 0..plan.workers {
        let sh = Arc::clone(&sh);
        let plan = plan.clone();
        let sink = obs.cloned();
        programs.push(Box::new(move |ctx: &mut B::Ctx| {
            let qp = stage_queue_params(&plan);
            let mut qin = Q::attach(sh.base_in.load(SeqCst), ctx, &qp);
            let mut qout = Q::attach(sh.base_out.load(SeqCst), ctx, &qp);
            let mut tobs = sink.as_ref().map(|sk| sk.thread(ctx.thread_id()));
            let mut out = RoleOut::new();
            ctx.barrier();
            loop {
                let t0 = ctx.now();
                match qin.dequeue(ctx) {
                    Some(id) => {
                        sh.ing_deq.fetch_add(1, SeqCst);
                        let t1 = ctx.now();
                        ctx.delay(plan.service_cycles_for(id));
                        qout.enqueue(ctx, id);
                        let t2 = ctx.now();
                        out.service.record(t2 - t1);
                        Shared::note_enqueue(&sh.eg_enq, &sh.eg_deq, &sh.eg_depth_max);
                        if let Some(o) = &mut tobs {
                            o.span(SpanKind::Dequeue, t0, t1, id);
                            o.span(SpanKind::Service, t1, t2, id);
                        }
                    }
                    None => {
                        if sh.sources_done.load(SeqCst) == plan.sources as u64
                            && sh.ing_deq.load(SeqCst) == n
                        {
                            break;
                        }
                        ctx.delay(plan.poll_cycles.max(1));
                    }
                }
            }
            if let (Some(sk), Some(o)) = (&sink, tobs.take()) {
                sk.submit(o);
            }
            sh.outs.lock().unwrap_or_else(|e| e.into_inner()).push(out);
        }));
    }
    // Egress: drain and timestamp completion.
    for _ in 0..plan.egress {
        let sh = Arc::clone(&sh);
        let plan = plan.clone();
        let sink = obs.cloned();
        programs.push(Box::new(move |ctx: &mut B::Ctx| {
            let mut q = Q::attach(sh.base_out.load(SeqCst), ctx, &stage_queue_params(&plan));
            let mut tobs = sink.as_ref().map(|sk| sk.thread(ctx.thread_id()));
            let mut out = RoleOut::new();
            ctx.barrier();
            let start = ctx.now();
            loop {
                let t0 = ctx.now();
                match q.dequeue(ctx) {
                    Some(id) => {
                        sh.eg_deq.fetch_add(1, SeqCst);
                        let t1 = ctx.now();
                        let due = start + sh.arrivals[(id - 1) as usize];
                        out.e2e.record(t1.saturating_sub(due));
                        sh.final_t[id as usize].store(t1, SeqCst);
                        if let Some(o) = &mut tobs {
                            o.span(SpanKind::Dequeue, t0, t1, id);
                        }
                    }
                    None => {
                        if sh.eg_deq.load(SeqCst) == n {
                            break;
                        }
                        ctx.delay(plan.poll_cycles.max(1));
                    }
                }
            }
            if let (Some(sk), Some(o)) = (&sink, tobs.take()) {
                sk.submit(o);
            }
            sh.outs.lock().unwrap_or_else(|e| e.into_inner()).push(out);
        }));
    }

    let sh2 = Arc::clone(&sh);
    let report = backend.run(
        Box::new(move |ctx| {
            sh2.base_in.store(Q::create(ctx, &qp), SeqCst);
            sh2.base_out.store(Q::create(ctx, &qp), SeqCst);
        }),
        programs,
    );

    // Merge per-thread measurements (exact histogram merge).
    let outs = sh.outs.lock().unwrap_or_else(|e| e.into_inner());
    let mut e2e = Histogram::new();
    let mut enq_op = Histogram::new();
    let mut service = Histogram::new();
    let mut src_lag = Histogram::new();
    for o in outs.iter() {
        e2e.merge(&o.e2e);
        enq_op.merge(&o.enq_op);
        service.merge(&o.service);
        src_lag.merge(&o.src_lag);
    }
    drop(outs);

    let completed = sh.eg_deq.load(SeqCst);
    let end_time = report.end_time;
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut fnv = |v: u64| {
        for b in v.to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    };
    for t in sh.final_t.iter().skip(1) {
        fnv(t.load(SeqCst));
    }
    fnv(end_time);

    let point = LoadPoint {
        queue: Q::NAME,
        pattern: plan.pattern.name(),
        offered_rps: plan.rate_rps,
        requests: n,
        completed,
        achieved_rps: completed as f64 / (coherence::cycles_to_ns(end_time.max(1)) / 1e9),
        e2e_p50_ns: coherence::cycles_to_ns(e2e.p50()),
        e2e_p99_ns: coherence::cycles_to_ns(e2e.p99()),
        e2e_p999_ns: coherence::cycles_to_ns(e2e.p999()),
        e2e_max_ns: coherence::cycles_to_ns(e2e.max()),
        enq_p50_ns: coherence::cycles_to_ns(enq_op.p50()),
        src_lag_p99_ns: coherence::cycles_to_ns(src_lag.p99()),
        max_depth_ingress: sh.ing_depth_max.load(SeqCst),
        max_depth_egress: sh.eg_depth_max.load(SeqCst),
        end_cycles: end_time,
        diverged: false,
    };
    LoadRun {
        point,
        e2e,
        enq_op,
        service,
        src_lag,
        end_time,
        completion_digest: digest,
    }
}

struct LoadDriver<'a, B: Backend> {
    backend: &'a mut B,
    plan: &'a LoadPlan,
    obs: Option<&'a Arc<ObsSink>>,
}

impl<B> QueueVisitor<B::Ctx> for LoadDriver<'_, B>
where
    B: Backend,
    B::Ctx: Substrate,
{
    type Out = LoadRun;

    fn visit<Q: QueueAdapter<B::Ctx> + 'static>(self) -> LoadRun {
        run_load_on::<B, Q>(self.backend, self.plan, self.obs)
    }
}

/// Runs `plan` on the chosen backend, dispatching on the queue kind —
/// the sweep's and `simctl load`'s entry point.
pub fn run_load(
    kind: QueueKind,
    plan: &LoadPlan,
    backend: BackendKind,
    obs: Option<&Arc<ObsSink>>,
) -> LoadRun {
    match backend {
        BackendKind::Sim => {
            let mut b = SimBackend::new(machine_for(plan));
            kind.visit::<coherence::SimCtx, _>(LoadDriver {
                backend: &mut b,
                plan,
                obs,
            })
        }
        BackendKind::Native => {
            let mut b = NativeBackend::default();
            kind.visit::<absmem::native::NativeCtx, _>(LoadDriver {
                backend: &mut b,
                plan,
                obs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ArrivalPattern;

    fn tiny_plan() -> LoadPlan {
        LoadPlan {
            requests: 24,
            rate_rps: 4_000_000,
            sources: 1,
            workers: 2,
            egress: 1,
            service_cycles: 400,
            ..Default::default()
        }
    }

    #[test]
    fn every_request_completes_on_sim() {
        let run = run_load(QueueKind::SbqHtm, &tiny_plan(), BackendKind::Sim, None);
        assert_eq!(run.point.completed, 24);
        assert_eq!(run.e2e.count(), 24);
        // Every completion timestamp was stored.
        assert!(run.point.end_cycles > 0);
        assert!(run.point.e2e_p50_ns > 0.0);
        assert!(run.point.e2e_p50_ns <= run.point.e2e_p99_ns);
        assert!(run.point.e2e_p99_ns <= run.point.e2e_p999_ns);
        assert!(run.point.e2e_p999_ns <= run.point.e2e_max_ns);
    }

    #[test]
    fn sim_runs_are_deterministic() {
        let plan = LoadPlan {
            pattern: ArrivalPattern::Bursty {
                on_cycles: 4_000,
                off_cycles: 12_000,
            },
            ..tiny_plan()
        };
        let a = run_load(QueueKind::MsQueue, &plan, BackendKind::Sim, None);
        let b = run_load(QueueKind::MsQueue, &plan, BackendKind::Sim, None);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.completion_digest, b.completion_digest);
        assert_eq!(a.point.max_depth_ingress, b.point.max_depth_ingress);
    }

    #[test]
    fn overload_shows_up_as_depth_and_tail() {
        // Capacity with 1 worker at 20k cycles/request ≈ 110k rps;
        // offer 16× that and the ingress queue must pile up.
        let base = LoadPlan {
            requests: 64,
            sources: 1,
            workers: 1,
            egress: 1,
            service_cycles: 20_000,
            ..Default::default()
        };
        let low = LoadPlan {
            rate_rps: 30_000,
            ..base.clone()
        };
        let high = LoadPlan {
            rate_rps: 1_760_000,
            ..base
        };
        let l = run_load(QueueKind::SbqCas, &low, BackendKind::Sim, None);
        let h = run_load(QueueKind::SbqCas, &high, BackendKind::Sim, None);
        assert!(
            h.point.max_depth_ingress > 4 * l.point.max_depth_ingress.max(1),
            "overload depth {} vs underload {}",
            h.point.max_depth_ingress,
            l.point.max_depth_ingress
        );
        assert!(
            h.point.e2e_p99_ns > 4.0 * l.point.e2e_p99_ns,
            "overload p99 {} vs underload {}",
            h.point.e2e_p99_ns,
            l.point.e2e_p99_ns
        );
    }
}
