//! Load plans: everything that determines one open-loop run, stored as
//! integers so a plan round-trips exactly through its text artifact —
//! the same reproduction contract as `simfuzz::FuzzPlan`.
//!
//! A plan owns the **arrival process**: the request arrival times are a
//! pure function of `(seed, pattern, rate_rps, requests)` and are
//! computed up front, before any thread runs. That is what makes the
//! traffic *open-loop* — a slow queue cannot throttle its own offered
//! load, because arrival time `k` does not depend on how request `k-1`
//! fared — and what makes a sim run byte-identical across repeats and
//! across `runner` job counts.

use simrng::SimRng;

/// Nominal clock in cycles per second. Must agree with
/// [`coherence::GHZ`]; pinned by a unit test below.
pub const CLOCK_HZ: u64 = 2_200_000_000;

/// Bumped whenever the plan fields or their meaning change.
pub const PLAN_VERSION: u64 = 1;

/// How request arrivals are distributed in time. All parameters are
/// integers (cycles or permille of the plan's mean rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals: exponential inter-arrival gaps with mean
    /// `1/rate`, sampled from the plan seed.
    Poisson,
    /// On/off traffic: arrivals come uniformly spaced inside `on_cycles`
    /// windows separated by `off_cycles` of silence, with the in-burst
    /// rate raised so the *long-run mean* stays the plan rate. Every
    /// arrival lands inside an on-window exactly (`t % period <
    /// on_cycles`) — the duty-cycle-exactness property test pins this.
    Bursty { on_cycles: u64, off_cycles: u64 },
    /// A diurnal ramp: the instantaneous rate climbs linearly from
    /// `low_permille/1000` of the plan rate to `high_permille/1000` over
    /// the first half of `period_cycles`, then descends symmetrically —
    /// two monotone segments per period, like a day of user traffic
    /// compressed into simulated time.
    Diurnal {
        low_permille: u64,
        high_permille: u64,
        period_cycles: u64,
    },
}

impl ArrivalPattern {
    /// Stable token used by the text artifact and TSV output.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Poisson => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
            ArrivalPattern::Diurnal { .. } => "diurnal",
        }
    }
}

/// One fully determined open-loop load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPlan {
    /// Seed for the arrival process and per-request service jitter.
    pub seed: u64,
    pub pattern: ArrivalPattern,
    /// Mean offered load, requests per second of (simulated or wall)
    /// time at the nominal [`CLOCK_HZ`] clock.
    pub rate_rps: u64,
    /// Total requests driven through the stage graph.
    pub requests: u64,
    /// Ingress threads replaying the arrival process (source `s` owns
    /// arrivals `k ≡ s (mod sources)`).
    pub sources: usize,
    /// Worker-pool threads: dequeue ingress, spend the service time,
    /// enqueue egress.
    pub workers: usize,
    /// Egress threads draining the final queue and timestamping
    /// completion.
    pub egress: usize,
    /// Mean per-request service time, cycles.
    pub service_cycles: u64,
    /// Uniform per-request service-time extension, percent of
    /// `service_cycles` (0 = constant service time). Drawn per request
    /// id from the plan seed, so it is identical across backends.
    pub service_jitter_pct: u64,
    /// Idle back-off between empty dequeue polls, cycles.
    pub poll_cycles: u64,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            seed: 0x10ad,
            pattern: ArrivalPattern::Poisson,
            rate_rps: 1_000_000,
            requests: 256,
            sources: 1,
            workers: 2,
            egress: 1,
            service_cycles: 1_500,
            service_jitter_pct: 0,
            poll_cycles: 200,
        }
    }
}

impl LoadPlan {
    /// Threads the stage graph occupies (sources + workers + egress).
    pub fn threads(&self) -> usize {
        self.sources + self.workers + self.egress
    }

    /// Mean inter-arrival gap at the plan rate, cycles (≥ 1).
    pub fn mean_gap_cycles(&self) -> u64 {
        (CLOCK_HZ / self.rate_rps.max(1)).max(1)
    }

    /// The worker pool's nominal service capacity, requests per second:
    /// where the offered load crosses this, the queue saturates. Uses
    /// the mean service time (jitter raises it by `pct/2` on average)
    /// plus nothing for queue-op overhead, so the true knee sits
    /// slightly below this estimate.
    pub fn capacity_rps(&self) -> u64 {
        let mean_service =
            self.service_cycles + self.service_cycles * self.service_jitter_pct / 200;
        self.workers as u64 * CLOCK_HZ / mean_service.max(1)
    }

    /// Validates the plan's integer invariants, returning a diagnostic
    /// for the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        if self.rate_rps == 0 {
            return Err("rate-rps must be positive".into());
        }
        if self.sources == 0 || self.workers == 0 || self.egress == 0 {
            return Err("sources, workers, and egress must all be positive".into());
        }
        if self.service_cycles == 0 {
            return Err("service-cycles must be positive".into());
        }
        match self.pattern {
            ArrivalPattern::Bursty { on_cycles: 0, .. } => {
                Err("bursty on_cycles must be positive".into())
            }
            ArrivalPattern::Diurnal {
                low_permille,
                high_permille,
                period_cycles,
            } => {
                if low_permille == 0 || high_permille < low_permille {
                    Err("diurnal needs 0 < low_permille <= high_permille".into())
                } else if period_cycles < 2 {
                    Err("diurnal period_cycles must be >= 2".into())
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// The instantaneous offered rate at offset `t` cycles from the run
    /// start, requests per second. Constant for Poisson; the burst-local
    /// rate inside on-windows (0 inside off-windows) for bursty; the
    /// triangular ramp for diurnal. Public so the monotone-segment
    /// property tests can probe the ramp directly.
    pub fn rate_at(&self, t: u64) -> u64 {
        match self.pattern {
            ArrivalPattern::Poisson => self.rate_rps,
            ArrivalPattern::Bursty {
                on_cycles,
                off_cycles,
            } => {
                let period = on_cycles + off_cycles;
                if period == 0 || t % period < on_cycles {
                    // In-burst rate scaled so the long-run mean is rate_rps.
                    mul_ratio(self.rate_rps, period.max(1), on_cycles.max(1))
                } else {
                    0
                }
            }
            ArrivalPattern::Diurnal {
                low_permille,
                high_permille,
                period_cycles,
            } => {
                let half = (period_cycles / 2).max(1);
                let phase = t % period_cycles;
                let permille = if phase < half {
                    // Ramp up.
                    low_permille + mul_ratio(high_permille - low_permille, phase, half)
                } else {
                    // Ramp down.
                    high_permille - mul_ratio(high_permille - low_permille, phase - half, half)
                };
                mul_ratio(self.rate_rps, permille, 1000).max(1)
            }
        }
    }

    /// The arrival offsets of all `requests` requests, cycles from the
    /// post-barrier run start, non-decreasing. A pure function of the
    /// plan — computed before any thread runs, never influenced by
    /// service progress (the open-loop contract).
    pub fn arrival_offsets(&self) -> Vec<u64> {
        let mean = self.mean_gap_cycles();
        let mut rng = SimRng::seed_from_u64(self.seed ^ ARRIVAL_SEED_DOMAIN);
        let mut out = Vec::with_capacity(self.requests as usize);
        match self.pattern {
            ArrivalPattern::Poisson => {
                let mut t = 0u64;
                for _ in 0..self.requests {
                    t += exp_gap(&mut rng, mean);
                    out.push(t);
                }
            }
            ArrivalPattern::Bursty {
                on_cycles,
                off_cycles,
            } => {
                // Walk cumulative *on-time* uniformly, then map on-time
                // back to absolute time: on-time `u` lands in period
                // `u / on` at in-window offset `u % on`. Spacing in
                // on-time is `mean * on / period`, so the long-run mean
                // rate is exactly the plan rate.
                let period = on_cycles + off_cycles;
                let gap_on = mul_ratio(mean, on_cycles, period.max(1)).max(1);
                let mut u = 0u64;
                for _ in 0..self.requests {
                    u += gap_on;
                    out.push((u / on_cycles) * period + (u % on_cycles));
                }
            }
            ArrivalPattern::Diurnal { .. } => {
                let mut t = 0u64;
                for _ in 0..self.requests {
                    t += (CLOCK_HZ / self.rate_at(t).max(1)).max(1);
                    out.push(t);
                }
            }
        }
        out
    }

    /// The service time of request `id` (1-based), cycles: the plan mean
    /// extended by a uniform jitter in `0..=service_jitter_pct`% drawn
    /// from `(seed, id)` only — identical on either backend.
    pub fn service_cycles_for(&self, id: u64) -> u64 {
        if self.service_jitter_pct == 0 {
            return self.service_cycles;
        }
        let mut rng = SimRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(id),
        );
        let max_extra = self.service_cycles * self.service_jitter_pct / 100;
        self.service_cycles + rng.gen_range_inclusive(0, max_extra)
    }

    /// Renders the plan as the `key value` text artifact (the format
    /// [`parse_plan`] reads back; all values integers, lossless).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# loadgen plan — open-loop arrival process + stage graph\n");
        s.push_str(&format!("version {PLAN_VERSION}\n"));
        let pattern = match self.pattern {
            ArrivalPattern::Poisson => "poisson".to_string(),
            ArrivalPattern::Bursty {
                on_cycles,
                off_cycles,
            } => format!("bursty {on_cycles} {off_cycles}"),
            ArrivalPattern::Diurnal {
                low_permille,
                high_permille,
                period_cycles,
            } => format!("diurnal {low_permille} {high_permille} {period_cycles}"),
        };
        s.push_str(&format!("pattern {pattern}\n"));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("rate-rps {}\n", self.rate_rps));
        s.push_str(&format!("requests {}\n", self.requests));
        s.push_str(&format!("sources {}\n", self.sources));
        s.push_str(&format!("workers {}\n", self.workers));
        s.push_str(&format!("egress {}\n", self.egress));
        s.push_str(&format!("service-cycles {}\n", self.service_cycles));
        s.push_str(&format!("service-jitter-pct {}\n", self.service_jitter_pct));
        s.push_str(&format!("poll-cycles {}\n", self.poll_cycles));
        s
    }
}

/// `v * num / den` without intermediate overflow.
fn mul_ratio(v: u64, num: u64, den: u64) -> u64 {
    ((v as u128 * num as u128) / den.max(1) as u128) as u64
}

/// One exponential inter-arrival gap with mean `mean` cycles (≥ 1).
fn exp_gap(rng: &mut SimRng, mean: u64) -> u64 {
    // u uniform in (0, 1]: 53 mantissa bits, never exactly 0 so ln is
    // finite. The f64 math is a pure function of the integer draw, so
    // the stream is deterministic for a fixed seed.
    let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    ((-u.ln() * mean as f64).round() as u64).max(1)
}

/// Parses [`LoadPlan::to_text`] output back into a plan.
pub fn parse_plan(text: &str) -> Result<LoadPlan, String> {
    let mut kv: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("malformed line: {line:?}"))?;
        kv.insert(k, v.trim());
    }
    let int = |key: &str| -> Result<u64, String> {
        kv.get(key)
            .ok_or_else(|| format!("missing key: {key}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad value for {key}: {e}"))
    };
    let version = int("version")?;
    if version != PLAN_VERSION {
        return Err(format!(
            "unsupported plan version {version} (expected {PLAN_VERSION})"
        ));
    }
    let pattern_str = kv.get("pattern").ok_or("missing key: pattern")?;
    let mut parts = pattern_str.split_whitespace();
    let pattern = match parts.next() {
        Some("poisson") => ArrivalPattern::Poisson,
        Some("bursty") => {
            let p = |n: Option<&str>| -> Result<u64, String> {
                n.ok_or("bursty needs ON OFF")?
                    .parse()
                    .map_err(|e| format!("bad bursty param: {e}"))
            };
            ArrivalPattern::Bursty {
                on_cycles: p(parts.next())?,
                off_cycles: p(parts.next())?,
            }
        }
        Some("diurnal") => {
            let p = |n: Option<&str>| -> Result<u64, String> {
                n.ok_or("diurnal needs LOW HIGH PERIOD")?
                    .parse()
                    .map_err(|e| format!("bad diurnal param: {e}"))
            };
            ArrivalPattern::Diurnal {
                low_permille: p(parts.next())?,
                high_permille: p(parts.next())?,
                period_cycles: p(parts.next())?,
            }
        }
        other => return Err(format!("unknown pattern: {other:?}")),
    };
    let plan = LoadPlan {
        seed: int("seed")?,
        pattern,
        rate_rps: int("rate-rps")?,
        requests: int("requests")?,
        sources: int("sources")? as usize,
        workers: int("workers")? as usize,
        egress: int("egress")? as usize,
        service_cycles: int("service-cycles")?,
        service_jitter_pct: int("service-jitter-pct")?,
        poll_cycles: int("poll-cycles")?,
    };
    plan.validate()?;
    Ok(plan)
}

/// Seed-domain separator: keeps the arrival stream disjoint from every
/// other [`SimRng`] consumer seeded from the same user seed.
const ARRIVAL_SEED_DOMAIN: u64 = 0x4c0a_d6e2_a881_7c3b;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_matches_coherence() {
        assert_eq!((coherence::GHZ * 1e9) as u64, CLOCK_HZ);
        assert_eq!(coherence::ns_to_cycles(1e9 / CLOCK_HZ as f64), 1);
    }

    #[test]
    fn default_plan_validates() {
        assert_eq!(LoadPlan::default().validate(), Ok(()));
    }

    #[test]
    fn capacity_estimate_is_sane() {
        let plan = LoadPlan {
            workers: 2,
            service_cycles: 2_200,
            service_jitter_pct: 0,
            ..Default::default()
        };
        // 2 workers * 2.2e9 / 2200 = 2M rps.
        assert_eq!(plan.capacity_rps(), 2_000_000);
    }
}
