//! # loadgen — open-loop service-shaped load for the queue tree
//!
//! The paper's figures measure queues under *closed-loop* saturation:
//! every thread fires its next operation the moment the previous one
//! returns, so a slower queue automatically receives less load. Real
//! services are the opposite — **open-loop**: requests arrive on their
//! own schedule whether or not the service keeps up, and the interesting
//! question is not ops/thread but *at what offered load does the p99
//! blow through the SLO*. This crate asks that question of every queue
//! in the tree:
//!
//! * [`plan`]: [`LoadPlan`] — seed, arrival pattern ([`ArrivalPattern`]:
//!   Poisson / bursty on-off / diurnal ramp), rate, stage-thread counts,
//!   and service time, all integers, round-tripping exactly through a
//!   `key value` text artifact like `simfuzz::FuzzPlan`. Arrival times
//!   are precomputed from the seed, so offered load never depends on
//!   service progress.
//! * [`stage`]: the driven stage graph — sources replay the schedule
//!   into an **ingress** queue, a worker pool services requests into an
//!   **egress** queue, and egress threads timestamp completion. Both
//!   boundaries are the queue under test; runs on either
//!   [`harness::Backend`] and optionally records typed `obs` spans.
//! * [`knee`]: [`find_knee`] — the first offered-load point whose e2e
//!   p99 exceeds the SLO or whose ingress depth diverges.
//! * [`sweep`]: [`run_sweep`] — a rate ladder fanned across the
//!   [`runner`] job pool with submission-order merge, rendered as TSV or
//!   JSON (`sbq-loadgen-v1`) that is byte-identical across repeats and
//!   job counts on the simulator.
//!
//! `simctl load` is the command-line entry point.

pub mod knee;
pub mod plan;
pub mod stage;
pub mod sweep;

pub use knee::{find_knee, Knee, KneeProbe, KneeReason};
pub use plan::{parse_plan, ArrivalPattern, LoadPlan, CLOCK_HZ, PLAN_VERSION};
pub use stage::{machine_for, run_load, run_load_on, LoadPoint, LoadRun};
pub use sweep::{default_rates, run_sweep, to_json, to_tsv, SweepResult, SweepSpec};
