//! Property tests for the arrival processes: the open-loop schedule is
//! the load layer's foundation, so its statistical and determinism
//! contracts are pinned across many seeds.

use loadgen::{parse_plan, ArrivalPattern, LoadPlan, CLOCK_HZ};

fn plan_with(seed: u64, pattern: ArrivalPattern) -> LoadPlan {
    LoadPlan {
        seed,
        pattern,
        rate_rps: 2_000_000,
        requests: 2_048,
        ..Default::default()
    }
}

#[test]
fn offsets_are_deterministic_per_seed_and_nondecreasing() {
    for seed in 0..32u64 {
        for pattern in [
            ArrivalPattern::Poisson,
            ArrivalPattern::Bursty {
                on_cycles: 3_000,
                off_cycles: 9_000,
            },
            ArrivalPattern::Diurnal {
                low_permille: 200,
                high_permille: 1_800,
                period_cycles: 400_000,
            },
        ] {
            let plan = plan_with(seed, pattern);
            let a = plan.arrival_offsets();
            let b = plan.arrival_offsets();
            assert_eq!(a, b, "same plan must give the same schedule");
            assert_eq!(a.len() as u64, plan.requests);
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "offsets must be non-decreasing ({pattern:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn different_seeds_give_different_poisson_schedules() {
    let a = plan_with(1, ArrivalPattern::Poisson).arrival_offsets();
    let b = plan_with(2, ArrivalPattern::Poisson).arrival_offsets();
    assert_ne!(a, b);
}

#[test]
fn poisson_mean_rate_is_close_across_seeds() {
    // Per-seed the empirical rate fluctuates; averaged over 32 seeds the
    // relative error of the mean gap must be small (exponential gaps,
    // n = 32 * 2048 samples → stderr ≈ 0.4%; bound at 3%).
    let mut total_span = 0u128;
    let mut total_arrivals = 0u128;
    for seed in 0..32u64 {
        let plan = plan_with(seed, ArrivalPattern::Poisson);
        let offs = plan.arrival_offsets();
        total_span += *offs.last().unwrap() as u128;
        total_arrivals += offs.len() as u128;
    }
    let mean_gap = total_span as f64 / total_arrivals as f64;
    let expect = CLOCK_HZ as f64 / 2_000_000.0; // 1100 cycles
    let rel_err = (mean_gap - expect).abs() / expect;
    assert!(
        rel_err < 0.03,
        "poisson mean gap {mean_gap:.1} vs expected {expect:.1} (rel err {rel_err:.4})"
    );
}

#[test]
fn bursty_arrivals_land_inside_on_windows_exactly() {
    for seed in 0..8u64 {
        let (on, off) = (2_500u64, 7_500u64);
        let plan = plan_with(
            seed,
            ArrivalPattern::Bursty {
                on_cycles: on,
                off_cycles: off,
            },
        );
        let offs = plan.arrival_offsets();
        for &t in &offs {
            assert!(
                t % (on + off) < on,
                "arrival at {t} lies in an off-window (period {})",
                on + off
            );
        }
        // Duty-cycle exactness: the mapping preserves the long-run mean
        // rate, so the last arrival sits within one period of the ideal
        // open-loop makespan requests * mean_gap scaled by period/on.
        let ideal = plan.requests * plan.mean_gap_cycles();
        let got = *offs.last().unwrap();
        let slack = on + off + plan.mean_gap_cycles();
        assert!(
            got.abs_diff(ideal) <= slack,
            "bursty makespan {got} vs ideal {ideal} (slack {slack})"
        );
    }
}

#[test]
fn diurnal_rate_has_monotone_ramp_segments() {
    let plan = plan_with(
        7,
        ArrivalPattern::Diurnal {
            low_permille: 100,
            high_permille: 2_000,
            period_cycles: 1_000_000,
        },
    );
    let period = 1_000_000u64;
    let half = period / 2;
    // First half: non-decreasing instantaneous rate; second half:
    // non-increasing. Probe both segments densely.
    let mut prev = 0;
    for step in 0..=100u64 {
        let r = plan.rate_at(step * (half / 100));
        assert!(r >= prev, "ramp-up must be monotone at step {step}");
        prev = r;
    }
    for step in 0..=100u64 {
        let t = half + step * (half / 100);
        let r = plan.rate_at(t.min(period - 1));
        assert!(r <= prev, "ramp-down must be monotone at step {step}");
        prev = r;
    }
    // Extremes hit the configured band.
    assert_eq!(plan.rate_at(0), 2_000_000 * 100 / 1000);
    assert_eq!(plan.rate_at(half), 2_000_000 * 2_000 / 1000);
}

#[test]
fn plan_roundtrips_through_text_artifact() {
    for (i, pattern) in [
        ArrivalPattern::Poisson,
        ArrivalPattern::Bursty {
            on_cycles: 123,
            off_cycles: 4_567,
        },
        ArrivalPattern::Diurnal {
            low_permille: 1,
            high_permille: 999,
            period_cycles: 31_337,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let plan = LoadPlan {
            seed: 0xdead_beef + i as u64,
            pattern,
            rate_rps: 777_777,
            requests: 4_242,
            sources: 3,
            workers: 5,
            egress: 2,
            service_cycles: 1_234,
            service_jitter_pct: 40,
            poll_cycles: 99,
        };
        let text = plan.to_text();
        let back = parse_plan(&text).expect("rendered plan must parse");
        assert_eq!(back, plan, "text artifact must round-trip exactly");
        // And the round-tripped plan generates the identical schedule.
        assert_eq!(back.arrival_offsets(), plan.arrival_offsets());
    }
}

#[test]
fn parse_rejects_corrupt_artifacts() {
    let good = LoadPlan::default().to_text();
    assert!(parse_plan(&good).is_ok());
    assert!(parse_plan(&good.replace("version 1", "version 99")).is_err());
    assert!(parse_plan(&good.replace("requests 256", "requests 0")).is_err());
    assert!(parse_plan(&good.replace("pattern poisson", "pattern lumpy")).is_err());
    assert!(parse_plan("").is_err());
}

#[test]
fn service_jitter_is_a_pure_function_of_seed_and_id() {
    let plan = LoadPlan {
        service_jitter_pct: 50,
        ..Default::default()
    };
    for id in 1..=64u64 {
        let s = plan.service_cycles_for(id);
        assert_eq!(s, plan.service_cycles_for(id), "same id, same jitter");
        assert!(s >= plan.service_cycles);
        assert!(s <= plan.service_cycles + plan.service_cycles / 2);
    }
    // Jitter off: exactly the mean.
    let flat = LoadPlan::default();
    assert_eq!(flat.service_cycles_for(9), flat.service_cycles);
}
