//! Native backend: the abstract word memory realized over a flat array of
//! `AtomicU64` with `SeqCst` orderings, matching the C11 `seq_cst` accesses
//! of the paper's evaluated implementations.

use crate::{Addr, ThreadCtx};
use simalloc::{ThreadCache, WordPool};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Instant;

/// Nominal clock used to convert between cycles and nanoseconds: the
/// evaluation machine's Xeon E5-2699 v4 base clock.
pub const GHZ: f64 = 2.2;

/// Converts a cycle count at the nominal [`GHZ`] clock to nanoseconds,
/// rounded to nearest. Truncation would bias every short-delay
/// conversion low (2 cycles at 2.2 GHz is 0.909 ns — 0 when truncated,
/// 1 when rounded).
#[inline]
pub fn cycles_to_ns(cycles: u64) -> u64 {
    (cycles as f64 / GHZ).round() as u64
}

/// Measured spin-loop iterations per microsecond, calibrated once per
/// process. Used to realize delays too short for `Instant` polling
/// (granularity is tens of ns) as a counted spin instead of a guess.
fn spins_per_us() -> u64 {
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Time a fixed spin batch against the monotonic clock; repeat and
        // keep the fastest (least-preempted) sample.
        const BATCH: u64 = 200_000;
        let mut best_ns = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..BATCH {
                std::hint::spin_loop();
            }
            best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
        }
        (BATCH * 1_000 / best_ns.max(1)).max(1)
    })
}

/// Busy-waits for `cycles` cycles at the nominal [`GHZ`] clock — the
/// calibrated realization of [`ThreadCtx::delay`] on real hardware,
/// shared so harness code can reproduce algorithm delays exactly.
/// Delays under ~40 ns use the counted spin calibration (`Instant`
/// polling would round them to its own granularity); longer delays poll
/// the monotonic clock.
pub fn busy_wait_cycles(cycles: u64) {
    let target_ns = cycles as f64 / GHZ;
    if target_ns < 40.0 {
        let spins = (target_ns * spins_per_us() as f64 / 1_000.0) as u64;
        for _ in 0..spins.max(1) {
            std::hint::spin_loop();
        }
        return;
    }
    let target_ns = target_ns as u64;
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < target_ns {
        std::hint::spin_loop();
    }
}

/// A fixed-capacity native heap of 64-bit words shared by all threads.
pub struct NativeHeap {
    words: Box<[AtomicU64]>,
    pool: Arc<WordPool>,
    epoch: Instant,
}

impl NativeHeap {
    /// Creates a heap with capacity for `words` words. Word 0 is the NULL
    /// sentinel. Allocation past the capacity panics — size generously.
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        NativeHeap {
            words: v.into_boxed_slice(),
            pool: Arc::new(WordPool::new(8)),
            epoch: Instant::now(),
        }
    }

    /// Creates the per-thread context for thread `tid`. The context has no
    /// thread group: [`ThreadCtx::barrier`] panics on it. Use
    /// [`run_threads`] (or attach one with [`NativeCtx::with_barrier`]) for
    /// phased multi-thread workloads.
    pub fn ctx(self: &Arc<Self>, tid: usize) -> NativeCtx {
        NativeCtx {
            heap: Arc::clone(self),
            tid,
            cache: self.pool.thread_cache(),
            barrier: None,
        }
    }

    /// Number of words of capacity.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn word(&self, a: Addr) -> &AtomicU64 {
        debug_assert_ne!(a, 0, "access to NULL");
        &self.words[a as usize]
    }
}

/// Per-thread handle onto a [`NativeHeap`].
pub struct NativeCtx {
    heap: Arc<NativeHeap>,
    tid: usize,
    cache: ThreadCache,
    /// The thread group's rendezvous, shared by every context of one run;
    /// `None` for standalone contexts, whose `barrier()` panics.
    barrier: Option<Arc<Barrier>>,
}

impl NativeCtx {
    /// Attaches this context to a thread group's barrier (sized to the
    /// number of participating threads). All contexts that will
    /// rendezvous must share one `Arc<Barrier>`.
    pub fn with_barrier(mut self, barrier: Arc<Barrier>) -> NativeCtx {
        self.barrier = Some(barrier);
        self
    }
}

impl ThreadCtx for NativeCtx {
    #[inline]
    fn thread_id(&self) -> usize {
        self.tid
    }

    #[inline]
    fn read(&mut self, a: Addr) -> u64 {
        self.heap.word(a).load(SeqCst)
    }

    #[inline]
    fn write(&mut self, a: Addr, v: u64) {
        self.heap.word(a).store(v, SeqCst)
    }

    #[inline]
    fn cas(&mut self, a: Addr, old: u64, new: u64) -> bool {
        self.heap
            .word(a)
            .compare_exchange(old, new, SeqCst, SeqCst)
            .is_ok()
    }

    #[inline]
    fn faa(&mut self, a: Addr, v: u64) -> u64 {
        self.heap.word(a).fetch_add(v, SeqCst)
    }

    #[inline]
    fn swap(&mut self, a: Addr, v: u64) -> u64 {
        self.heap.word(a).swap(v, SeqCst)
    }

    fn delay(&mut self, cycles: u64) {
        busy_wait_cycles(cycles)
    }

    fn alloc(&mut self, words: usize) -> Addr {
        let a = self.cache.alloc(words);
        assert!(
            (a as usize) + words <= self.heap.words.len(),
            "native heap exhausted: grow NativeHeap::new capacity"
        );
        a
    }

    fn free(&mut self, a: Addr, words: usize) {
        self.cache.free(a, words)
    }

    fn now(&self) -> u64 {
        (self.heap.epoch.elapsed().as_nanos() as f64 * GHZ) as u64
    }

    fn barrier(&mut self) {
        self.barrier
            .as_ref()
            .expect(
                "barrier() on a native context without a thread group: \
                 use run_threads or NativeCtx::with_barrier",
            )
            .wait();
    }
}

/// Runs `nthreads` closures concurrently, each with its own [`NativeCtx`],
/// and returns their results in thread-id order. The contexts share a
/// barrier sized to the group, so the closures may use
/// [`ThreadCtx::barrier`] for phased workloads.
pub fn run_threads<R: Send>(
    heap: &Arc<NativeHeap>,
    nthreads: usize,
    f: impl Fn(&mut NativeCtx) -> R + Sync,
) -> Vec<R> {
    let barrier = Arc::new(Barrier::new(nthreads));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nthreads)
            .map(|tid| {
                let mut ctx = heap.ctx(tid).with_barrier(Arc::clone(&barrier));
                let f = &f;
                s.spawn(move || f(&mut ctx))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_ns_rounds_to_nearest() {
        // At 2.2 GHz: 1 cycle = 0.4545 ns, 2 cycles = 0.909 ns.
        assert_eq!(cycles_to_ns(0), 0);
        assert_eq!(cycles_to_ns(1), 0, "0.45 ns rounds down");
        assert_eq!(cycles_to_ns(2), 1, "0.91 ns rounds up (truncation gave 0)");
        assert_eq!(cycles_to_ns(3), 1, "1.36 ns rounds down");
        assert_eq!(cycles_to_ns(11), 5, "exact 5 ns boundary");
        assert_eq!(cycles_to_ns(22), 10, "exact 10 ns boundary");
        assert_eq!(cycles_to_ns(23), 10, "10.45 ns rounds down");
        assert_eq!(cycles_to_ns(24), 11, "10.91 ns rounds up");
        assert_eq!(cycles_to_ns(2200), 1000);
        // Round-to-nearest never undershoots by a full nanosecond.
        for c in 0..10_000u64 {
            let exact = c as f64 / GHZ;
            let got = cycles_to_ns(c) as f64;
            assert!((got - exact).abs() <= 0.5 + 1e-9, "cycles={c}");
        }
    }

    #[test]
    fn rmw_primitives_match_spec() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let a = c.alloc(1);
        c.write(a, 10);
        assert_eq!(c.faa(a, 5), 10);
        assert_eq!(c.read(a), 15);
        assert_eq!(c.swap(a, 99), 15);
        assert_eq!(c.read(a), 99);
        assert!(c.cas(a, 99, 1));
        assert!(!c.cas(a, 99, 2));
        assert_eq!(c.read(a), 1);
    }

    #[test]
    fn concurrent_faa_loses_no_increments() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let a = {
            let mut c = heap.ctx(0);
            let a = c.alloc(1);
            c.write(a, 0);
            a
        };
        const N: u64 = 10_000;
        run_threads(&heap, 4, |ctx| {
            for _ in 0..N {
                ctx.faa(a, 1);
            }
        });
        assert_eq!(heap.ctx(0).read(a), 4 * N);
    }

    #[test]
    fn concurrent_cas_elects_single_winner_per_round() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let a = {
            let mut c = heap.ctx(0);
            let a = c.alloc(1);
            c.write(a, 0);
            a
        };
        let wins = run_threads(&heap, 4, |ctx| {
            let mut w = 0u64;
            for round in 0..1000u64 {
                if ctx.cas(a, round, round + 1) {
                    w += 1;
                } else {
                    // Wait for the round to finish before the next attempt.
                    while ctx.read(a) <= round {
                        std::hint::spin_loop();
                    }
                }
            }
            w
        });
        assert_eq!(wins.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn delay_spends_roughly_requested_time() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let t0 = Instant::now();
        c.delay(220_000); // 100 µs at 2.2 GHz
        let el = t0.elapsed().as_micros();
        assert!(el >= 95, "delay too short: {el} µs");
    }

    #[test]
    fn now_is_monotonic() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let a = c.now();
        c.delay(10_000);
        assert!(c.now() > a);
    }
}
