//! Native backend: the abstract word memory realized over a flat array of
//! `AtomicU64` with `SeqCst` orderings, matching the C11 `seq_cst` accesses
//! of the paper's evaluated implementations.

use crate::{Addr, ThreadCtx};
use simalloc::{ThreadCache, WordPool};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

/// Nominal clock used to convert between cycles and nanoseconds: the
/// evaluation machine's Xeon E5-2699 v4 base clock.
pub const GHZ: f64 = 2.2;

/// A fixed-capacity native heap of 64-bit words shared by all threads.
pub struct NativeHeap {
    words: Box<[AtomicU64]>,
    pool: Arc<WordPool>,
    epoch: Instant,
}

impl NativeHeap {
    /// Creates a heap with capacity for `words` words. Word 0 is the NULL
    /// sentinel. Allocation past the capacity panics — size generously.
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        NativeHeap {
            words: v.into_boxed_slice(),
            pool: Arc::new(WordPool::new(8)),
            epoch: Instant::now(),
        }
    }

    /// Creates the per-thread context for thread `tid`.
    pub fn ctx(self: &Arc<Self>, tid: usize) -> NativeCtx {
        NativeCtx {
            heap: Arc::clone(self),
            tid,
            cache: self.pool.thread_cache(),
        }
    }

    /// Number of words of capacity.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn word(&self, a: Addr) -> &AtomicU64 {
        debug_assert_ne!(a, 0, "access to NULL");
        &self.words[a as usize]
    }
}

/// Per-thread handle onto a [`NativeHeap`].
pub struct NativeCtx {
    heap: Arc<NativeHeap>,
    tid: usize,
    cache: ThreadCache,
}

impl ThreadCtx for NativeCtx {
    #[inline]
    fn thread_id(&self) -> usize {
        self.tid
    }

    #[inline]
    fn read(&mut self, a: Addr) -> u64 {
        self.heap.word(a).load(SeqCst)
    }

    #[inline]
    fn write(&mut self, a: Addr, v: u64) {
        self.heap.word(a).store(v, SeqCst)
    }

    #[inline]
    fn cas(&mut self, a: Addr, old: u64, new: u64) -> bool {
        self.heap
            .word(a)
            .compare_exchange(old, new, SeqCst, SeqCst)
            .is_ok()
    }

    #[inline]
    fn faa(&mut self, a: Addr, v: u64) -> u64 {
        self.heap.word(a).fetch_add(v, SeqCst)
    }

    #[inline]
    fn swap(&mut self, a: Addr, v: u64) -> u64 {
        self.heap.word(a).swap(v, SeqCst)
    }

    fn delay(&mut self, cycles: u64) {
        // Busy-wait for cycles/GHZ nanoseconds. `Instant` granularity is
        // tens of ns, which is adequate for the ≥50-cycle delays the
        // algorithms use; shorter delays degrade to a handful of spin hints.
        let target_ns = (cycles as f64 / GHZ) as u64;
        if target_ns < 40 {
            for _ in 0..cycles {
                std::hint::spin_loop();
            }
            return;
        }
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < target_ns {
            std::hint::spin_loop();
        }
    }

    fn alloc(&mut self, words: usize) -> Addr {
        let a = self.cache.alloc(words);
        assert!(
            (a as usize) + words <= self.heap.words.len(),
            "native heap exhausted: grow NativeHeap::new capacity"
        );
        a
    }

    fn free(&mut self, a: Addr, words: usize) {
        self.cache.free(a, words)
    }

    fn now(&self) -> u64 {
        (self.heap.epoch.elapsed().as_nanos() as f64 * GHZ) as u64
    }
}

/// Runs `nthreads` closures concurrently, each with its own [`NativeCtx`],
/// and returns their results in thread-id order. The closure receives
/// `(ctx, tid)`.
pub fn run_threads<R: Send>(
    heap: &Arc<NativeHeap>,
    nthreads: usize,
    f: impl Fn(&mut NativeCtx) -> R + Sync,
) -> Vec<R> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nthreads)
            .map(|tid| {
                let mut ctx = heap.ctx(tid);
                let f = &f;
                s.spawn(move || f(&mut ctx))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_primitives_match_spec() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let a = c.alloc(1);
        c.write(a, 10);
        assert_eq!(c.faa(a, 5), 10);
        assert_eq!(c.read(a), 15);
        assert_eq!(c.swap(a, 99), 15);
        assert_eq!(c.read(a), 99);
        assert!(c.cas(a, 99, 1));
        assert!(!c.cas(a, 99, 2));
        assert_eq!(c.read(a), 1);
    }

    #[test]
    fn concurrent_faa_loses_no_increments() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let a = {
            let mut c = heap.ctx(0);
            let a = c.alloc(1);
            c.write(a, 0);
            a
        };
        const N: u64 = 10_000;
        run_threads(&heap, 4, |ctx| {
            for _ in 0..N {
                ctx.faa(a, 1);
            }
        });
        assert_eq!(heap.ctx(0).read(a), 4 * N);
    }

    #[test]
    fn concurrent_cas_elects_single_winner_per_round() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let a = {
            let mut c = heap.ctx(0);
            let a = c.alloc(1);
            c.write(a, 0);
            a
        };
        let wins = run_threads(&heap, 4, |ctx| {
            let mut w = 0u64;
            for round in 0..1000u64 {
                if ctx.cas(a, round, round + 1) {
                    w += 1;
                } else {
                    // Wait for the round to finish before the next attempt.
                    while ctx.read(a) <= round {
                        std::hint::spin_loop();
                    }
                }
            }
            w
        });
        assert_eq!(wins.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn delay_spends_roughly_requested_time() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let t0 = Instant::now();
        c.delay(220_000); // 100 µs at 2.2 GHz
        let el = t0.elapsed().as_micros();
        assert!(el >= 95, "delay too short: {el} µs");
    }

    #[test]
    fn now_is_monotonic() {
        let heap = Arc::new(NativeHeap::new(1 << 10));
        let mut c = heap.ctx(0);
        let a = c.now();
        c.delay(10_000);
        assert!(c.now() > a);
    }
}
