//! Word-addressed abstract shared memory.
//!
//! The paper's system model (§2) treats memory as an array `m` of 64-bit
//! words supporting `read`, `write`, `FAA`, `SWAP` and `CAS`. Every queue
//! algorithm in this repository is written against that model, via the
//! [`ThreadCtx`] trait, so that *one* implementation of each algorithm runs
//! both
//!
//! * natively, on real `AtomicU64`s with real OS threads (this crate's
//!   [`native`] module), and
//! * on the discrete-event cache-coherence + HTM simulator (the `coherence`
//!   crate), where latency is measured in simulated cycles.
//!
//! Addresses are plain `u64` line/word indices; `0` is `NULL`.

pub mod native;

/// The reserved null address. Allocators never return it.
pub const NULL: u64 = 0;

/// A word address in the abstract memory. A type alias rather than a
/// newtype: the queue algorithms do substantial address arithmetic
/// (field offsets, cell indexing) and the paper's pseudocode is written in
/// terms of raw pointers.
pub type Addr = u64;

/// One thread's handle onto the shared memory. Each participating thread
/// owns exactly one `ThreadCtx`; the context carries the thread id, the
/// allocator cache, and — in the simulator backend — the thread's local
/// clock and cache state.
///
/// All operations are sequentially consistent, matching the paper's model.
pub trait ThreadCtx {
    /// The calling thread's id, dense in `0..nthreads`.
    fn thread_id(&self) -> usize;

    /// Atomic 64-bit load of `m[a]`.
    fn read(&mut self, a: Addr) -> u64;

    /// Atomic 64-bit store of `v` into `m[a]`.
    fn write(&mut self, a: Addr, v: u64);

    /// Compare-and-set: if `m[a] == old`, stores `new` and returns `true`.
    fn cas(&mut self, a: Addr, old: u64, new: u64) -> bool;

    /// Fetch-and-add: returns the previous value of `m[a]` and stores
    /// `m[a] + v` (wrapping).
    fn faa(&mut self, a: Addr, v: u64) -> u64;

    /// Atomic exchange: returns the previous value of `m[a]` and stores `v`.
    fn swap(&mut self, a: Addr, v: u64) -> u64;

    /// Spends `cycles` of compute time without touching shared memory.
    /// Native backend: a calibrated busy-wait. Simulator: advances the
    /// thread's local clock (and is interruptible by a transaction abort).
    fn delay(&mut self, cycles: u64);

    /// Allocates a block of `words` words; never returns [`NULL`]. The
    /// block's contents are *unspecified* (possibly recycled); callers must
    /// initialize every word they read.
    fn alloc(&mut self, words: usize) -> Addr;

    /// Frees a block previously allocated with the same size.
    fn free(&mut self, a: Addr, words: usize);

    /// The thread's current time in cycles (simulated or wall-clock
    /// converted). Only meaningful for measurement, never for algorithm
    /// logic.
    fn now(&self) -> u64;

    /// Blocks until every thread of the run has reached a barrier; used by
    /// phased workloads (pre-fill, then measure; operate, then drain). The
    /// simulator resumes all participants at the same simulated instant;
    /// the native backend uses an OS barrier shared by the thread group.
    /// Panics on a context that was created without a thread group (e.g. a
    /// solo bootstrap context on a group of one is fine; a bare
    /// `NativeHeap::ctx` handle is not). Do not mix barriers with threads
    /// that finish before reaching them.
    fn barrier(&mut self);

    /// Blocks until the backend's tick source releases this thread's next
    /// tick — on the simulator, a `TickGate` component paces the calling
    /// core (timer-driven consumers, DMA-style bulk producers). Backends
    /// without a tick source return immediately (the default), so paced
    /// programs stay portable: pacing is a scheduling constraint, never a
    /// correctness dependency.
    fn wait_tick(&mut self) {}
}

/// How a queue's contended tail CAS is performed. The paper evaluates three
/// strategies on the *same* modular queue: a plain CAS (baselines), a
/// delayed CAS (the SBQ-CAS control), and the HTM-based TxCAS (SBQ-HTM,
/// defined in the `sbq` crate because it needs the HTM interface).
pub trait CasStrategy<C: ?Sized> {
    /// Attempts to change `m[a]` from `old` to `new`, returning whether the
    /// caller's value was installed. Unlike a raw CAS, a strategy is allowed
    /// to spend time (delays, HTM retries) before reporting the outcome, but
    /// it must be linearizable to a single CAS: `false` implies some other
    /// write changed `m[a]` away from `old` during the call.
    fn cas(&self, ctx: &mut C, a: Addr, old: u64, new: u64) -> bool;
}

/// Plain hardware CAS: the strategy used by every baseline queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardCas;

impl<C: ThreadCtx> CasStrategy<C> for StandardCas {
    #[inline]
    fn cas(&self, ctx: &mut C, a: Addr, old: u64, new: u64) -> bool {
        ctx.cas(a, old, new)
    }
}

/// Read–delay–CAS: the paper's SBQ-CAS control variant (§6.1), which has the
/// same delay placement as TxCAS but no HTM. Also the best available
/// approximation of TxCAS on hardware without HTM, which is how the native
/// typed queue uses it.
#[derive(Debug, Clone, Copy)]
pub struct DelayedCas {
    /// Delay inserted before attempting the CAS, in cycles. The paper's
    /// tuned value is ≈270 ns ≈ 600 cycles at 2.2 GHz.
    pub delay_cycles: u64,
}

impl Default for DelayedCas {
    fn default() -> Self {
        DelayedCas { delay_cycles: 600 }
    }
}

impl<C: ThreadCtx> CasStrategy<C> for DelayedCas {
    fn cas(&self, ctx: &mut C, a: Addr, old: u64, new: u64) -> bool {
        if ctx.read(a) != old {
            return false;
        }
        ctx.delay(self.delay_cycles);
        if ctx.cas(a, old, new) {
            return true;
        }
        // A failed CAS here means the location changed; no retry — the
        // modular queue profits from the failure instead.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::native::NativeHeap;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn standard_cas_semantics() {
        let heap = Arc::new(NativeHeap::new(1 << 12));
        let mut ctx = heap.ctx(0);
        let a = ctx.alloc(1);
        ctx.write(a, 7);
        assert!(StandardCas.cas(&mut ctx, a, 7, 9));
        assert_eq!(ctx.read(a), 9);
        assert!(!StandardCas.cas(&mut ctx, a, 7, 11));
        assert_eq!(ctx.read(a), 9);
    }

    #[test]
    fn delayed_cas_fails_fast_on_stale_old() {
        let heap = Arc::new(NativeHeap::new(1 << 12));
        let mut ctx = heap.ctx(0);
        let a = ctx.alloc(1);
        ctx.write(a, 1);
        let s = DelayedCas { delay_cycles: 50 };
        assert!(!s.cas(&mut ctx, a, 2, 3), "old mismatch must fail");
        assert!(s.cas(&mut ctx, a, 1, 3));
        assert_eq!(ctx.read(a), 3);
    }
}
