//! The backend contract: the same program, run on the simulator and on
//! native atomics, produces the same logical outcome — identical
//! per-thread op counts and a linearizable queue history — even though
//! timing and interleavings differ completely.

use harness::{
    dequeue_multiset, enqueue_multiset, mixed_ops, record_history, Backend, DriveSpec, Job,
    NativeBackend, QueueKind, QueueParams, SimBackend,
};
use linearize::check_queue_history;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use absmem::ThreadCtx;
use coherence::MachineConfig;

const THREADS: usize = 2;
const OPS_PER_THREAD: u64 = 100;

/// Runs the shared two-thread FAA program on `backend` and returns the
/// per-thread op counts plus the final counter value.
fn faa_program<B: Backend>(backend: &mut B) -> (Vec<u64>, u64) {
    let base = Arc::new(AtomicU64::new(0));
    let counts: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let finals = Arc::new(AtomicU64::new(0));

    let programs: Vec<Job<B::Ctx>> = (0..THREADS)
        .map(|_| {
            let base = Arc::clone(&base);
            let counts = Arc::clone(&counts);
            let finals = Arc::clone(&finals);
            Box::new(move |ctx: &mut B::Ctx| {
                let a = base.load(SeqCst);
                let tid = ctx.thread_id();
                ctx.barrier();
                let mut done = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    ctx.faa(a, 1);
                    done += 1;
                }
                ctx.barrier();
                finals.store(ctx.read(a), SeqCst);
                counts.lock().unwrap().push((tid, done));
            }) as Job<B::Ctx>
        })
        .collect();

    let b2 = Arc::clone(&base);
    backend.run(
        Box::new(move |ctx| {
            let a = ctx.alloc(1);
            ctx.write(a, 0);
            b2.store(a, SeqCst);
        }),
        programs,
    );

    let mut per_thread = vec![0u64; THREADS];
    for (tid, done) in counts.lock().unwrap().iter() {
        per_thread[*tid] = *done;
    }
    (per_thread, finals.load(SeqCst))
}

#[test]
fn faa_program_agrees_across_backends() {
    let mut sim = SimBackend::new(MachineConfig::single_socket(THREADS));
    let mut native = NativeBackend::default();
    let (sim_counts, sim_final) = faa_program(&mut sim);
    let (native_counts, native_final) = faa_program(&mut native);

    // Same per-thread op counts on both substrates...
    assert_eq!(sim_counts, native_counts);
    assert_eq!(sim_counts, vec![OPS_PER_THREAD; THREADS]);
    // ...and FAA never loses an increment on either.
    assert_eq!(sim_final, THREADS as u64 * OPS_PER_THREAD);
    assert_eq!(native_final, sim_final);
}

/// `record_history` yields a linearizable, element-conserving history on
/// both backends, and the drained dequeue multisets agree.
#[test]
fn recorded_histories_are_linearizable_on_both_backends() {
    let spec = || DriveSpec::new(QueueParams::default(), mixed_ops(THREADS, 20, 3), true);

    let mut sim = SimBackend::new(MachineConfig::single_socket(THREADS));
    let sim_out = record_history(&mut sim, QueueKind::MsQueue, spec());
    let mut native = NativeBackend::default();
    let native_out = record_history(&mut native, QueueKind::MsQueue, spec());

    for (name, out) in [("sim", &sim_out), ("native", &native_out)] {
        check_queue_history(&out.history)
            .unwrap_or_else(|v| panic!("{name} history not linearizable: {v:?}"));
        assert_eq!(
            dequeue_multiset(&out.history),
            enqueue_multiset(&out.history),
            "{name}: drained run must conserve elements"
        );
    }
    // Drained multisets are plan-determined, so they also agree across
    // backends despite entirely different interleavings.
    assert_eq!(
        dequeue_multiset(&sim_out.history),
        dequeue_multiset(&native_out.history)
    );
}
