//! The [`Backend`] trait: one execution contract — run a setup program
//! alone, then `n` thread programs concurrently — implemented by both the
//! coherence simulator and the native-atomics substrate. Everything above
//! the queues (workloads, fuzzing, linearizability suites) is written
//! against this trait once instead of per backend.

use absmem::native::{NativeCtx, NativeHeap};
use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, RunReport, SimCtx};
use std::sync::{Arc, Barrier};

/// One thread's program on backend context `C`. For the simulator this is
/// exactly [`coherence::Program`].
pub type Job<C> = Box<dyn FnOnce(&mut C) + Send>;

/// What a backend reports after a run.
#[derive(Debug)]
pub struct BackendReport {
    /// End-of-run time in cycles: simulated cycles on the simulator,
    /// wall-clock cycles at the nominal 2.2 GHz on native.
    pub end_time: u64,
    /// The full simulator report (coherence traffic, HTM counters);
    /// `None` on the native backend, where no such instrumentation
    /// exists.
    pub sim: Option<RunReport>,
}

impl BackendReport {
    /// HTM commits, or 0 where the backend has no HTM.
    pub fn tx_commits(&self) -> u64 {
        self.sim.as_ref().map_or(0, |r| r.stats.tx_commits)
    }

    /// HTM aborts (all causes), or 0 where the backend has no HTM.
    pub fn tx_aborts(&self) -> u64 {
        self.sim.as_ref().map_or(0, |r| r.stats.tx_aborts())
    }

    /// Writers tripped by the §3.4 asymmetric-abort effect, or 0.
    pub fn tripped_writers(&self) -> u64 {
        self.sim.as_ref().map_or(0, |r| r.stats.tripped_writers)
    }
}

/// A substrate that can execute a phased multi-thread run: `setup` alone
/// first (commonly creating a queue and publishing its base address),
/// then all `programs` concurrently, program `i` running as thread id
/// `i`. Program results travel through whatever shared state the caller
/// captured in the closures; contexts support [`ThreadCtx::barrier`] for
/// phase separation inside the run.
pub trait Backend {
    type Ctx: ThreadCtx + 'static;

    /// Short name for reports ("sim" / "native").
    fn name(&self) -> &'static str;

    /// Executes one run.
    fn run(&mut self, setup: Job<Self::Ctx>, programs: Vec<Job<Self::Ctx>>) -> BackendReport;
}

/// The coherence-simulator backend: a thin wrapper over
/// [`Machine::run`], adding nothing to the program construction so
/// simulated timings — and with them the determinism goldens — are
/// bit-identical to driving the machine directly.
pub struct SimBackend {
    machine: Machine,
}

impl SimBackend {
    pub fn new(cfg: MachineConfig) -> Self {
        SimBackend {
            machine: Machine::new(cfg),
        }
    }
}

impl Backend for SimBackend {
    type Ctx = SimCtx;

    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&mut self, setup: Job<SimCtx>, programs: Vec<Job<SimCtx>>) -> BackendReport {
        let report = self.machine.run(setup, programs);
        BackendReport {
            end_time: report.end_time,
            sim: Some(report),
        }
    }
}

/// The native backend: real OS threads over real `AtomicU64`s. Each run
/// gets a fresh [`NativeHeap`]; the setup job runs alone on thread id 0
/// (with a unit barrier, so phased generic code works unchanged), then
/// every program runs on its own scoped OS thread sharing one barrier
/// group.
pub struct NativeBackend {
    heap_words: usize,
}

impl NativeBackend {
    /// A backend whose runs allocate `heap_words`-word heaps.
    pub fn new(heap_words: usize) -> Self {
        NativeBackend { heap_words }
    }
}

impl Default for NativeBackend {
    /// 2^23 words (64 MiB): ample for every suite workload.
    fn default() -> Self {
        NativeBackend::new(1 << 23)
    }
}

impl Backend for NativeBackend {
    type Ctx = NativeCtx;

    fn name(&self) -> &'static str {
        "native"
    }

    fn run(&mut self, setup: Job<NativeCtx>, programs: Vec<Job<NativeCtx>>) -> BackendReport {
        let heap = Arc::new(NativeHeap::new(self.heap_words));
        {
            let mut ctx = heap.ctx(0).with_barrier(Arc::new(Barrier::new(1)));
            setup(&mut ctx);
        }
        let barrier = Arc::new(Barrier::new(programs.len().max(1)));
        std::thread::scope(|s| {
            for (tid, prog) in programs.into_iter().enumerate() {
                let mut ctx = heap.ctx(tid).with_barrier(Arc::clone(&barrier));
                s.spawn(move || prog(&mut ctx));
            }
        });
        BackendReport {
            end_time: heap.ctx(0).now(),
            sim: None,
        }
    }
}

/// Runtime backend selector (the `--backend` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    #[default]
    Sim,
    Native,
}

impl BackendKind {
    /// Both backends, in sim-first order (the order dual-backend suites
    /// iterate in).
    pub const ALL: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Native];

    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }

    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_lowercase().as_str() {
            "sim" | "simulator" => Some(BackendKind::Sim),
            "native" => Some(BackendKind::Native),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("Native"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn native_setup_publishes_to_programs() {
        use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
        let base = Arc::new(AtomicU64::new(0));
        let mut be = NativeBackend::new(1 << 12);
        let b1 = Arc::clone(&base);
        let sum = Arc::new(AtomicU64::new(0));
        let programs: Vec<Job<NativeCtx>> = (0..2)
            .map(|_| {
                let base = Arc::clone(&base);
                let sum = Arc::clone(&sum);
                Box::new(move |ctx: &mut NativeCtx| {
                    let a = base.load(SeqCst);
                    ctx.barrier();
                    for _ in 0..100 {
                        ctx.faa(a, 1);
                    }
                    sum.fetch_add(ctx.read(a), SeqCst);
                }) as Job<NativeCtx>
            })
            .collect();
        let report = be.run(
            Box::new(move |ctx| {
                let a = ctx.alloc(1);
                ctx.write(a, 0);
                b1.store(a, SeqCst);
            }),
            programs,
        );
        assert!(report.sim.is_none());
        assert!(report.end_time > 0);
        // Both threads saw the shared counter reach at least their own
        // contribution; the final value is exactly 200 but each read races.
        assert!(sum.load(SeqCst) >= 200);
    }
}
