//! Backend-generic history recording: drive per-thread op streams over
//! any queue on any backend, recording every operation through
//! [`linearize::Recorder`], and merge the result into one canonically
//! sorted history. This is the single copy of the setup/attach/drive
//! boilerplate the per-backend test harnesses and the fuzzer used to
//! duplicate.

use crate::backend::{Backend, BackendReport, Job};
use crate::queues::{QueueAdapter, QueueKind, QueueParams, QueueVisitor, Substrate};
use absmem::ThreadCtx;
use linearize::{Event, Op, Recorder};
use obs::{InstantKind, ObsSink, SpanKind};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One history-recording run: thread `t` executes `ops[t]` (`true` =
/// enqueue, `false` = dequeue) after a start barrier.
#[derive(Debug, Clone)]
pub struct DriveSpec {
    pub params: QueueParams,
    /// Per-thread op streams; one backend thread per entry.
    pub ops: Vec<Vec<bool>>,
    /// After the op phase, rendezvous at a barrier and drain the queue to
    /// empty (recording the dequeues). Because no enqueue survives the
    /// barrier, a drained history conserves elements *exactly*: the
    /// dequeued multiset equals the enqueued multiset, a
    /// schedule-independent fact used to cross-check backends.
    pub drain: bool,
    /// Optional observability sink. When set, every operation is also
    /// recorded as a typed span (plus barrier instants) using the *same*
    /// `invoke`/`ret` timestamps the history recorder reads — no extra
    /// backend interaction, so enabling observability cannot perturb the
    /// run (`tests/obs_trace.rs` pins this).
    pub obs: Option<Arc<ObsSink>>,
    /// Per-thread pacing stride: entry `t` = `k > 0` makes thread `t`
    /// call [`ThreadCtx::wait_tick`] before every `k`-th main-loop op
    /// (`k = 1` paces every op; `k = batch` paces bursts). `0`, a missing
    /// entry, or an empty vector leaves the thread unpaced. The drain
    /// phase is never paced. On the simulator a paced thread blocks until
    /// a `TickGate` component releases it; backends without a tick source
    /// (native) return immediately, so pacing is a scheduling constraint,
    /// never a correctness dependency.
    pub pace: Vec<u64>,
}

impl DriveSpec {
    /// A spec without observability (the common case).
    pub fn new(params: QueueParams, ops: Vec<Vec<bool>>, drain: bool) -> DriveSpec {
        DriveSpec {
            params,
            ops,
            drain,
            obs: None,
            pace: Vec::new(),
        }
    }
}

/// Result of a history-recording run.
#[derive(Debug)]
pub struct DriveOutcome {
    /// The complete recorded history, canonically sorted.
    pub history: Vec<Event>,
    pub report: BackendReport,
}

/// The value thread `tid` enqueues as its `seq`-th element (`seq` starts
/// at 1): unique process-wide and nonzero, inside the basket element
/// domain.
#[inline]
pub fn history_value(tid: usize, seq: u64) -> u64 {
    ((tid as u64 + 1) << 40) | seq
}

/// Canonical history order: merged per-thread recorders are sorted by
/// `(invoke, ret, thread, op)` so the outcome does not depend on the
/// incidental order threads parked their recorders in.
pub fn sort_history(history: &mut [Event]) {
    fn op_key(op: &Op) -> (u8, u64) {
        match *op {
            Op::Enq(v) => (0, v),
            Op::DeqSome(v) => (1, v),
            Op::DeqNull => (2, 0),
        }
    }
    history.sort_by_key(|e| (e.invoke, e.ret, e.thread, op_key(&e.op)));
}

/// FNV-1a fold over a (sorted) history, for determinism fingerprints.
pub fn history_digest(history: &[Event]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for e in history {
        let (tag, v) = match e.op {
            Op::Enq(v) => (1u64, v),
            Op::DeqSome(v) => (2, v),
            Op::DeqNull => (3, 0),
        };
        mix(e.thread as u64);
        mix(tag);
        mix(v);
        mix(e.invoke);
        mix(e.ret);
    }
    h
}

/// The multiset of successfully dequeued values, sorted — equal across
/// backends for drained runs of the same spec.
pub fn dequeue_multiset(history: &[Event]) -> Vec<u64> {
    let mut vals: Vec<u64> = history
        .iter()
        .filter_map(|e| match e.op {
            Op::DeqSome(v) => Some(v),
            _ => None,
        })
        .collect();
    vals.sort_unstable();
    vals
}

/// The multiset of enqueued values, sorted.
pub fn enqueue_multiset(history: &[Event]) -> Vec<u64> {
    let mut vals: Vec<u64> = history
        .iter()
        .filter_map(|e| match e.op {
            Op::Enq(v) => Some(v),
            _ => None,
        })
        .collect();
    vals.sort_unstable();
    vals
}

/// Runs `spec` over a statically chosen adapter type `Q` — the entry
/// point for custom adapters that are not a [`QueueKind`] (tests and
/// ablations); [`record_history`] routes every kind through here.
pub fn record_history_as<B, Q>(backend: &mut B, spec: DriveSpec) -> DriveOutcome
where
    B: Backend,
    Q: QueueAdapter<B::Ctx> + 'static,
{
    let qp = spec.params;
    let drain = spec.drain;
    let base = Arc::new(AtomicU64::new(0));
    let recorders: Arc<Mutex<Vec<Recorder>>> = Arc::new(Mutex::new(Vec::new()));

    let programs: Vec<Job<B::Ctx>> = spec
        .ops
        .iter()
        .enumerate()
        .map(|(t, ops)| {
            let ops = ops.clone();
            let base = Arc::clone(&base);
            let recorders = Arc::clone(&recorders);
            let sink = spec.obs.clone();
            let pace = spec.pace.get(t).copied().unwrap_or(0);
            Box::new(move |ctx: &mut B::Ctx| {
                let mut q = Q::attach(base.load(SeqCst), ctx, &qp);
                let tid = ctx.thread_id();
                let mut rec = Recorder::new();
                let mut tobs = sink.as_ref().map(|s| s.thread(tid));
                let mut seq = 0u64;
                ctx.barrier();
                if let Some(o) = &mut tobs {
                    o.instant(InstantKind::Barrier, ctx.now(), 0);
                }
                for (i, &is_enq) in ops.iter().enumerate() {
                    if pace > 0 && (i as u64).is_multiple_of(pace) {
                        ctx.wait_tick();
                    }
                    let invoke = ctx.now();
                    if is_enq {
                        seq += 1;
                        let v = history_value(tid, seq);
                        q.enqueue(ctx, v);
                        let ret = ctx.now();
                        rec.record(tid, Op::Enq(v), invoke, ret);
                        if let Some(o) = &mut tobs {
                            o.span(SpanKind::Enqueue, invoke, ret, v);
                        }
                    } else {
                        let op = match q.dequeue(ctx) {
                            Some(v) => Op::DeqSome(v),
                            None => Op::DeqNull,
                        };
                        let ret = ctx.now();
                        if let Some(o) = &mut tobs {
                            match op {
                                Op::DeqSome(v) => o.span(SpanKind::Dequeue, invoke, ret, v),
                                _ => o.span(SpanKind::DequeueEmpty, invoke, ret, 0),
                            }
                        }
                        rec.record(tid, op, invoke, ret);
                    }
                }
                if drain {
                    ctx.barrier();
                    if let Some(o) = &mut tobs {
                        o.instant(InstantKind::Barrier, ctx.now(), 0);
                    }
                    loop {
                        let invoke = ctx.now();
                        match q.dequeue(ctx) {
                            Some(v) => {
                                let ret = ctx.now();
                                rec.record(tid, Op::DeqSome(v), invoke, ret);
                                if let Some(o) = &mut tobs {
                                    o.span(SpanKind::Drain, invoke, ret, v);
                                }
                            }
                            None => break,
                        }
                    }
                }
                if let (Some(s), Some(o)) = (&sink, tobs.take()) {
                    s.submit(o);
                }
                // Recover from a poisoned lock: if a sibling job panicked,
                // its panic (not a PoisonError) should be what surfaces.
                recorders
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(rec);
            }) as Job<B::Ctx>
        })
        .collect();

    let b2 = Arc::clone(&base);
    let report = backend.run(
        Box::new(move |ctx| {
            let addr = Q::create(ctx, &qp);
            b2.store(addr, SeqCst);
        }),
        programs,
    );

    let recorders = std::mem::take(&mut *recorders.lock().unwrap_or_else(|e| e.into_inner()));
    let mut history = Recorder::merge(recorders);
    sort_history(&mut history);
    DriveOutcome { history, report }
}

struct Driver<'a, B: Backend> {
    backend: &'a mut B,
    spec: DriveSpec,
}

impl<B> QueueVisitor<B::Ctx> for Driver<'_, B>
where
    B: Backend,
    B::Ctx: Substrate,
{
    type Out = DriveOutcome;

    fn visit<Q: QueueAdapter<B::Ctx> + 'static>(self) -> DriveOutcome {
        record_history_as::<B, Q>(self.backend, self.spec)
    }
}

/// Runs `spec` over queue `kind` on `backend` and returns the sorted
/// history plus the backend's report.
pub fn record_history<B>(backend: &mut B, kind: QueueKind, spec: DriveSpec) -> DriveOutcome
where
    B: Backend,
    B::Ctx: Substrate,
{
    kind.visit::<B::Ctx, _>(Driver { backend, spec })
}

/// A simple deterministic op-stream pattern for suite tests: each thread
/// alternates enqueues with a dequeue every `deq_every`-th step, `per`
/// enqueues total.
pub fn mixed_ops(threads: usize, per: u64, deq_every: u64) -> Vec<Vec<bool>> {
    (0..threads)
        .map(|_| {
            let mut ops = Vec::new();
            for i in 0..per {
                ops.push(true);
                if i % deq_every == 0 {
                    ops.push(false);
                }
            }
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_values_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for tid in 0..8 {
            for seq in 1..100 {
                let v = history_value(tid, seq);
                assert_ne!(v, 0);
                assert!(seen.insert(v));
            }
        }
    }

    #[test]
    fn sort_is_canonical_under_shuffle() {
        let mk = |thread, v, invoke, ret| Event {
            thread,
            op: Op::Enq(v),
            invoke,
            ret,
        };
        let mut a = vec![mk(0, 1, 5, 9), mk(1, 2, 1, 2), mk(2, 3, 1, 8)];
        let mut b = a.clone();
        b.reverse();
        sort_history(&mut a);
        sort_history(&mut b);
        assert_eq!(a, b);
        assert_eq!(history_digest(&a), history_digest(&b));
    }
}
