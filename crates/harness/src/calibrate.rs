//! Delay calibration shared by every native consumer.
//!
//! `ThreadCtx::delay(cycles)` means "stall this thread for `cycles` CPU
//! cycles". On the simulator that is exact: the core's clock advances by
//! the requested amount. On native hardware there is no portable cycle
//! stall, so [`busy_wait_cycles`] converts cycles to nanoseconds at the
//! nominal [`GHZ`] frequency and busy-waits: short delays use a
//! once-calibrated `spin_loop` count (measuring `Instant::now` would
//! dwarf the delay itself), long delays poll the monotonic clock.
//!
//! The calibration lives in `absmem::native` (the only layer allowed to
//! touch OS timing primitives); this module re-exports it as the one
//! public, test-covered entry point so bench, simfuzz, and tests all
//! share a single measurement instead of each keeping a private copy.

pub use absmem::native::{busy_wait_cycles, cycles_to_ns, GHZ};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn cycles_to_ns_uses_nominal_frequency() {
        // 2.2 GHz: 2200 cycles ≈ 1000 ns (float conversion may truncate
        // by one).
        assert!((999..=1000).contains(&cycles_to_ns(2200)));
        assert_eq!(cycles_to_ns(0), 0);
        // Round-trips with the coherence crate's inverse convention.
        assert!((219..=220).contains(&cycles_to_ns((220.0 * GHZ) as u64)));
    }

    #[test]
    fn long_busy_wait_takes_at_least_the_requested_time() {
        // 220_000 cycles at 2.2 GHz = 100 µs; generous lower bound to
        // stay robust under CI noise.
        let t0 = Instant::now();
        busy_wait_cycles(220_000);
        assert!(t0.elapsed().as_micros() >= 90);
    }

    #[test]
    fn short_busy_wait_returns_quickly() {
        // A 44-cycle (20 ns) delay must not degenerate into a clock poll
        // loop; allow a loose 1 ms upper bound for scheduling noise.
        let t0 = Instant::now();
        for _ in 0..100 {
            busy_wait_cycles(44);
        }
        assert!(t0.elapsed().as_millis() < 1000);
    }
}
