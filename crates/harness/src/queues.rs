//! Uniform adapters for running the evaluated queues on *any*
//! [`ThreadCtx`] backend. Each adapter publishes itself as a descriptor
//! address created in the setup phase and re-attached by every measured
//! thread, so one adapter definition serves the coherence simulator and
//! the native-atomics backend alike.

use absmem::{CasStrategy, DelayedCas, StandardCas, ThreadCtx};
use baselines::{CcHandle, CcQueue, MsQueue, WfHandle, WfQueue};
use sbq::basket::SbqBasket;
use sbq::modular::{EnqueuerState, ModularQueue, QueueConfig};
use sbq::txcas::{TxCas, TxCasParams};

/// Queue construction parameters shared across the suite.
#[derive(Debug, Clone, Copy)]
pub struct QueueParams {
    /// Protector-array size: total threads attached to the queue.
    pub max_threads: usize,
    /// Active enqueuers (bounds the basket extraction scan, §6.1).
    pub enqueuers: usize,
    /// Basket cell count (the paper fixes 44).
    pub basket_capacity: usize,
    /// TxCAS tuning for SBQ-HTM. On the simulator these delays are exact
    /// simulated cycles inside/around the hardware transaction; on the
    /// native substrate (no HTM) `intra_delay` becomes the pre-CAS
    /// busy-wait of the [`DelayedCas`] stand-in.
    pub txcas: TxCasParams,
    /// Delay for SBQ-CAS (the paper gives it the same delay as TxCAS).
    /// Cycles at the nominal 2.2 GHz clock on both substrates: exact
    /// simulated cycles on the simulator, a calibrated busy-wait
    /// (`absmem::native::busy_wait_cycles`) of `delay_cycles / 2.2` ns on
    /// native hardware.
    pub delay_cycles: u64,
    /// Run the epoch reclaimer.
    pub reclaim: bool,
}

impl Default for QueueParams {
    fn default() -> Self {
        QueueParams {
            max_threads: 64,
            enqueuers: 64,
            basket_capacity: 44,
            txcas: TxCasParams::default(),
            delay_cycles: TxCasParams::default().intra_delay,
            reclaim: true,
        }
    }
}

impl QueueParams {
    fn queue_config(&self) -> QueueConfig {
        QueueConfig {
            max_threads: self.max_threads,
            reclaim: self.reclaim,
            poison_on_free: false,
        }
    }

    fn basket(&self) -> SbqBasket {
        SbqBasket::with_inserters(
            self.basket_capacity,
            self.enqueuers.min(self.basket_capacity),
        )
    }
}

/// How the TxCAS-based queues (SBQ-HTM, SBQ-Striped) realize their
/// contended tail CAS on a given substrate. The simulator provides real
/// HTM, so it runs the paper's TxCAS; native hardware without RTM runs
/// the read–delay–CAS control ([`DelayedCas`]), which the paper and
/// `absmem` document as the best available TxCAS approximation (it is
/// exactly what the typed `sbq::native::Sbq` queue uses).
pub trait Substrate: ThreadCtx + Sized + 'static {
    /// Strategy for the contended tail CAS on this substrate.
    type TailCas: CasStrategy<Self> + 'static;

    /// True when [`Self::TailCas`] is the real HTM TxCAS.
    const HAS_HTM: bool;

    /// Builds the tail-CAS strategy from the queue parameters.
    fn tail_cas(p: &QueueParams) -> Self::TailCas;
}

impl Substrate for coherence::SimCtx {
    type TailCas = TxCas;
    const HAS_HTM: bool = true;

    fn tail_cas(p: &QueueParams) -> TxCas {
        TxCas::new(p.txcas)
    }
}

impl Substrate for absmem::native::NativeCtx {
    type TailCas = DelayedCas;
    const HAS_HTM: bool = false;

    fn tail_cas(p: &QueueParams) -> DelayedCas {
        DelayedCas {
            delay_cycles: p.txcas.intra_delay,
        }
    }
}

/// A queue runnable on backend context `C` with per-thread state.
pub trait QueueAdapter<C: ThreadCtx>: Sized {
    /// Human-readable series name (matches the paper's legend).
    const NAME: &'static str;

    /// Creates the queue in the setup phase; returns its descriptor base.
    fn create(ctx: &mut C, p: &QueueParams) -> u64;

    /// Re-attaches a measured thread to the published queue.
    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self;

    /// Enqueues a value (nonzero, below the basket element max).
    fn enqueue(&mut self, ctx: &mut C, v: u64);

    /// Dequeues a value.
    fn dequeue(&mut self, ctx: &mut C) -> Option<u64>;
}

/// SBQ-HTM: scalable basket + TxCAS (the contribution). On substrates
/// without HTM the tail CAS degrades to the delayed-CAS stand-in (see
/// [`Substrate`]).
pub struct SbqHtmQ<C: Substrate> {
    q: ModularQueue<SbqBasket, C::TailCas>,
    st: EnqueuerState,
}

impl<C: Substrate> QueueAdapter<C> for SbqHtmQ<C> {
    const NAME: &'static str = "SBQ-HTM";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        ModularQueue::new(ctx, p.basket(), C::tail_cas(p), p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self {
        let _ = ctx;
        SbqHtmQ {
            q: ModularQueue::from_base(base, p.basket(), C::tail_cas(p), p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// SBQ-CAS: scalable basket + delayed plain CAS (the control).
pub struct SbqCasQ {
    q: ModularQueue<SbqBasket, DelayedCas>,
    st: EnqueuerState,
}

impl<C: ThreadCtx> QueueAdapter<C> for SbqCasQ {
    const NAME: &'static str = "SBQ-CAS";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        let strat = DelayedCas {
            delay_cycles: p.delay_cycles,
        };
        ModularQueue::new(ctx, p.basket(), strat, p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self {
        let _ = ctx;
        let strat = DelayedCas {
            delay_cycles: p.delay_cycles,
        };
        SbqCasQ {
            q: ModularQueue::from_base(base, p.basket(), strat, p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// SBQ-HTM with the experimental striped basket (the paper's §8 future
/// work: scalable dequeues). Compared against the stock basket by the
/// `ablate-deq` driver.
pub struct SbqStripedQ<C: Substrate> {
    q: ModularQueue<sbq::StripedBasket, C::TailCas>,
    st: EnqueuerState,
}

impl<C: Substrate> SbqStripedQ<C> {
    fn basket(p: &QueueParams) -> sbq::StripedBasket {
        sbq::StripedBasket::with_inserters(p.basket_capacity, p.enqueuers.min(p.basket_capacity))
    }
}

impl<C: Substrate> QueueAdapter<C> for SbqStripedQ<C> {
    const NAME: &'static str = "SBQ-Striped";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        ModularQueue::new(ctx, Self::basket(p), C::tail_cas(p), p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self {
        let _ = ctx;
        SbqStripedQ {
            q: ModularQueue::from_base(base, Self::basket(p), C::tail_cas(p), p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// BQ-Original: LIFO sealed basket + plain CAS.
pub struct BqOriginalQ {
    q: baselines::BqOriginal,
    st: EnqueuerState,
}

impl<C: ThreadCtx> QueueAdapter<C> for BqOriginalQ {
    const NAME: &'static str = "BQ-Original";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        baselines::new_bq_original(ctx, p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self {
        let _ = ctx;
        BqOriginalQ {
            q: ModularQueue::from_base(base, baselines::LifoBasket, StandardCas, p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// WF-Queue: the FAA-based comparator.
pub struct WfQ {
    q: WfQueue,
    h: WfHandle,
}

impl<C: ThreadCtx> QueueAdapter<C> for WfQ {
    const NAME: &'static str = "WF-Queue";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        WfQueue::new(ctx, p.max_threads, p.reclaim).base()
    }

    fn attach(base: u64, ctx: &mut C, p: &QueueParams) -> Self {
        let q = WfQueue::from_base(base, p.max_threads, p.reclaim);
        let h = q.handle(ctx);
        WfQ { q, h }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.h, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx, &mut self.h)
    }
}

/// CC-Queue: the combining comparator.
pub struct CcQ {
    q: CcQueue,
    h: CcHandle,
}

impl<C: ThreadCtx> QueueAdapter<C> for CcQ {
    const NAME: &'static str = "CC-Queue";

    fn create(ctx: &mut C, _p: &QueueParams) -> u64 {
        CcQueue::new(ctx).base()
    }

    fn attach(base: u64, ctx: &mut C, _p: &QueueParams) -> Self {
        let q = CcQueue::from_base(base);
        let h = q.handle(ctx);
        CcQ { q, h }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, &mut self.h, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx, &mut self.h)
    }
}

/// Michael–Scott: the classic base case (not in the paper's figures but
/// useful context and a framework cross-check).
pub struct MsQ {
    q: MsQueue,
}

impl<C: ThreadCtx> QueueAdapter<C> for MsQ {
    const NAME: &'static str = "MS-Queue";

    fn create(ctx: &mut C, p: &QueueParams) -> u64 {
        MsQueue::new(ctx, p.max_threads, p.reclaim).base()
    }

    fn attach(base: u64, _ctx: &mut C, p: &QueueParams) -> Self {
        MsQ {
            q: MsQueue::from_base(base, p.max_threads, p.reclaim),
        }
    }

    fn enqueue(&mut self, ctx: &mut C, v: u64) {
        self.q.enqueue(ctx, v)
    }

    fn dequeue(&mut self, ctx: &mut C) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// The suite's queue selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    SbqHtm,
    SbqCas,
    /// The experimental striped-basket SBQ (§8 future work).
    SbqStriped,
    BqOriginal,
    WfQueue,
    CcQueue,
    MsQueue,
}

/// Monomorphic continuation for [`QueueKind::visit`]: implement this to
/// get code instantiated with the concrete adapter type of a runtime
/// kind. The one `match` over all seven kinds lives in `visit`; every
/// driver (history recording, workloads, fuzzing) builds on it instead of
/// repeating the dispatch.
pub trait QueueVisitor<C: Substrate> {
    type Out;
    fn visit<Q: QueueAdapter<C> + 'static>(self) -> Self::Out;
}

impl QueueKind {
    /// Every implementation in the tree, in fuzz-rotation order.
    pub const ALL: [QueueKind; 7] = [
        QueueKind::SbqHtm,
        QueueKind::SbqCas,
        QueueKind::SbqStriped,
        QueueKind::BqOriginal,
        QueueKind::WfQueue,
        QueueKind::CcQueue,
        QueueKind::MsQueue,
    ];

    /// The queues of the paper's Figures 5–7, in legend order.
    pub const PAPER_SET: [QueueKind; 5] = [
        QueueKind::BqOriginal,
        QueueKind::CcQueue,
        QueueKind::SbqCas,
        QueueKind::SbqHtm,
        QueueKind::WfQueue,
    ];

    /// Series name.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::SbqHtm => "SBQ-HTM",
            QueueKind::SbqCas => "SBQ-CAS",
            QueueKind::SbqStriped => "SBQ-Striped",
            QueueKind::BqOriginal => "BQ-Original",
            QueueKind::WfQueue => "WF-Queue",
            QueueKind::CcQueue => "CC-Queue",
            QueueKind::MsQueue => "MS-Queue",
        }
    }

    /// Parses a series name (case-insensitive, dashes optional).
    pub fn parse(s: &str) -> Option<QueueKind> {
        let k = s.to_lowercase().replace(['-', '_'], "");
        Some(match k.as_str() {
            "sbqhtm" | "sbq" => QueueKind::SbqHtm,
            "sbqcas" => QueueKind::SbqCas,
            "sbqstriped" | "striped" => QueueKind::SbqStriped,
            "bqoriginal" | "bq" => QueueKind::BqOriginal,
            "wfqueue" | "wf" => QueueKind::WfQueue,
            "ccqueue" | "cc" => QueueKind::CcQueue,
            "msqueue" | "ms" => QueueKind::MsQueue,
            _ => return None,
        })
    }

    /// Dispatches `v` on this kind's concrete adapter type for context
    /// `C` — the single point where a runtime [`QueueKind`] becomes a
    /// compile-time [`QueueAdapter`].
    pub fn visit<C: Substrate, V: QueueVisitor<C>>(self, v: V) -> V::Out {
        match self {
            QueueKind::SbqHtm => v.visit::<SbqHtmQ<C>>(),
            QueueKind::SbqCas => v.visit::<SbqCasQ>(),
            QueueKind::SbqStriped => v.visit::<SbqStripedQ<C>>(),
            QueueKind::BqOriginal => v.visit::<BqOriginalQ>(),
            QueueKind::WfQueue => v.visit::<WfQ>(),
            QueueKind::CcQueue => v.visit::<CcQ>(),
            QueueKind::MsQueue => v.visit::<MsQ>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for k in QueueKind::ALL {
            assert_eq!(QueueKind::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn visit_matches_kind_name() {
        struct NameOf;
        impl<C: Substrate> QueueVisitor<C> for NameOf {
            type Out = &'static str;
            fn visit<Q: QueueAdapter<C> + 'static>(self) -> &'static str {
                Q::NAME
            }
        }
        for k in QueueKind::ALL {
            assert_eq!(k.visit::<coherence::SimCtx, _>(NameOf), k.name());
            assert_eq!(k.visit::<absmem::native::NativeCtx, _>(NameOf), k.name());
        }
    }
}
