//! Component-driven end-to-end scenarios: canned queue workloads that
//! exercise the simulator's component spine (DESIGN.md §14) through the
//! ordinary history-recording driver. Three actor families:
//!
//! * **Preempt** — worker threads run a mixed enqueue/dequeue stream
//!   while an [`ComponentSpec::Interrupt`] source periodically preempts
//!   cores round-robin, aborting any in-flight transaction with
//!   [`coherence::txn::INTERRUPT`]. Measures throughput and abort
//!   composition under rising preemption (EXPERIMENTS.md E14).
//! * **Timer** — producers free-run while one consumer dequeues on a
//!   fixed period: it `wait_tick()`s before every dequeue and a
//!   [`ComponentSpec::TickGate`] releases it each `period` cycles.
//! * **Dma** — a DMA-style bulk enqueuer pushes `batch`-element bursts,
//!   one burst per gate firing, on a divided clock (`period × divider`),
//!   while worker threads consume.
//!
//! Every scenario runs on the simulator backend, records a full
//! linearizability-checked history, and folds the observable result into
//! a deterministic key=value summary: same spec, same bytes, on either
//! scheduler — which is exactly what the `component-smoke` CI job diffs.

use crate::backend::SimBackend;
use crate::history::{
    dequeue_multiset, enqueue_multiset, history_digest, mixed_ops, record_history, DriveSpec,
};
use crate::queues::{QueueKind, QueueParams};
use coherence::{ComponentSpec, MachineConfig, RunReport};
use linearize::{check_queue_linearizable, Op, Violation};
use obs::{ObsSink, TraceMeta};
use sbq::txcas::TxCasParams;
use std::sync::Arc;

/// The three component-actor families a scenario can stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorFamily {
    /// Periodic interrupt source preempting worker cores.
    Preempt,
    /// Timer-driven consumer dequeuing on a fixed period.
    Timer,
    /// DMA-style bulk enqueuer bursting on a divided clock.
    Dma,
}

impl ActorFamily {
    pub const ALL: [ActorFamily; 3] = [ActorFamily::Preempt, ActorFamily::Timer, ActorFamily::Dma];

    pub fn name(self) -> &'static str {
        match self {
            ActorFamily::Preempt => "preempt",
            ActorFamily::Timer => "timer",
            ActorFamily::Dma => "dma",
        }
    }

    pub fn parse(s: &str) -> Option<ActorFamily> {
        match s.to_lowercase().as_str() {
            "preempt" | "interrupt" => Some(ActorFamily::Preempt),
            "timer" => Some(ActorFamily::Timer),
            "dma" => Some(ActorFamily::Dma),
            _ => None,
        }
    }
}

/// Full description of one scenario run. All knobs are integers so a
/// spec round-trips exactly through `key=value` command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    pub family: ActorFamily,
    pub queue: QueueKind,
    /// Worker threads (producers for Timer, consumers for Dma, the whole
    /// population for Preempt). The Timer/Dma actor thread is extra.
    pub workers: usize,
    /// Ops per worker: mixed steps (Preempt), enqueues (Timer), or
    /// dequeues (Dma).
    pub ops: u64,
    /// Interrupt or tick period, cycles.
    pub period: u64,
    /// Interrupt handler cost, cycles (Preempt only).
    pub cost: u64,
    /// Burst size of the bulk enqueuer (Dma only).
    pub batch: u64,
    /// Clock divider of the bulk enqueuer's gate (Dma only): the gate
    /// fires every `period × divider` cycles.
    pub divider: u64,
    /// Machine RNG seed (jitter, spurious aborts).
    pub seed: u64,
    /// Also produce a Chrome trace-event JSON document.
    pub trace: bool,
}

impl ScenarioSpec {
    /// A small, CI-sized spec of the given family.
    pub fn smoke(family: ActorFamily) -> ScenarioSpec {
        ScenarioSpec {
            family,
            queue: QueueKind::SbqHtm,
            workers: 3,
            ops: 24,
            period: 1_500,
            cost: 150,
            batch: 4,
            divider: 2,
            seed: 1,
            trace: false,
        }
    }
}

/// Result of one scenario run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Deterministic key=value summary (one line per key), identical
    /// byte-for-byte across repeat runs of the same spec.
    pub summary: String,
    /// The simulator's full report.
    pub report: RunReport,
    /// Linearizability verdict over the recorded history (including
    /// INTERRUPT-aborted-and-retried operations); `None` = linearizable.
    pub violation: Option<Violation>,
    /// Chrome trace-event JSON, when `spec.trace` was set.
    pub chrome_json: Option<String>,
}

fn queue_params(threads: usize) -> QueueParams {
    QueueParams {
        max_threads: threads,
        enqueuers: threads,
        basket_capacity: threads.max(44),
        txcas: TxCasParams {
            intra_delay: 200,
            post_abort_delay: 40,
            max_retries: 12,
        },
        delay_cycles: 200,
        reclaim: true,
    }
}

/// The machine, op streams, pacing, and components a spec stages. The
/// actor thread (Timer consumer / Dma enqueuer) always runs last, as
/// thread id `workers`.
fn stage(spec: &ScenarioSpec) -> (MachineConfig, Vec<Vec<bool>>, Vec<u64>) {
    assert!(spec.workers > 0, "scenario needs at least one worker");
    assert!(spec.ops > 0, "scenario needs at least one op per worker");
    assert!(spec.period > 0, "component periods must be nonzero");
    let (threads, ops, pace, comp) = match spec.family {
        ActorFamily::Preempt => (
            spec.workers,
            mixed_ops(spec.workers, spec.ops, 3),
            Vec::new(),
            ComponentSpec::Interrupt {
                period: spec.period,
                start: (spec.period / 2).max(1),
                cost: spec.cost,
                victim: None,
            },
        ),
        ActorFamily::Timer => {
            // Producers free-run; the consumer dequeues once per gate
            // release. Gate count = exactly the consumer's wait count,
            // so the run can neither starve nor leave the gate hot.
            let total = spec.workers as u64 * spec.ops;
            let mut ops: Vec<Vec<bool>> = (0..spec.workers)
                .map(|_| vec![true; spec.ops as usize])
                .collect();
            ops.push(vec![false; total as usize]);
            let mut pace = vec![0u64; spec.workers];
            pace.push(1);
            (
                spec.workers + 1,
                ops,
                pace,
                ComponentSpec::TickGate {
                    core: spec.workers,
                    period: spec.period,
                    start: spec.period,
                    count: total,
                },
            )
        }
        ActorFamily::Dma => {
            // The bulk enqueuer emits one `batch`-element burst per gate
            // firing on a divided clock; workers consume.
            assert!(spec.batch > 0, "dma burst size must be nonzero");
            let total = spec.workers as u64 * spec.ops;
            let bursts = total.div_ceil(spec.batch);
            let gate_period = spec.period * spec.divider.max(1);
            let mut ops: Vec<Vec<bool>> = (0..spec.workers)
                .map(|_| vec![false; spec.ops as usize])
                .collect();
            ops.push(vec![true; total as usize]);
            let mut pace = vec![0u64; spec.workers];
            pace.push(spec.batch);
            (
                spec.workers + 1,
                ops,
                pace,
                ComponentSpec::TickGate {
                    core: spec.workers,
                    period: gate_period,
                    start: gate_period,
                    count: bursts,
                },
            )
        }
    };
    let mut cfg = MachineConfig::single_socket(threads);
    cfg.seed = spec.seed;
    cfg.trace = spec.trace;
    cfg.components.push(comp);
    (cfg, ops, pace)
}

/// Runs one scenario on the simulator: stage the machine and components,
/// drive the queue, check linearizability, and fold the observable
/// result into the deterministic summary.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    let (cfg, ops, pace) = stage(spec);
    let threads = ops.len();
    let mut backend = SimBackend::new(cfg);
    let mut drive = DriveSpec::new(queue_params(threads), ops, true);
    drive.pace = pace;
    let sink = spec.trace.then(|| Arc::new(ObsSink::default()));
    drive.obs = sink.clone();
    let out = record_history(&mut backend, spec.queue, drive);
    let report = out.report.sim.expect("sim backend always carries a report");
    let violation = check_queue_linearizable(&out.history).err();

    let enq = enqueue_multiset(&out.history).len();
    let deq = dequeue_multiset(&out.history).len();
    let nulls = out
        .history
        .iter()
        .filter(|e| matches!(e.op, Op::DeqNull))
        .count();
    let s = &report.stats;
    let summary =
        format!(
        "scenario={} queue={} workers={} ops={} period={} cost={} batch={} divider={} seed={}\n\
         end_time={}\nenqueued={enq}\ndequeued={deq}\ndeq_null={nulls}\n\
         tx_commits={}\ntx_aborts={}\ntx_aborts_conflict={}\ntx_aborts_interrupt={}\n\
         interrupts_fired={}\ncomp_ticks={}\nwaitticks={}\n\
         lin={}\nhistory={}#{:016x}\n",
        spec.family.name(),
        spec.queue.name(),
        spec.workers,
        spec.ops,
        spec.period,
        spec.cost,
        spec.batch,
        spec.divider,
        spec.seed,
        report.end_time,
        s.tx_commits,
        s.tx_aborts(),
        s.tx_aborts_conflict,
        s.tx_aborts_interrupt,
        s.interrupts_fired,
        s.comp_ticks,
        s.op("waittick"),
        if violation.is_none() { "ok" } else { "VIOLATION" },
        out.history.len(),
        history_digest(&out.history),
    );

    let chrome_json = sink.map(|sink| {
        let meta = TraceMeta {
            backend: "sim",
            label: format!(
                "scenario {} {} ({} workers)",
                spec.family.name(),
                spec.queue.name(),
                spec.workers
            ),
            fastpath: Some((s.fastpath_hits, s.fastpath_fallbacks)),
            hops: Some((s.hops_intra, s.hops_cross)),
        };
        obs::export(&sink.take_logs(), &report.trace, &meta)
    });

    ScenarioOutcome {
        summary,
        report,
        violation,
        chrome_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preempt_scenario_fires_interrupts_and_stays_linearizable() {
        let spec = ScenarioSpec::smoke(ActorFamily::Preempt);
        let out = run_scenario(&spec);
        assert_eq!(out.violation, None, "summary:\n{}", out.summary);
        assert!(out.report.stats.interrupts_fired > 0);
        assert!(
            out.report.stats.tx_aborts_interrupt > 0,
            "no interrupt landed in a txn; lengthen the run:\n{}",
            out.summary
        );
    }

    #[test]
    fn timer_scenario_paces_the_consumer() {
        let spec = ScenarioSpec::smoke(ActorFamily::Timer);
        let out = run_scenario(&spec);
        assert_eq!(out.violation, None, "summary:\n{}", out.summary);
        let waits = spec.workers as u64 * spec.ops;
        assert_eq!(out.report.stats.op("waittick"), waits);
        assert!(
            out.report.end_time >= waits * spec.period,
            "consumer finished before its last tick: {}",
            out.summary
        );
    }

    #[test]
    fn dma_scenario_bursts_on_the_divided_clock() {
        let spec = ScenarioSpec::smoke(ActorFamily::Dma);
        let out = run_scenario(&spec);
        assert_eq!(out.violation, None, "summary:\n{}", out.summary);
        let total = spec.workers as u64 * spec.ops;
        let bursts = total.div_ceil(spec.batch);
        assert_eq!(out.report.stats.op("waittick"), bursts);
        assert_eq!(out.report.stats.comp_ticks, bursts);
        assert!(out.report.end_time >= bursts * spec.period * spec.divider);
    }

    #[test]
    fn scenario_summaries_are_byte_identical_across_runs() {
        for family in ActorFamily::ALL {
            let spec = ScenarioSpec::smoke(family);
            let a = run_scenario(&spec).summary;
            let b = run_scenario(&spec).summary;
            assert_eq!(
                a,
                b,
                "{} scenario summary moved between runs",
                family.name()
            );
        }
    }

    #[test]
    fn traced_scenarios_produce_validatable_chrome_json() {
        let mut spec = ScenarioSpec::smoke(ActorFamily::Preempt);
        spec.trace = true;
        spec.ops = 8;
        let out = run_scenario(&spec);
        let json = out.chrome_json.expect("trace was requested");
        obs::validate(&json).expect("scenario trace must satisfy the exporter contract");
        assert!(
            json.contains("interrupt"),
            "component track missing from the trace"
        );
    }

    #[test]
    fn family_names_roundtrip() {
        for f in ActorFamily::ALL {
            assert_eq!(ActorFamily::parse(f.name()), Some(f));
        }
        assert_eq!(ActorFamily::parse("warp-drive"), None);
    }
}
