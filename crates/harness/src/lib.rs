//! Backend-generic harness: one execution layer that runs every queue,
//! workload, fuzz campaign, and linearizability check on **both** the
//! coherence simulator and native atomics.
//!
//! The repo's layering (bottom to top):
//!
//! | layer | owns |
//! |-------|------|
//! | `absmem` | the word-addressed memory model: [`absmem::ThreadCtx`], CAS strategies, the native substrate |
//! | `coherence` | the simulated substrate: MESI machine, HTM, `SimCtx` |
//! | `core`/`sbq`/`baselines` | queue algorithms, generic over `ThreadCtx` |
//! | **`harness`** (this crate) | *running* queues: [`Backend`], the [`QueueKind`] adapters, history recording, delay calibration |
//! | `bench`/`simfuzz`/top-level tests | workloads, fuzzing, and suites written **once** against this crate |
//!
//! The pieces:
//!
//! - [`backend`]: the [`Backend`] trait (setup job + n thread jobs →
//!   report) with [`SimBackend`] and [`NativeBackend`] implementations.
//! - [`queues`]: [`QueueAdapter`], the seven [`QueueKind`] adapters, and
//!   the [`Substrate`] capability trait that picks `TxCas` where HTM
//!   exists and `DelayedCas` where it does not.
//! - [`history`]: [`record_history`] — the one copy of the
//!   attach/barrier/drive/record loop, plus canonical sorting and
//!   digesting of the merged history. A [`DriveSpec`] may carry an
//!   `obs::ObsSink`, in which case the same loop also emits typed
//!   observability spans on either backend (off by default; recording
//!   reuses the history timestamps, so it cannot perturb the run).
//! - [`scenario`]: component-driven end-to-end scenarios (preemption,
//!   timer-paced consumer, DMA-style bulk enqueuer) over the simulator's
//!   component spine, with deterministic summaries for CI diffing.
//! - [`calibrate`]: the shared native busy-wait calibration behind
//!   `ThreadCtx::delay`.

pub mod backend;
pub mod calibrate;
pub mod history;
pub mod queues;
pub mod scenario;

pub use backend::{Backend, BackendKind, BackendReport, Job, NativeBackend, SimBackend};
pub use history::{
    dequeue_multiset, enqueue_multiset, history_digest, history_value, mixed_ops, record_history,
    record_history_as, sort_history, DriveOutcome, DriveSpec,
};
pub use queues::{
    BqOriginalQ, CcQ, MsQ, QueueAdapter, QueueKind, QueueParams, QueueVisitor, SbqCasQ, SbqHtmQ,
    SbqStripedQ, Substrate, WfQ,
};
pub use scenario::{run_scenario, ActorFamily, ScenarioOutcome, ScenarioSpec};
