//! Serial/parallel equivalence for the figure sweeps: every `*_text`
//! driver fans its points across a [`runner`] pool and joins rows in
//! submission order, so the rendered TSV must be byte-identical for any
//! worker count. Small scale knobs keep this suite fast — the figures
//! are simulated-time measurements, so shrinking `ops` changes the
//! values but not the determinism being pinned.

use bench::fig;

#[test]
fn fig1_is_byte_identical_across_worker_counts() {
    let serial = fig::fig1_text(30, &[1, 2, 3, 4], 1);
    let parallel = fig::fig1_text(30, &[1, 2, 3, 4], 4);
    assert_eq!(serial, parallel);
    // Sanity: the sweep actually produced one row per thread count.
    assert_eq!(serial.lines().count(), 2 + 4);
}

#[test]
fn fig5_is_byte_identical_across_worker_counts() {
    let serial = fig::fig5_text(20, &[1, 2, 4], 1);
    let parallel = fig::fig5_text(20, &[1, 2, 4], 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.lines().count(), 2 + 3);
}

#[test]
fn trace_reproductions_are_byte_identical_across_worker_counts() {
    // Figures 2 and 3 print raw coherence traces — the most
    // order-sensitive output the sweep layer carries.
    assert_eq!(fig::fig2_text(1), fig::fig2_text(2));
    assert_eq!(fig::fig3_text(1), fig::fig3_text(2));
}

#[test]
fn ablations_are_byte_identical_across_worker_counts() {
    assert_eq!(
        fig::ablate_deq_text(15, &[1, 2], 1),
        fig::ablate_deq_text(15, &[1, 2], 4)
    );
    assert_eq!(fig::speedups_text(15, 3, 1), fig::speedups_text(15, 3, 2));
}

#[test]
fn oversized_worker_count_is_harmless() {
    // More workers than points: the pool clamps, the bytes still match.
    let serial = fig::fig1_text(20, &[1, 2], 1);
    let oversized = fig::fig1_text(20, &[1, 2], 64);
    assert_eq!(serial, oversized);
}
