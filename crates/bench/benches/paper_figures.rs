//! `cargo bench` entry point that regenerates every paper figure at a
//! reduced default scale (override with SBQ_OPS / SBQ_THREADS). Uses a
//! plain main instead of Criterion: the figures are parameter sweeps on
//! the discrete-event simulator, and their output is the data series
//! itself, not a wall-clock statistic.

fn main() {
    // Keep `cargo bench` runs bounded on small machines: a modest default
    // sweep unless the caller overrides.
    if std::env::var("SBQ_OPS").is_err() {
        std::env::set_var("SBQ_OPS", "120");
    }
    if std::env::var("SBQ_THREADS").is_err() {
        std::env::set_var("SBQ_THREADS", "1,2,4,8,16,22");
    }
    // `cargo bench` passes --bench; ignore all args.
    bench::fig::all();
}
