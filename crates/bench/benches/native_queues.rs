//! Criterion microbenchmarks of the *native* typed queue against simple
//! reference structures — the sanity check that the production `Sbq<T>`
//! is in the right performance class on real atomics (absolute multicore
//! scalability is the simulator's job; this box may have few cores).

use criterion::{criterion_group, criterion_main, Criterion};
use sbq::native::Sbq;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_thread");
    g.sample_size(20);

    g.bench_function("sbq_enq_deq", |b| {
        let q = Arc::new(Sbq::<u64>::new(2));
        let mut h = q.handle();
        b.iter(|| {
            h.enqueue(1);
            std::hint::black_box(h.dequeue());
        });
    });

    g.bench_function("mutex_vecdeque_enq_deq", |b| {
        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        b.iter(|| {
            q.lock().unwrap().push_back(1);
            std::hint::black_box(q.lock().unwrap().pop_front());
        });
    });

    g.bench_function("crossbeam_segqueue_enq_deq", |b| {
        let q = crossbeam::queue::SegQueue::new();
        b.iter(|| {
            q.push(1u64);
            std::hint::black_box(q.pop());
        });
    });

    g.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst_1000");
    g.sample_size(20);

    g.bench_function("sbq", |b| {
        let q = Arc::new(Sbq::<u64>::new(2));
        let mut h = q.handle();
        b.iter(|| {
            for i in 1..=1000u64 {
                h.enqueue(i);
            }
            for _ in 0..1000 {
                std::hint::black_box(h.dequeue());
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_burst);
criterion_main!(benches);
