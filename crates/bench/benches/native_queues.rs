//! Microbenchmarks of the *native* typed queue against a simple reference
//! structure — the sanity check that the production `Sbq<T>` is in the
//! right performance class on real atomics (absolute multicore
//! scalability is the simulator's job; this box may have few cores).
//!
//! Plain `harness = false` timing loops: the workspace carries no
//! external bench framework, and a best-of-runs wall-clock number is all
//! this comparison needs.

use sbq::native::Sbq;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Times `iters` runs of `f` and reports the best ns/iter over 5 passes
/// (the usual minimum-of-N noise rejection).
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f(); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
    }
    println!("{name:<36} {best:>10.1} ns/iter");
}

fn main() {
    println!("# native queue microbenchmarks (best of 5 runs)");

    {
        let q = Arc::new(Sbq::<u64>::new(2));
        let mut h = q.handle();
        bench("single_thread/sbq_enq_deq", 100_000, move || {
            h.enqueue(1);
            std::hint::black_box(h.dequeue());
        });
    }

    {
        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        bench("single_thread/mutex_vecdeque_enq_deq", 100_000, move || {
            q.lock().unwrap().push_back(1);
            std::hint::black_box(q.lock().unwrap().pop_front());
        });
    }

    {
        let q = Arc::new(Sbq::<u64>::new(2));
        let mut h = q.handle();
        bench("burst_1000/sbq", 1_000, move || {
            for i in 1..=1000u64 {
                h.enqueue(i);
            }
            for _ in 0..1000 {
                std::hint::black_box(h.dequeue());
            }
        });
    }
}
