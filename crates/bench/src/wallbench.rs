//! Wall-clock scheduler benchmark: how many *simulated* operations per
//! second of host time the machine sustains.
//!
//! The simulator's figures measure simulated time; this module measures
//! the cost of producing it. Every program-level operation crosses the
//! program-thread/scheduler boundary once, so ops/sec of wall time is a
//! direct read on scheduler handshake plus hot-loop overhead.
//!
//! Two fixed workload shapes, chosen to bracket the scheduler's load:
//!
//! * `fig1_faa` — every thread FAAs one shared word (Figure 1's FAA
//!   curve). Almost zero per-op simulation work, so the handshake
//!   dominates: this is the scheduler stress test.
//! * `fig5_sbq_producer` — SBQ-HTM producers fill an empty queue
//!   (Figure 5's headline series). Realistic mix of reads, FAAs, and
//!   HTM transactions: this is the end-to-end number.
//!
//! `simctl bench` drives this and writes `BENCH_sim.json`; pass
//! `baseline=FILE.tsv` (a previous `tsv-out=` capture) to embed a
//! before/after comparison with per-point speedups.

use crate::workload::{
    numa_workload, paper_workload, run_workload, run_workload_native, NumaShape, WorkloadKind,
};
use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use harness::QueueKind;
use obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

/// One measured workload shape.
#[derive(Debug, Clone)]
pub struct WallPoint {
    pub name: String,
    pub threads: usize,
    /// Program-level operations in the measured run.
    pub total_ops: u64,
    /// Best-of-reps wall-clock duration, nanoseconds.
    pub wall_ns: u64,
    /// Simulated operations per second of host time.
    pub ops_per_sec: f64,
    /// Rep wall-time distribution (ns) from the log-bucketed histogram
    /// over *all* reps — best-of alone hides scheduler jitter. Always
    /// `p50 <= p99 <= max` (`simctl bench-check` enforces this on the
    /// emitted JSON).
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Operations the simulator's uncontended fast path admitted
    /// (identical across reps — the workload is deterministic).
    pub fastpath_hits: u64,
    /// Submissions that fell back to the full protocol path.
    pub fastpath_fallbacks: u64,
    /// Scheduler events dispatched — the engine-work denominator behind
    /// `ops_per_sec`.
    pub sim_events: u64,
}

impl WallPoint {
    /// A point from a single wall-time sample (also the legacy-TSV
    /// fallback): the distribution collapses onto that sample.
    fn new(name: &str, threads: usize, total_ops: u64, wall_ns: u64) -> Self {
        WallPoint {
            name: name.to_string(),
            threads,
            total_ops,
            wall_ns,
            ops_per_sec: total_ops as f64 / (wall_ns.max(1) as f64 / 1e9),
            p50_ns: wall_ns,
            p99_ns: wall_ns,
            max_ns: wall_ns,
            fastpath_hits: 0,
            fastpath_fallbacks: 0,
            sim_events: 0,
        }
    }

    /// A point from the full rep histogram: throughput from the best rep
    /// (the least-perturbed run), tail fields from the distribution.
    fn from_hist(name: &str, threads: usize, total_ops: u64, h: &Histogram) -> Self {
        let mut p = WallPoint::new(name, threads, total_ops, h.min());
        p.p50_ns = h.p50();
        p.p99_ns = h.p99();
        p.max_ns = h.max();
        p
    }
}

/// Simulator counters worth surfacing per bench point.
#[derive(Debug, Clone, Copy, Default)]
struct SimCounters {
    fastpath_hits: u64,
    fastpath_fallbacks: u64,
    sim_events: u64,
}

impl SimCounters {
    fn from_stats(stats: &coherence::Stats) -> Self {
        SimCounters {
            fastpath_hits: stats.fastpath_hits,
            fastpath_fallbacks: stats.fastpath_fallbacks,
            sim_events: stats.events,
        }
    }

    fn apply(self, mut p: WallPoint) -> WallPoint {
        p.fastpath_hits = self.fastpath_hits;
        p.fastpath_fallbacks = self.fastpath_fallbacks;
        p.sim_events = self.sim_events;
        p
    }
}

/// Figure-1-shaped scheduler stress: `threads` cores FAA one shared word
/// `ops` times each. Jitter and invariant checks are off so the run is
/// deterministic and the handshake dominates.
fn faa_hammer(threads: usize, ops: u64) -> SimCounters {
    let mut cfg = MachineConfig::single_socket(threads);
    cfg.check_invariants = false;
    cfg.delay_jitter_pct = 0;
    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..threads)
        .map(|_| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                ctx.barrier();
                for _ in 0..ops {
                    ctx.faa(a, 1);
                }
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    let report = Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(1);
            ctx.write(a, 0);
            s2.store(a, SeqCst);
        }),
        programs,
    );
    SimCounters::from_stats(&report.stats)
}

/// Times `reps` runs of `f` and returns the wall-time histogram (ns) —
/// best-of comes out as `min()`, the tail as `p99()`/`max()`.
fn sample_reps<F: FnMut()>(reps: u32, mut f: F) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        h.record(t0.elapsed().as_nanos() as u64);
    }
    h
}

/// Runs both fixed shapes, `reps` times each, keeping the full rep
/// wall-time distribution per point.
pub fn run_points(scale: u64, reps: u32) -> Vec<WallPoint> {
    run_points_jobs(scale, reps, 1).0
}

/// [`run_points`] with each point as one job on a `jobs`-worker
/// [`runner`] pool. Point order (and hence TSV/JSON structure) is the
/// submission order regardless of worker count; with `jobs > 1` the
/// points contend for host cores, so the wall-time *values* are noisier
/// — best-of-`reps` absorbs most of it, and the distribution fields
/// still satisfy the `bench-check` ordering invariant by construction.
pub fn run_points_jobs(scale: u64, reps: u32, jobs: usize) -> (Vec<WallPoint>, runner::JobReport) {
    let tasks: Vec<Box<dyn FnOnce() -> WallPoint + Send>> = vec![
        Box::new(move || {
            let (threads, ops) = (8usize, 2_500 * scale);
            let mut ctr = SimCounters::default();
            let h = sample_reps(reps, || ctr = faa_hammer(threads, ops));
            ctr.apply(WallPoint::from_hist(
                "fig1_faa",
                threads,
                threads as u64 * ops,
                &h,
            ))
        }),
        Box::new(move || {
            let (threads, ops) = (8usize, 400 * scale);
            let mut w = paper_workload(WorkloadKind::ProducerOnly, threads, ops);
            w.machine.delay_jitter_pct = 0;
            let mut ctr = SimCounters::default();
            let h = sample_reps(reps, || {
                let m = run_workload(QueueKind::SbqHtm, &w);
                ctr = SimCounters {
                    fastpath_hits: m.fastpath_hits,
                    fastpath_fallbacks: m.fastpath_fallbacks,
                    sim_events: m.sim_events,
                };
            });
            ctr.apply(WallPoint::from_hist(
                "fig5_sbq_producer",
                threads,
                threads as u64 * ops,
                &h,
            ))
        }),
        Box::new(move || {
            // Paper-scale NUMA point: 88 cores on two sockets, producers
            // on socket 0, consumers on socket 1, directory homes
            // hash-interleaved. This is the engine's scale stress — the
            // wall cost of the machine the figures now sweep.
            let (threads, ops) = (88usize, 24 * scale);
            let mut w = numa_workload(NumaShape::CrossSplit, 2, threads, ops);
            w.machine.delay_jitter_pct = 0;
            let mut ctr = SimCounters::default();
            let h = sample_reps(reps, || {
                let m = run_workload(QueueKind::SbqHtm, &w);
                ctr = SimCounters {
                    fastpath_hits: m.fastpath_hits,
                    fastpath_fallbacks: m.fastpath_fallbacks,
                    sim_events: m.sim_events,
                };
            });
            ctr.apply(WallPoint::from_hist(
                "fig_numa_88_cross",
                threads,
                threads as u64 * ops,
                &h,
            ))
        }),
    ];
    runner::run_all(jobs, tasks)
}

/// Native wall-clock series: every queue kind fills a queue from
/// `threads` real OS threads, best-of-`reps` host time. Unlike the
/// simulated points these measure the *queues themselves* on hardware
/// atomics (no scheduler in the loop), so `ops_per_sec` here is real
/// queue throughput, not simulation speed.
pub fn native_points(scale: u64, reps: u32) -> Vec<WallPoint> {
    native_points_jobs(scale, reps, 1).0
}

/// [`native_points`] with each queue kind as one pool job. Note the
/// native points already use `threads` OS threads *inside* each job, so
/// oversubscription compounds quickly — `jobs` here trades measurement
/// quality for wall time more steeply than the simulated series.
pub fn native_points_jobs(
    scale: u64,
    reps: u32,
    jobs: usize,
) -> (Vec<WallPoint>, runner::JobReport) {
    let (threads, ops) = (4usize, 400 * scale);
    let tasks: Vec<_> = QueueKind::ALL
        .iter()
        .map(|&kind| {
            move || {
                let w = paper_workload(WorkloadKind::ProducerOnly, threads, ops);
                let h = sample_reps(reps, || {
                    run_workload_native(kind, &w);
                });
                WallPoint::from_hist(
                    &format!("native_{}", kind.name().to_lowercase().replace('-', "")),
                    threads,
                    threads as u64 * ops,
                    &h,
                )
            }
        })
        .collect();
    runner::run_all(jobs, tasks)
}

/// TSV rendering — also the `baseline=` interchange format.
pub fn to_tsv(points: &[WallPoint]) -> String {
    let mut s = String::from(
        "name\tthreads\ttotal_ops\twall_ns\tops_per_sec\tp50_ns\tp99_ns\tmax_ns\
         \tfastpath_hits\tfastpath_fallbacks\tsim_events\n",
    );
    for p in points {
        s.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.0}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            p.name,
            p.threads,
            p.total_ops,
            p.wall_ns,
            p.ops_per_sec,
            p.p50_ns,
            p.p99_ns,
            p.max_ns,
            p.fastpath_hits,
            p.fastpath_fallbacks,
            p.sim_events
        ));
    }
    s
}

/// Parses a `to_tsv` capture back into points (header line skipped).
/// Captures predating the percentile columns still parse: their
/// distribution collapses onto `wall_ns`.
pub fn from_tsv(s: &str) -> Option<Vec<WallPoint>> {
    let mut out = Vec::new();
    for line in s.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() < 4 {
            return None;
        }
        let mut p = WallPoint::new(
            f[0],
            f[1].parse().ok()?,
            f[2].parse().ok()?,
            f[3].parse().ok()?,
        );
        if f.len() >= 8 {
            p.p50_ns = f[5].parse().ok()?;
            p.p99_ns = f[6].parse().ok()?;
            p.max_ns = f[7].parse().ok()?;
        }
        if f.len() >= 11 {
            p.fastpath_hits = f[8].parse().ok()?;
            p.fastpath_fallbacks = f[9].parse().ok()?;
            p.sim_events = f[10].parse().ok()?;
        }
        out.push(p);
    }
    Some(out)
}

fn json_points(points: &[WallPoint], indent: &str) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{indent}{{\"name\": \"{}\", \"threads\": {}, \"total_ops\": {}, \
                 \"wall_ns\": {}, \"sim_ops_per_sec\": {:.0}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \
                 \"fastpath_hits\": {}, \"fastpath_fallbacks\": {}, \"sim_events\": {}}}",
                p.name,
                p.threads,
                p.total_ops,
                p.wall_ns,
                p.ops_per_sec,
                p.p50_ns,
                p.p99_ns,
                p.max_ns,
                p.fastpath_hits,
                p.fastpath_fallbacks,
                p.sim_events
            )
        })
        .collect();
    rows.join(",\n")
}

/// Renders the `BENCH_sim.json` document. `baseline`, when present, is a
/// prior capture (typically the pre-rewrite scheduler) and per-point
/// speedups are included.
pub fn to_json(
    label: &str,
    points: &[WallPoint],
    baseline: Option<(&str, &[WallPoint])>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"sbq-wallbench-v1\",\n");
    s.push_str(&format!("  \"scheduler\": \"{label}\",\n"));
    s.push_str("  \"points\": [\n");
    s.push_str(&json_points(points, "    "));
    s.push_str("\n  ]");
    if let Some((blabel, bpoints)) = baseline {
        s.push_str(",\n  \"baseline\": {\n");
        s.push_str(&format!("    \"scheduler\": \"{blabel}\",\n"));
        s.push_str("    \"points\": [\n");
        s.push_str(&json_points(bpoints, "      "));
        s.push_str("\n    ]\n  },\n  \"speedup\": {");
        let mut first = true;
        let mut min_speedup = f64::INFINITY;
        for p in points {
            if let Some(b) = bpoints.iter().find(|b| b.name == p.name) {
                let sp = p.ops_per_sec / b.ops_per_sec.max(1.0);
                min_speedup = min_speedup.min(sp);
                if !first {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {sp:.2}", p.name));
                first = false;
            }
        }
        if min_speedup.is_finite() {
            if !first {
                s.push_str(", ");
            }
            s.push_str(&format!("\"min\": {min_speedup:.2}"));
        }
        s.push('}');
    }
    s.push_str("\n}\n");
    s
}
