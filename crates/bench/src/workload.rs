//! The paper's benchmark workloads (§6.1), runnable on **any**
//! [`harness::Backend`] — the coherence simulator (the figures) or
//! native atomics (wall-clock sanity series).
//!
//! On the simulator, threads are "pinned" by the machine topology:
//! program *i* runs on core *i*. For single-socket experiments all
//! threads share socket 0; the mixed workload uses a dual-socket machine
//! with producers on socket 0 and consumers on socket 1, matching the
//! paper's placement rule that all TxCASs of a location run on one
//! processor (§4.3). On native the OS schedules threads freely and the
//! machine config only sizes the run.

use absmem::ThreadCtx;
use coherence::MachineConfig;
use harness::{
    Backend, BackendKind, BackendReport, Job, NativeBackend, QueueAdapter, QueueKind, QueueParams,
    QueueVisitor, SimBackend, Substrate,
};
use obs::{Histogram, InstantKind, ObsSink, SpanKind, TraceMeta};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Which of the paper's workloads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Figure 5: producers fill an initially empty queue.
    ProducerOnly,
    /// Figure 6: consumers drain a queue pre-filled (concurrently, so
    /// baskets carry realistic occupancy) with enough elements.
    ConsumerOnly,
    /// Figure 7: producers and consumers run simultaneously on separate
    /// sockets over a pre-filled queue.
    Mixed,
}

/// One workload specification.
#[derive(Debug, Clone)]
pub struct Workload {
    pub kind: WorkloadKind,
    pub producers: usize,
    pub consumers: usize,
    /// Measured operations per thread.
    pub ops_per_thread: u64,
    /// Pre-fill per producer (consumer-only / mixed phases).
    pub prefill_per_producer: u64,
    /// Simulated machine (topology doubles as the thread-count source on
    /// native, where only the sizes matter).
    pub machine: MachineConfig,
    pub qp: QueueParams,
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub queue: &'static str,
    pub threads: usize,
    /// Mean latency of the measured operations, ns/op.
    pub latency_ns: f64,
    /// Aggregate throughput over the measured phase, Mop/s.
    pub throughput_mops: f64,
    /// Wall (simulated or host) duration of the measured phase divided by
    /// total measured ops, ns/op — the paper's Figure 7 metric.
    pub duration_ns_per_op: f64,
    /// HTM commits/aborts observed in the whole run (SBQ-HTM on the
    /// simulator only; zero on native).
    pub tx_commits: u64,
    pub tx_aborts: u64,
    /// Aborts caused by an interrupt/preemption component and total
    /// interrupts it delivered (zero on native and in component-free
    /// simulator configs).
    pub tx_aborts_interrupt: u64,
    pub interrupts_fired: u64,
    pub tripped_writers: u64,
    /// Per-op latency distribution of the measured phase, ns: median,
    /// tail, and exact worst case from the merged per-thread histograms
    /// (mean alone hides the tail the paper's contention effects live in).
    pub p50_ns: f64,
    pub p99_ns: f64,
    pub max_ns: f64,
    /// Uncontended-fast-path admissions and fallbacks
    /// (`MachineConfig::fast_path`; zero on native).
    pub fastpath_hits: u64,
    pub fastpath_fallbacks: u64,
    /// Scheduler events the run processed (simulator only) — the
    /// wall-clock cost driver behind `duration_ns_per_op`.
    pub sim_events: u64,
    /// Interconnect hops that stayed on one socket vs. crossed sockets
    /// (simulator only; zero on native). `dir_hops_cross` is the
    /// directory-leg share of the cross count — the traffic the
    /// home-socket policy can move.
    pub hops_intra: u64,
    pub hops_cross: u64,
    pub dir_hops_cross: u64,
}

struct ThreadOut {
    /// (sum of op latencies, op count) for the measured phase.
    lat_sum: u64,
    ops: u64,
    /// Measured-phase start and end local times.
    start: u64,
    end: u64,
    /// Per-op latencies of the measured phase, cycles.
    hist: Histogram,
}

/// Runs `w` with queue type `Q` on `backend` and returns the data point.
/// Both clocks tick in cycles at the nominal 2.2 GHz (simulated cycles
/// vs. wall-clock-derived), so the ns conversions below hold on either
/// backend.
pub fn run_on<B, Q>(backend: &mut B, w: &Workload) -> Measurement
where
    B: Backend,
    Q: QueueAdapter<B::Ctx> + 'static,
{
    run_on_obs::<B, Q>(backend, w, None).0
}

/// [`run_on`], optionally emitting typed spans into an [`ObsSink`] and
/// returning the backend report (whose simulator trace the Chrome
/// exporter bridges). Span recording reuses the `ctx.now()` reads the
/// latency accounting already performs, so attaching a sink cannot
/// perturb simulated timing.
pub fn run_on_obs<B, Q>(
    backend: &mut B,
    w: &Workload,
    obs: Option<&Arc<ObsSink>>,
) -> (Measurement, BackendReport)
where
    B: Backend,
    Q: QueueAdapter<B::Ctx> + 'static,
{
    let base = Arc::new(AtomicU64::new(0));
    let outs: Arc<Mutex<Vec<ThreadOut>>> = Arc::new(Mutex::new(Vec::new()));
    let nthreads = w.producers + w.consumers;

    let mut programs: Vec<Job<B::Ctx>> = Vec::with_capacity(nthreads);
    for i in 0..nthreads {
        let is_producer = i < w.producers;
        let base = Arc::clone(&base);
        let outs = Arc::clone(&outs);
        let sink = obs.cloned();
        let w2 = w.clone();
        programs.push(Box::new(move |ctx: &mut B::Ctx| {
            let mut q = Q::attach(base.load(SeqCst), ctx, &w2.qp);
            let tid = ctx.thread_id() as u64;
            let mut tobs = sink.as_ref().map(|s| s.thread(tid as usize));
            let mut seq = 0u64;
            let mut next_val = || {
                seq += 1;
                (tid << 40) | seq
            };
            // Phase 1: pre-fill (producers only).
            if is_producer {
                let prefill = match w2.kind {
                    WorkloadKind::ProducerOnly => 0,
                    _ => w2.prefill_per_producer,
                };
                for _ in 0..prefill {
                    let v = next_val();
                    let t0 = ctx.now();
                    q.enqueue(ctx, v);
                    if let Some(o) = &mut tobs {
                        o.span(SpanKind::Enqueue, t0, ctx.now(), v);
                    }
                }
            }
            ctx.barrier();
            if let Some(o) = &mut tobs {
                o.instant(InstantKind::Barrier, ctx.now(), 0);
            }
            // Phase 2: the measured operations.
            let start = ctx.now();
            let mut lat_sum = 0u64;
            let mut ops = 0u64;
            let mut hist = Histogram::new();
            match (w2.kind, is_producer) {
                (WorkloadKind::ProducerOnly, true) | (WorkloadKind::Mixed, true) => {
                    for _ in 0..w2.ops_per_thread {
                        let v = next_val();
                        let t0 = ctx.now();
                        q.enqueue(ctx, v);
                        let t1 = ctx.now();
                        lat_sum += t1 - t0;
                        hist.record(t1 - t0);
                        ops += 1;
                        if let Some(o) = &mut tobs {
                            o.span(SpanKind::Enqueue, t0, t1, v);
                        }
                    }
                }
                (WorkloadKind::ConsumerOnly, _) | (WorkloadKind::Mixed, false) => {
                    let mut done = 0u64;
                    while done < w2.ops_per_thread {
                        let t0 = ctx.now();
                        let r = q.dequeue(ctx);
                        let t1 = ctx.now();
                        lat_sum += t1 - t0;
                        hist.record(t1 - t0);
                        ops += 1;
                        if let Some(o) = &mut tobs {
                            match r {
                                Some(v) => o.span(SpanKind::Dequeue, t0, t1, v),
                                None => o.span(SpanKind::DequeueEmpty, t0, t1, 0),
                            }
                        }
                        if r.is_some() {
                            done += 1;
                        }
                    }
                }
                (WorkloadKind::ProducerOnly, false) => unreachable!("no consumers here"),
            }
            let end = ctx.now();
            if let (Some(s), Some(o)) = (&sink, tobs.take()) {
                s.submit(o);
            }
            outs.lock().unwrap().push(ThreadOut {
                lat_sum,
                ops,
                start,
                end,
                hist,
            });
        }));
    }

    let b2 = Arc::clone(&base);
    let qp = w.qp;
    let report = backend.run(
        Box::new(move |ctx| {
            let addr = Q::create(ctx, &qp);
            b2.store(addr, SeqCst);
        }),
        programs,
    );

    let outs = outs.lock().unwrap();
    let total_ops: u64 = outs.iter().map(|o| o.ops).sum();
    let lat_sum: u64 = outs.iter().map(|o| o.lat_sum).sum();
    let t_start = outs.iter().map(|o| o.start).min().unwrap();
    let t_end = outs.iter().map(|o| o.end).max().unwrap();
    let duration = (t_end - t_start).max(1);
    let mut hist = Histogram::new();
    for o in outs.iter() {
        hist.merge(&o.hist);
    }
    let m = Measurement {
        queue: Q::NAME,
        threads: nthreads,
        latency_ns: coherence::cycles_to_ns(lat_sum) / total_ops as f64,
        throughput_mops: total_ops as f64 / coherence::cycles_to_ns(duration) * 1e3,
        duration_ns_per_op: coherence::cycles_to_ns(duration) / total_ops as f64,
        tx_commits: report.tx_commits(),
        tx_aborts: report.tx_aborts(),
        tx_aborts_interrupt: report
            .sim
            .as_ref()
            .map_or(0, |r| r.stats.tx_aborts_interrupt),
        interrupts_fired: report.sim.as_ref().map_or(0, |r| r.stats.interrupts_fired),
        tripped_writers: report.tripped_writers(),
        p50_ns: coherence::cycles_to_ns(hist.p50()),
        p99_ns: coherence::cycles_to_ns(hist.p99()),
        max_ns: coherence::cycles_to_ns(hist.max()),
        fastpath_hits: report.sim.as_ref().map_or(0, |r| r.stats.fastpath_hits),
        fastpath_fallbacks: report
            .sim
            .as_ref()
            .map_or(0, |r| r.stats.fastpath_fallbacks),
        sim_events: report.sim.as_ref().map_or(0, |r| r.stats.events),
        hops_intra: report.sim.as_ref().map_or(0, |r| r.stats.hops_intra),
        hops_cross: report.sim.as_ref().map_or(0, |r| r.stats.hops_cross),
        dir_hops_cross: report.sim.as_ref().map_or(0, |r| r.stats.dir_hops_cross),
    };
    (m, report)
}

struct WorkloadDriver<'a, B: Backend> {
    backend: &'a mut B,
    w: &'a Workload,
}

impl<B> QueueVisitor<B::Ctx> for WorkloadDriver<'_, B>
where
    B: Backend,
    B::Ctx: Substrate,
{
    type Out = Measurement;

    fn visit<Q: QueueAdapter<B::Ctx> + 'static>(self) -> Measurement {
        run_on::<B, Q>(self.backend, self.w)
    }
}

/// Runs `w` on the simulator, dispatching on the queue kind — the
/// figures' entry point.
pub fn run_workload(kind: QueueKind, w: &Workload) -> Measurement {
    let nthreads = w.producers + w.consumers;
    assert!(
        nthreads <= w.machine.cores,
        "workload exceeds machine cores"
    );
    let mut backend = SimBackend::new(w.machine.clone());
    kind.visit::<coherence::SimCtx, _>(WorkloadDriver {
        backend: &mut backend,
        w,
    })
}

/// Runs `w` on native atomics (real OS threads, wall-clock time).
pub fn run_workload_native(kind: QueueKind, w: &Workload) -> Measurement {
    let mut backend = NativeBackend::default();
    kind.visit::<absmem::native::NativeCtx, _>(WorkloadDriver {
        backend: &mut backend,
        w,
    })
}

/// One traced run: the data point plus the Chrome trace-event JSON
/// document covering it.
#[derive(Debug)]
pub struct TracedRun {
    pub measurement: Measurement,
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// The same spans as TSV (`tid name ts dur arg`).
    pub tsv: String,
}

struct TraceDriver<'a, B: Backend> {
    backend: &'a mut B,
    w: &'a Workload,
    sink: &'a Arc<ObsSink>,
}

impl<B> QueueVisitor<B::Ctx> for TraceDriver<'_, B>
where
    B: Backend,
    B::Ctx: Substrate,
{
    type Out = (Measurement, BackendReport);

    fn visit<Q: QueueAdapter<B::Ctx> + 'static>(self) -> (Measurement, BackendReport) {
        run_on_obs::<B, Q>(self.backend, self.w, Some(self.sink))
    }
}

/// Runs `w` once with observability attached and exports the run as a
/// Chrome trace. On the simulator the machine's coherence/HTM trace is
/// switched on and bridged onto the Dir track, and the document is a
/// pure function of the workload (byte-identical across runs); on native
/// only the per-thread op spans exist and timings are wall-clock.
pub fn trace_workload(kind: QueueKind, w: &Workload, backend: BackendKind) -> TracedRun {
    let sink = Arc::new(ObsSink::default());
    let (measurement, report) = match backend {
        BackendKind::Sim => {
            let nthreads = w.producers + w.consumers;
            assert!(
                nthreads <= w.machine.cores,
                "workload exceeds machine cores"
            );
            let mut cfg = w.machine.clone();
            cfg.trace = true;
            let mut b = SimBackend::new(cfg);
            kind.visit::<coherence::SimCtx, _>(TraceDriver {
                backend: &mut b,
                w,
                sink: &sink,
            })
        }
        BackendKind::Native => {
            let mut b = NativeBackend::default();
            kind.visit::<absmem::native::NativeCtx, _>(TraceDriver {
                backend: &mut b,
                w,
                sink: &sink,
            })
        }
    };
    let (sim_trace, fastpath, hops) = match report.sim {
        Some(r) => (
            r.trace,
            Some((r.stats.fastpath_hits, r.stats.fastpath_fallbacks)),
            Some((r.stats.hops_intra, r.stats.hops_cross)),
        ),
        None => (Vec::new(), None, None),
    };
    let logs = sink.take_logs();
    let meta = TraceMeta {
        backend: backend.name(),
        label: format!(
            "{} {:?} {}p+{}c",
            measurement.queue, w.kind, w.producers, w.consumers
        ),
        fastpath,
        hops,
    };
    TracedRun {
        chrome_json: obs::export(&logs, &sim_trace, &meta),
        tsv: obs::export_tsv(&logs),
        measurement,
    }
}

/// A closed-loop reference point for the open-loop load layer's sanity
/// checks: `threads` producers enqueue `ops` each as fast as the queue
/// lets them, machine jitter off so the run is deterministic. At zero
/// overload an open-loop source's enqueue-op latency should sit near
/// this run's `p50_ns` — the queue cannot tell paced arrivals from a
/// momentarily idle closed loop.
pub fn closed_loop_reference(kind: QueueKind, threads: usize, ops: u64) -> Measurement {
    let mut w = paper_workload(WorkloadKind::ProducerOnly, threads, ops);
    w.machine.delay_jitter_pct = 0;
    run_workload(kind, &w)
}

/// Runs `w` on the simulator with a statically chosen queue type (for
/// ablation drivers comparing non-[`QueueKind`] variants).
pub fn run_generic<Q: QueueAdapter<coherence::SimCtx> + 'static>(w: &Workload) -> Measurement {
    let mut backend = SimBackend::new(w.machine.clone());
    run_on::<SimBackend, Q>(&mut backend, w)
}

/// Builds the workload for one paper figure data point.
pub fn paper_workload(kind: WorkloadKind, threads: usize, ops_per_thread: u64) -> Workload {
    match kind {
        WorkloadKind::ProducerOnly => Workload {
            kind,
            producers: threads,
            consumers: 0,
            ops_per_thread,
            prefill_per_producer: 0,
            machine: tuned(MachineConfig::single_socket(threads)),
            qp: QueueParams {
                max_threads: threads,
                enqueuers: threads,
                // The paper fixes B = 44 (the machine width); growing the
                // machine grows the basket with it.
                basket_capacity: threads.max(44),
                ..Default::default()
            },
        },
        WorkloadKind::ConsumerOnly => Workload {
            kind,
            producers: threads, // every thread pre-fills, then consumes
            consumers: 0,
            ops_per_thread,
            // Enough that the queue never empties during measurement.
            prefill_per_producer: ops_per_thread + 8,
            machine: tuned(MachineConfig::single_socket(threads)),
            qp: QueueParams {
                max_threads: threads,
                enqueuers: threads,
                basket_capacity: threads.max(44),
                ..Default::default()
            },
        },
        WorkloadKind::Mixed => {
            // Half producers (socket 0), half consumers (socket 1).
            let producers = threads / 2;
            let consumers = threads - producers;
            // The paper's Figure 7 fixes the *total* work (4M enqueues +
            // 4M dequeues) regardless of thread count, so its normalized
            // duration grows when added threads only add contention.
            // Mirror that: `ops_per_thread` is interpreted as the total
            // per-side budget at the reference width of 44 threads.
            let total_per_side = ops_per_thread * 22;
            let ops_per_thread = (total_per_side / producers.max(1) as u64).max(8);
            Workload {
                kind,
                producers,
                consumers,
                ops_per_thread,
                prefill_per_producer: ops_per_thread / 2 + 8,
                machine: tuned(MachineConfig::dual_socket(producers.max(consumers))),
                qp: QueueParams {
                    max_threads: threads,
                    enqueuers: producers.max(1),
                    // Cell index = thread id, so capacity must cover every
                    // attached thread even though only producers insert.
                    basket_capacity: threads.max(44),
                    ..Default::default()
                },
            }
        }
    }
}

fn tuned(mut m: MachineConfig) -> MachineConfig {
    m.check_invariants = false;
    m
}

/// The NUMA scenario family: how threads, directory homes, and hop
/// latencies are arranged on a multi-socket machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumaShape {
    /// Producers only, first-touch homes: every thread's baskets and
    /// queue lines home on its own socket, so directory legs stay
    /// socket-local even on a 4-socket machine.
    SocketLocal,
    /// Producers on the low sockets, consumers on the high ones, homes
    /// hash-interleaved — the paper's §4.3 placement stressed across
    /// the interconnect.
    CrossSplit,
    /// [`NumaShape::CrossSplit`] with the cross-socket hop priced 4×
    /// the default (440 vs. 110 cycles): an asymmetric fabric where
    /// remote directory legs dominate.
    SkewedHops,
}

impl NumaShape {
    pub const ALL: [NumaShape; 3] = [
        NumaShape::SocketLocal,
        NumaShape::CrossSplit,
        NumaShape::SkewedHops,
    ];

    pub fn name(self) -> &'static str {
        match self {
            NumaShape::SocketLocal => "socket-local",
            NumaShape::CrossSplit => "cross-split",
            NumaShape::SkewedHops => "skewed-hops",
        }
    }

    pub fn parse(s: &str) -> Option<NumaShape> {
        NumaShape::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Builds one NUMA scenario data point: `threads` spread evenly over
/// `sockets` sockets (44 per socket at paper scale: 88 = dual, 176 =
/// quad). Unlike [`paper_workload`]'s fixed dual-socket mixed shape,
/// these scenarios vary the home policy and fabric pricing, and the
/// measurement's hop counters say where the directory traffic went.
pub fn numa_workload(
    shape: NumaShape,
    sockets: usize,
    threads: usize,
    ops_per_thread: u64,
) -> Workload {
    let sockets = sockets.max(1);
    let (kind, producers, consumers, prefill) = match shape {
        NumaShape::SocketLocal => (WorkloadKind::ProducerOnly, threads.max(1), 0, 0),
        NumaShape::CrossSplit | NumaShape::SkewedHops => {
            // Equal producer/consumer halves (odd counts round down) so
            // supply always covers consumer demand. Threads are pinned
            // core i = program i, so the producer half fills the low
            // sockets and the consumer half the high ones.
            let pairs = (threads / 2).max(1);
            (WorkloadKind::Mixed, pairs, pairs, ops_per_thread / 2 + 8)
        }
    };
    let nthreads = producers + consumers;
    let per_socket = nthreads.div_ceil(sockets).max(1);
    let mut machine = tuned(MachineConfig::multi_socket(sockets, per_socket));
    match shape {
        NumaShape::SocketLocal => machine.home_policy = coherence::HomePolicy::FirstTouch,
        NumaShape::CrossSplit => machine.home_policy = coherence::HomePolicy::Interleave,
        NumaShape::SkewedHops => {
            machine.home_policy = coherence::HomePolicy::Interleave;
            machine.hop_cross *= 4;
        }
    }
    Workload {
        kind,
        producers,
        consumers,
        ops_per_thread,
        prefill_per_producer: prefill,
        machine,
        qp: QueueParams {
            max_threads: nthreads,
            enqueuers: producers,
            basket_capacity: nthreads.max(44),
            ..Default::default()
        },
    }
}
