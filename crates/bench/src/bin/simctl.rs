//! simctl — run one queue workload on the simulated machine with custom
//! parameters, printing the measurement as TSV. The interactive companion
//! to the fixed `figures` drivers.
//!
//! ```text
//! simctl <queue> <workload> <threads> [key=value ...]
//!
//! queues:    sbq-htm | sbq-cas | bq | wf | cc | ms
//! workloads: producer | consumer | mixed
//! keys:      ops (per thread)        default 200
//!            hop (intra-socket, cy)  default 25
//!            hop-cross (cycles)      default 110
//!            delay (TxCAS intra, cy) default 600
//!            basket (capacity)       default max(44, threads)
//!            fix (0/1 microarch fix) default 0
//!            seed                    default 0x5b90
//! ```
//!
//! Example: `simctl sbq-htm producer 44 ops=300 delay=900`

use bench::simq::{QueueKind, QueueParams};
use bench::workload::{paper_workload, run_workload, WorkloadKind};

fn usage() -> ! {
    eprintln!(
        "usage: simctl <sbq-htm|sbq-cas|bq|wf|cc|ms> <producer|consumer|mixed> <threads> [key=value ...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let Some(queue) = QueueKind::parse(&args[0]) else {
        eprintln!("unknown queue `{}`", args[0]);
        usage();
    };
    let kind = match args[1].as_str() {
        "producer" | "producer-only" | "enq" => WorkloadKind::ProducerOnly,
        "consumer" | "consumer-only" | "deq" => WorkloadKind::ConsumerOnly,
        "mixed" => WorkloadKind::Mixed,
        other => {
            eprintln!("unknown workload `{other}`");
            usage();
        }
    };
    let threads: usize = args[2].parse().unwrap_or_else(|_| usage());

    let mut ops = 200u64;
    let mut w = paper_workload(kind, threads, ops);
    for kv in &args[3..] {
        let Some((k, v)) = kv.split_once('=') else {
            eprintln!("expected key=value, got `{kv}`");
            usage();
        };
        let n: u64 = v.parse().unwrap_or_else(|_| usage());
        match k {
            "ops" => ops = n,
            "hop" => w.machine.hop_intra = n,
            "hop-cross" => w.machine.hop_cross = n,
            "delay" => {
                w.qp.txcas.intra_delay = n;
                w.qp.delay_cycles = n;
            }
            "basket" => {
                w.qp.basket_capacity = n as usize;
                w.qp = QueueParams {
                    enqueuers: w.qp.enqueuers.min(n as usize),
                    ..w.qp
                };
            }
            "fix" => w.machine.microarch_fix = n != 0,
            "seed" => w.machine.seed = n,
            other => {
                eprintln!("unknown key `{other}`");
                usage();
            }
        }
    }
    // Re-derive ops-dependent fields with the final value.
    let mut w2 = paper_workload(kind, threads, ops);
    w2.machine = w.machine.clone();
    w2.qp = w.qp;
    let m = run_workload(queue, &w2);

    println!("queue\tworkload\tthreads\tlatency_ns\tthroughput_mops\tduration_ns_per_op\ttx_commits\ttx_aborts\ttripped");
    println!(
        "{}\t{:?}\t{}\t{:.1}\t{:.3}\t{:.1}\t{}\t{}\t{}",
        m.queue,
        kind,
        m.threads,
        m.latency_ns,
        m.throughput_mops,
        m.duration_ns_per_op,
        m.tx_commits,
        m.tx_aborts,
        m.tripped_writers
    );
}
