//! Regenerates the paper's figures on the simulated substrate.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- <subcommand>
//! ```
//!
//! Subcommands: `fig1 fig2 fig3 fig5 fig6 fig7 speedups ablate-delay
//! ablate-fix ablate-basket fig-numa all`. Scale with `SBQ_OPS`
//! (ops/thread) and `SBQ_THREADS` (comma-separated sweep); `SBQ_JOBS`
//! sets the sweep's worker-thread count (default: all host cores — the
//! output is byte-identical either way, see `bench::fig`). `fig-numa`
//! sweeps a `sockets x threads` grid set by `SBQ_NUMA_GRID` (default
//! `1x44,2x88,4x176`).

use bench::fig;

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "fig1" => fig::fig1(),
        "fig2" => fig::fig2(),
        "fig3" => fig::fig3(),
        "fig5" => fig::fig5(),
        "fig6" => fig::fig6(),
        "fig7" => fig::fig7(),
        "speedups" => fig::speedups(),
        "ablate-delay" => fig::ablate_delay(),
        "ablate-fix" => fig::ablate_fix(),
        "ablate-basket" => fig::ablate_basket(),
        "ablate-deq" => fig::ablate_deq(),
        "fig-numa" => fig::fig_numa(),
        "all" => fig::all(),
        other => {
            eprintln!(
                "unknown figure `{other}`; valid: fig1 fig2 fig3 fig5 fig6 fig7 \
                 speedups ablate-delay ablate-fix ablate-basket fig-numa all"
            );
            std::process::exit(2);
        }
    }
}
