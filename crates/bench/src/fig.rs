//! Figure drivers: each regenerates one table/figure of the paper as TSV
//! on stdout (see DESIGN.md §4 for the experiment index).
//!
//! Every driver comes in two layers: a `*_text` function that takes
//! explicit scale knobs plus a `jobs` worker count and *returns* the
//! TSV, and a thin printing wrapper that fills the knobs from the
//! environment (`SBQ_OPS`, `SBQ_THREADS`, `SBQ_JOBS`). Each sweep point
//! is one independent simulation, so the text layer fans the points
//! across a [`runner`] job pool and joins the rows in submission order —
//! the output is byte-identical for any `jobs` value (the equivalence
//! suite in `tests/figures_jobs.rs` pins this).

use crate::workload::{
    numa_workload, paper_workload, run_workload, Measurement, NumaShape, WorkloadKind,
};
use crate::{env_u64, thread_counts};
use absmem::ThreadCtx;
use coherence::{cycles_to_ns, Machine, MachineConfig, Program, SimCtx, TraceEvent};
use harness::QueueKind;
use sbq::txcas::{txn_cas, TxCasParams, TxCasStats};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Default thread sweep for single-socket figures (1–44 hardware threads,
/// matching the paper's x-axis).
const SWEEP: &[usize] = &[1, 2, 4, 8, 12, 16, 22, 28, 36, 44];

fn header_row(cols: &[&str]) -> String {
    format!("{}\n", cols.join("\t"))
}

/// Runs one row-producing task per sweep point and joins the rows in
/// submission order.
fn sweep_rows<F>(jobs: usize, tasks: Vec<F>) -> String
where
    F: FnOnce() -> String + Send,
{
    let (rows, _) = runner::run_all(jobs, tasks);
    rows.concat()
}

// ---------------------------------------------------------------------
// Figure 1: TxCAS vs FAA latency
// ---------------------------------------------------------------------

/// One Figure-1 data point: every thread hammers one shared word.
fn fig1_point(threads: usize, ops: u64, use_txcas: bool, params: TxCasParams) -> (f64, TxCasStats) {
    let (ns, stats, _) = fig1_point_on(
        MachineConfig::single_socket(threads),
        ops,
        use_txcas,
        params,
    );
    (ns, stats)
}

/// [`fig1_point`] on an explicit machine (the NUMA sweeps pass
/// multi-socket topologies), additionally returning the run's
/// (intra, cross) interconnect hop counts.
fn fig1_point_on(
    mut cfg: MachineConfig,
    ops: u64,
    use_txcas: bool,
    params: TxCasParams,
) -> (f64, TxCasStats, (u64, u64)) {
    let threads = cfg.cores;
    cfg.check_invariants = false;
    let shared = Arc::new(AtomicU64::new(0));
    let lat: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let stats_all: Arc<Mutex<TxCasStats>> = Arc::new(Mutex::new(TxCasStats::default()));
    let programs: Vec<Program> = (0..threads)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let lat = Arc::clone(&lat);
            let stats_all = Arc::clone(&stats_all);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                ctx.barrier();
                let mut stats = TxCasStats::default();
                let t0 = ctx.now();
                if use_txcas {
                    for _ in 0..ops {
                        let old = ctx.read(a);
                        txn_cas(ctx, &params, a, old, old + 1, &mut stats);
                    }
                } else {
                    for _ in 0..ops {
                        ctx.faa(a, 1);
                    }
                }
                lat.lock().unwrap().push((ctx.now() - t0, ops));
                let mut s = stats_all.lock().unwrap();
                s.success += stats.success;
                s.fail_self_abort += stats.fail_self_abort;
                s.fail_post_abort += stats.fail_post_abort;
                s.retries += stats.retries;
                s.fallbacks += stats.fallbacks;
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    let report = Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(1);
            ctx.write(a, 0);
            s2.store(a, SeqCst);
        }),
        programs,
    );
    let lat = lat.lock().unwrap();
    let total_cycles: u64 = lat.iter().map(|(c, _)| c).sum();
    let total_ops: u64 = lat.iter().map(|(_, o)| o).sum();
    let ns = cycles_to_ns(total_cycles) / total_ops as f64;
    let stats = stats_all.lock().unwrap().clone();
    (
        ns,
        stats,
        (report.stats.hops_intra, report.stats.hops_cross),
    )
}

/// Figure 1 as TSV: TxCAS vs standard FAA latency as contention grows.
/// One job per thread count.
pub fn fig1_text(ops: u64, threads: &[usize], jobs: usize) -> String {
    let mut s = String::from("# Figure 1: operation latency [ns/op] vs concurrent threads\n");
    s.push_str(&header_row(&["threads", "FAA", "TxCAS"]));
    let tasks: Vec<_> = threads
        .iter()
        .map(|&t| {
            move || {
                let (faa, _) = fig1_point(t, ops, false, TxCasParams::default());
                let (tx, _) = fig1_point(t, ops, true, TxCasParams::default());
                format!("{t}\t{faa:.1}\t{tx:.1}\n")
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// Figure 1: TxCAS vs standard FAA latency as contention grows.
pub fn fig1() {
    print!(
        "{}",
        fig1_text(
            env_u64("SBQ_OPS", 300),
            &thread_counts(SWEEP),
            runner::default_jobs()
        )
    );
}

// ---------------------------------------------------------------------
// Figures 2 & 3: coherence message dynamics (trace reproductions)
// ---------------------------------------------------------------------

fn trace_rows(trace: &[TraceEvent], from: u64, limit: usize) -> String {
    let mut s = header_row(&["t_sent", "t_recv", "src", "dst", "msg", "line/detail"]);
    let mut n = 0;
    for e in trace {
        match e {
            TraceEvent::Msg {
                sent,
                recv,
                src,
                dst,
                kind,
                line,
            } if *sent >= from => {
                let _ = writeln!(s, "{sent}\t{recv}\t{src}\t{dst}\t{kind}\t{line:#x}");
                n += 1;
            }
            TraceEvent::Tx {
                time,
                core,
                what,
                detail,
            } if *time >= from => {
                let _ = writeln!(s, "{time}\t-\tC{core}\t-\t[{what}]\t{detail:#x}");
                n += 1;
            }
            _ => {}
        }
        if n >= limit {
            s.push_str("... (truncated)\n");
            break;
        }
    }
    s
}

/// Figure 2 as TSV: message dynamics of contended standard CAS (2a) vs
/// HTM-based CAS (2b), three cores. One job per variant.
pub fn fig2_text(jobs: usize) -> String {
    let tasks: Vec<_> = [false, true]
        .into_iter()
        .map(|htm| {
            move || {
                let mut cfg = MachineConfig::single_socket(3);
                cfg.trace = true;
                let shared = Arc::new(AtomicU64::new(0));
                let programs: Vec<Program> = (0..3)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        Box::new(move |ctx: &mut SimCtx| {
                            let a = shared.load(SeqCst);
                            // All cores read first (line Shared everywhere)...
                            let old = ctx.read(a);
                            ctx.barrier();
                            // ...then CAS simultaneously.
                            if htm {
                                let mut st = TxCasStats::default();
                                let p = TxCasParams {
                                    intra_delay: 40,
                                    ..Default::default()
                                };
                                txn_cas(ctx, &p, a, old, i as u64 + 1, &mut st);
                            } else {
                                ctx.cas(a, old, i as u64 + 1);
                            }
                        }) as Program
                    })
                    .collect();
                let s2 = Arc::clone(&shared);
                let report = Machine::new(cfg).run(
                    Box::new(move |ctx| {
                        let a = ctx.alloc(1);
                        ctx.write(a, 0);
                        s2.store(a, SeqCst);
                    }),
                    programs,
                );
                let mut s = String::new();
                let _ = writeln!(
                    s,
                    "# Figure 2{}: {} — contended CAS x3 cores",
                    if htm { 'b' } else { 'a' },
                    if htm {
                        "HTM-based CAS: failures are not serialized"
                    } else {
                        "standard CAS: all operations serialized"
                    }
                );
                // Skip the setup/warm-up traffic: find the barrier moment
                // by the last initial read.
                s.push_str(&trace_rows(&report.trace, 0, 60));
                let _ = writeln!(
                    s,
                    "# commits={} conflict_aborts={}",
                    report.stats.tx_commits, report.stats.tx_aborts_conflict
                );
                s.push_str("# swim lanes:\n");
                s.push_str(&crate::trace_render::render_lanes(
                    &report.trace,
                    &["Dir", "C0", "C1", "C2"],
                    40,
                ));
                s.push('\n');
                s
            }
        })
        .collect();
    sweep_rows(jobs, tasks)
}

/// Figure 2: message dynamics of contended standard CAS (2a) vs HTM-based
/// CAS (2b), three cores.
pub fn fig2() {
    print!("{}", fig2_text(runner::default_jobs()));
}

/// Figure 3 as TSV: the tripped-writer race, with and without the §3.4.1
/// microarchitectural fix. One job per variant.
pub fn fig3_text(jobs: usize) -> String {
    let tasks: Vec<_> = [false, true]
        .into_iter()
        .map(|fix| {
            move || {
                let mut cfg = MachineConfig::dual_socket(3);
                cfg.trace = true;
                cfg.microarch_fix = fix;
                let shared = Arc::new(AtomicU64::new(0));
                let programs: Vec<Program> = (0..6)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        Box::new(move |ctx: &mut SimCtx| {
                            let a = shared.load(SeqCst);
                            match i {
                                0 => {
                                    let old = ctx.read(a);
                                    ctx.barrier();
                                    let mut st = TxCasStats::default();
                                    let p = TxCasParams {
                                        intra_delay: 1,
                                        ..Default::default()
                                    };
                                    txn_cas(ctx, &p, a, old, 7, &mut st);
                                }
                                3 => {
                                    // Far-socket sharer: slow InvAck widens
                                    // the writer's vulnerable window.
                                    let _ = ctx.read(a);
                                    ctx.barrier();
                                    ctx.delay(4000);
                                }
                                1 | 2 => {
                                    ctx.barrier();
                                    ctx.delay(80 + 90 * i as u64);
                                    let _ = ctx.read(a); // the tripping read
                                }
                                _ => {
                                    ctx.barrier();
                                }
                            }
                        }) as Program
                    })
                    .collect();
                let s2 = Arc::clone(&shared);
                let report = Machine::new(cfg).run(
                    Box::new(move |ctx| {
                        let a = ctx.alloc(1);
                        ctx.write(a, 0);
                        s2.store(a, SeqCst);
                    }),
                    programs,
                );
                let mut s = String::new();
                let _ = writeln!(
                    s,
                    "# Figure 3: tripped writer ({}). tripped={} fix_stalls={} commits={}",
                    if fix { "with §3.4.1 fix" } else { "no fix" },
                    report.stats.tripped_writers,
                    report.stats.fix_stalls,
                    report.stats.tx_commits
                );
                s.push_str(&trace_rows(&report.trace, 0, 50));
                s.push('\n');
                s
            }
        })
        .collect();
    sweep_rows(jobs, tasks)
}

/// Figure 3: the tripped-writer race, with and without the §3.4.1
/// microarchitectural fix.
pub fn fig3() {
    print!("{}", fig3_text(runner::default_jobs()));
}

// ---------------------------------------------------------------------
// Figures 5–7: the queue benchmarks
// ---------------------------------------------------------------------

fn queue_figure_text(
    kind: WorkloadKind,
    title: &str,
    metric: fn(&Measurement) -> Vec<f64>,
    ops: u64,
    threads: &[usize],
    jobs: usize,
) -> String {
    let mut s = format!("{title}\n");
    let queues = QueueKind::PAPER_SET;
    let mut cols = vec!["threads".to_string()];
    cols.extend(queues.iter().map(|q| q.name().to_string()));
    let _ = writeln!(s, "{}", cols.join("\t"));
    let tasks: Vec<_> = threads
        .iter()
        .map(|&t| {
            move || {
                let t = if kind == WorkloadKind::Mixed {
                    t * 2
                } else {
                    t
                };
                let mut row = vec![format!("{t}")];
                for q in queues {
                    let m = run_workload(q, &paper_workload(kind, t, ops));
                    row.push(
                        metric(&m)
                            .iter()
                            .map(|v| format!("{v:.1}"))
                            .collect::<Vec<_>>()
                            .join("/"),
                    );
                }
                format!("{}\n", row.join("\t"))
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

fn queue_figure(kind: WorkloadKind, title: &str, metric: fn(&Measurement) -> Vec<f64>) {
    print!(
        "{}",
        queue_figure_text(
            kind,
            title,
            metric,
            env_u64("SBQ_OPS", 200),
            &thread_counts(SWEEP),
            runner::default_jobs()
        )
    );
}

/// Figure 5 as TSV (explicit scale; one job per thread count).
pub fn fig5_text(ops: u64, threads: &[usize], jobs: usize) -> String {
    queue_figure_text(
        WorkloadKind::ProducerOnly,
        "# Figure 5: enqueue-only — latency[ns/op]/throughput[Mop/s] per queue",
        |m| vec![m.latency_ns, m.throughput_mops],
        ops,
        threads,
        jobs,
    )
}

/// Figure 5: producer-only latency [ns/op] and throughput [Mop/s].
pub fn fig5() {
    queue_figure(
        WorkloadKind::ProducerOnly,
        "# Figure 5: enqueue-only — latency[ns/op]/throughput[Mop/s] per queue",
        |m| vec![m.latency_ns, m.throughput_mops],
    );
}

/// Figure 6: consumer-only dequeue latency [ns/op].
pub fn fig6() {
    queue_figure(
        WorkloadKind::ConsumerOnly,
        "# Figure 6: dequeue-only — latency[ns/op] per queue",
        |m| vec![m.latency_ns],
    );
}

/// Figure 7: mixed workload, normalized duration [ns/op].
pub fn fig7() {
    queue_figure(
        WorkloadKind::Mixed,
        "# Figure 7: mixed producers(socket0)/consumers(socket1) — duration[ns/op]",
        |m| vec![m.duration_ns_per_op],
    );
}

/// The headline comparison as TSV: one job per workload row.
pub fn speedups_text(ops: u64, t: usize, jobs: usize) -> String {
    let mut s = String::from("# Headline speedups (SBQ-HTM over WF-Queue)\n");
    s.push_str(&header_row(&[
        "workload", "threads", "sbq_thr", "wf_thr", "speedup",
    ]));
    let tasks: Vec<_> = [
        ("producer-only", WorkloadKind::ProducerOnly, t),
        ("mixed", WorkloadKind::Mixed, t * 2),
    ]
    .into_iter()
    .map(|(name, kind, threads)| {
        move || {
            let sbq = run_workload(QueueKind::SbqHtm, &paper_workload(kind, threads, ops));
            let wf = run_workload(QueueKind::WfQueue, &paper_workload(kind, threads, ops));
            // For the mixed workload the paper compares durations, so use
            // 1/duration as "throughput".
            let (sv, wv) = match kind {
                WorkloadKind::Mixed => (1.0 / sbq.duration_ns_per_op, 1.0 / wf.duration_ns_per_op),
                _ => (sbq.throughput_mops, wf.throughput_mops),
            };
            format!("{name}\t{threads}\t{sv:.3}\t{wv:.3}\t{:.2}x\n", sv / wv)
        }
    })
    .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// The headline comparison (§1, §6.2): SBQ-HTM vs WF-Queue throughput
/// ratio on producer-only and mixed workloads at full concurrency.
pub fn speedups() {
    let t = *thread_counts(SWEEP).last().unwrap_or(&44);
    print!(
        "{}",
        speedups_text(env_u64("SBQ_OPS", 200), t, runner::default_jobs())
    );
}

// ---------------------------------------------------------------------
// NUMA sweeps: 44/88/176 cores on 1–4 sockets
// ---------------------------------------------------------------------

/// The paper machine's widths: one socket of 44 hardware threads, the
/// dual-socket 88 it measures on, and a quad-socket 176 projection.
pub const NUMA_GRID: &[(usize, usize)] = &[(1, 44), (2, 88), (4, 176)];

/// Parses `spec` as a `sockets x threads` grid (e.g. `"1x44,2x88"`),
/// falling back to [`NUMA_GRID`] when empty or unparseable.
pub fn numa_grid(spec: &str) -> Vec<(usize, usize)> {
    let parsed: Vec<(usize, usize)> = spec
        .split(',')
        .filter_map(|p| {
            let (s, t) = p.trim().split_once('x')?;
            Some((s.trim().parse().ok()?, t.trim().parse().ok()?))
        })
        .collect();
    if parsed.is_empty() {
        NUMA_GRID.to_vec()
    } else {
        parsed
    }
}

/// The NUMA figure as TSV — two tables over a `(sockets, threads)` grid:
///
/// * **sweep A** re-runs the Figure-1 crossover (raw FAA vs TxCAS on one
///   contended word) on multi-socket machines with hash-interleaved
///   directory homes, reporting each run's cross-socket hop count;
/// * **sweep B** runs the [`NumaShape`] scenarios, SBQ-HTM vs the
///   SBQ-CAS (FAA/CAS) baseline, with the hop split of the SBQ-HTM run.
///
/// One job per grid point per table, joined in submission order.
pub fn fig_numa_text(ops: u64, grid: &[(usize, usize)], jobs: usize) -> String {
    let mut s = String::from(
        "# NUMA sweep A: TxCAS vs FAA across sockets — latency[ns/op], cross-socket hops\n",
    );
    s.push_str(&header_row(&[
        "sockets",
        "threads",
        "FAA",
        "TxCAS",
        "faa_cross",
        "tx_cross",
    ]));
    let tasks: Vec<_> = grid
        .iter()
        .map(|&(sockets, threads)| {
            move || {
                let cfg = || {
                    let mut c =
                        MachineConfig::multi_socket(sockets, threads.div_ceil(sockets.max(1)));
                    c.cores = threads;
                    c
                };
                let (faa, _, (_, faa_cross)) =
                    fig1_point_on(cfg(), ops, false, TxCasParams::default());
                let (tx, _, (_, tx_cross)) =
                    fig1_point_on(cfg(), ops, true, TxCasParams::default());
                format!("{sockets}\t{threads}\t{faa:.1}\t{tx:.1}\t{faa_cross}\t{tx_cross}\n")
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s.push('\n');
    s.push_str(
        "# NUMA sweep B: scenarios — SBQ-HTM vs SBQ-CAS duration[ns/op], hop split (SBQ-HTM run)\n",
    );
    s.push_str(&header_row(&[
        "shape",
        "sockets",
        "threads",
        "sbq_htm",
        "sbq_cas",
        "intra",
        "cross",
        "dir_cross",
    ]));
    let tasks: Vec<_> = NumaShape::ALL
        .into_iter()
        .flat_map(|shape| {
            grid.iter()
                .map(move |&(sockets, threads)| (shape, sockets, threads))
        })
        .map(|(shape, sockets, threads)| {
            move || {
                let w = numa_workload(shape, sockets, threads, ops);
                let htm = run_workload(QueueKind::SbqHtm, &w);
                let cas = run_workload(QueueKind::SbqCas, &w);
                format!(
                    "{}\t{sockets}\t{}\t{:.1}\t{:.1}\t{}\t{}\t{}\n",
                    shape.name(),
                    htm.threads,
                    htm.duration_ns_per_op,
                    cas.duration_ns_per_op,
                    htm.hops_intra,
                    htm.hops_cross,
                    htm.dir_hops_cross,
                )
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// The NUMA figure with environment knobs: `SBQ_OPS` scales per-thread
/// work, `SBQ_NUMA_GRID` overrides the `sockets x threads` grid (e.g.
/// `SBQ_NUMA_GRID=2x88` for one dual-socket point).
pub fn fig_numa() {
    let grid = numa_grid(&std::env::var("SBQ_NUMA_GRID").unwrap_or_default());
    print!(
        "{}",
        fig_numa_text(env_u64("SBQ_OPS", 120), &grid, runner::default_jobs())
    );
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// §4.1 ablation as TSV: one job per delay value.
pub fn ablate_delay_text(ops: u64, t: usize, jobs: usize) -> String {
    let mut s = format!(
        "# Ablation: TxCAS intra-transaction delay at {t} threads (paper optimum ~600 cycles = 270ns)\n"
    );
    s.push_str(&header_row(&[
        "delay_cycles",
        "txcas_latency_ns",
        "retries_per_op",
    ]));
    let tasks: Vec<_> = [0u64, 75, 150, 300, 600, 1200, 2400]
        .into_iter()
        .map(|delay| {
            move || {
                let p = TxCasParams {
                    intra_delay: delay,
                    ..Default::default()
                };
                let (ns, st) = fig1_point(t, ops, true, p);
                let total = st.success + st.fail_self_abort + st.fail_post_abort + st.fallbacks;
                format!(
                    "{delay}\t{ns:.1}\t{:.3}\n",
                    st.retries as f64 / total.max(1) as f64
                )
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// §4.1: sweep the intra-transaction delay at high contention.
pub fn ablate_delay() {
    let t = *thread_counts(&[22]).last().unwrap_or(&22);
    print!(
        "{}",
        ablate_delay_text(env_u64("SBQ_OPS", 200), t, runner::default_jobs())
    );
}

/// §3.4.1 ablation as TSV: one job per fix variant.
pub fn ablate_fix_text(ops: u64, jobs: usize) -> String {
    let mut s =
        String::from("# Ablation: cross-socket TxCAS — tripped writers and the microarch fix\n");
    s.push_str(&header_row(&[
        "fix",
        "latency_ns",
        "tripped_writers",
        "retries_per_op",
    ]));
    let tasks: Vec<_> = [false, true]
        .into_iter()
        .map(|fix| {
            move || {
                let threads = 8;
                let mut cfg = MachineConfig::dual_socket(threads / 2);
                cfg.check_invariants = false;
                cfg.microarch_fix = fix;
                let shared = Arc::new(AtomicU64::new(0));
                let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
                let stats: Arc<Mutex<TxCasStats>> = Arc::new(Mutex::new(TxCasStats::default()));
                let programs: Vec<Program> = (0..threads)
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        let lat = Arc::clone(&lat);
                        let stats = Arc::clone(&stats);
                        Box::new(move |ctx: &mut SimCtx| {
                            let a = shared.load(SeqCst);
                            ctx.barrier();
                            let mut st = TxCasStats::default();
                            let t0 = ctx.now();
                            for _ in 0..ops {
                                let old = ctx.read(a);
                                txn_cas(ctx, &TxCasParams::default(), a, old, old + 1, &mut st);
                            }
                            lat.lock().unwrap().push(ctx.now() - t0);
                            let mut s = stats.lock().unwrap();
                            s.retries += st.retries;
                            s.success += st.success;
                        }) as Program
                    })
                    .collect();
                let s2 = Arc::clone(&shared);
                let report = Machine::new(cfg).run(
                    Box::new(move |ctx| {
                        let a = ctx.alloc(1);
                        ctx.write(a, 0);
                        s2.store(a, SeqCst);
                    }),
                    programs,
                );
                let total: u64 = lat.lock().unwrap().iter().sum();
                let st = stats.lock().unwrap();
                format!(
                    "{fix}\t{:.1}\t{}\t{:.3}\n",
                    cycles_to_ns(total) / (ops * threads as u64) as f64,
                    report.stats.tripped_writers,
                    st.retries as f64 / (ops * threads as u64) as f64,
                )
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// §3.4.1: tripped writers across sockets, with and without the fix.
pub fn ablate_fix() {
    print!(
        "{}",
        ablate_fix_text(env_u64("SBQ_OPS", 150), runner::default_jobs())
    );
}

/// §5.3.4 ablation as TSV: one job per capacity / thread-count point.
pub fn ablate_basket_text(ops: u64, t: usize, jobs: usize) -> String {
    // Axis 1: oversizing the basket at fixed threads. The algorithm gives
    // every enqueuer a private cell, so capacity < threads is structurally
    // unsupported — the sweep starts at the thread count.
    let mut s =
        format!("# Ablation: basket capacity vs SBQ-HTM enqueue latency at {t} threads (B >= T)\n");
    s.push_str(&header_row(&["capacity", "latency_ns", "throughput_mops"]));
    let tasks: Vec<_> = [t, t * 2, 44.max(t), 88.max(t), 176.max(t)]
        .into_iter()
        .map(|cap| {
            move || {
                let mut w = paper_workload(WorkloadKind::ProducerOnly, t, ops);
                w.qp.basket_capacity = cap;
                w.qp.enqueuers = t;
                let m = run_workload(QueueKind::SbqHtm, &w);
                format!("{cap}\t{:.1}\t{:.3}\n", m.latency_ns, m.throughput_mops)
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    // Axis 2: the §5.3.4 claim — with B fixed at the machine width (44),
    // amortized basket initialization is O(B/T), so enqueue latency falls
    // as threads grow.
    s.push_str("# Ablation: fixed B=44, latency vs enqueuer count (O(B/T) amortization)\n");
    s.push_str(&header_row(&["threads", "latency_ns"]));
    let tasks: Vec<_> = [2usize, 4, 8, 16, 32, 44]
        .into_iter()
        .map(|threads| {
            move || {
                let mut w = paper_workload(WorkloadKind::ProducerOnly, threads, ops);
                w.qp.basket_capacity = 44;
                w.qp.enqueuers = threads;
                let m = run_workload(QueueKind::SbqHtm, &w);
                format!("{threads}\t{:.1}\n", m.latency_ns)
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// §5.3.4: basket capacity B vs enqueue latency (O(B/T) initialization).
pub fn ablate_basket() {
    let t = *thread_counts(&[16]).last().unwrap_or(&16);
    print!(
        "{}",
        ablate_basket_text(env_u64("SBQ_OPS", 200), t, runner::default_jobs())
    );
}

/// §8 ablation as TSV: one job per thread count.
pub fn ablate_deq_text(ops: u64, threads: &[usize], jobs: usize) -> String {
    use crate::workload::run_generic;
    use harness::{SbqHtmQ, SbqStripedQ};
    let mut s = String::from(
        "# Ablation (§8 future work): dequeue-side basket design, consumer-only workload\n",
    );
    s.push_str(&header_row(&[
        "threads",
        "SBQ-basket[ns/op]",
        "Striped-basket[ns/op]",
    ]));
    let tasks: Vec<_> = threads
        .iter()
        .map(|&t| {
            move || {
                let w = paper_workload(WorkloadKind::ConsumerOnly, t, ops);
                let a = run_generic::<SbqHtmQ<SimCtx>>(&w);
                let b = run_generic::<SbqStripedQ<SimCtx>>(&w);
                format!("{t}\t{:.1}\t{:.1}\n", a.latency_ns, b.latency_ns)
            }
        })
        .collect();
    s.push_str(&sweep_rows(jobs, tasks));
    s
}

/// §8 future work: scalable-dequeue basket. Compares the stock SBQ basket
/// (FAA-ticketed extraction) against the experimental striped basket on
/// the consumer-only workload, where the FAA is the bottleneck (§5.3.4).
pub fn ablate_deq() {
    print!(
        "{}",
        ablate_deq_text(
            env_u64("SBQ_OPS", 150),
            &thread_counts(&[2, 8, 16, 32, 44]),
            runner::default_jobs()
        )
    );
}

/// Runs every figure in sequence (the `cargo bench` entry point).
pub fn all() {
    fig1();
    println!();
    fig2();
    fig3();
    fig5();
    println!();
    fig6();
    println!();
    fig7();
    println!();
    speedups();
    println!();
    ablate_delay();
    println!();
    ablate_fix();
    println!();
    ablate_basket();
    println!();
    ablate_deq();
    println!();
    fig_numa();
}
