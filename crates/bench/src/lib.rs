//! # bench — the harness that regenerates the paper's evaluation
//!
//! One module per concern:
//!
//! * [`workload`] — the paper's three workloads (§6.1): producer-only,
//!   consumer-only (pre-filled), and mixed with producers and consumers on
//!   separate sockets — runnable on either `harness` backend (queue
//!   adapters and execution live in the `harness` crate);
//! * [`fig`] — drivers that print each figure's data series as TSV
//!   (figure id → DESIGN.md §4 maps it to the paper).
//!
//! The binary `figures` exposes the drivers as subcommands; the
//! `paper_figures` bench target runs all of them at reduced scale so
//! `cargo bench` reproduces the full evaluation. Scale knobs:
//! `SBQ_OPS` (operations per thread) and `SBQ_THREADS`
//! (comma-separated thread counts).

pub mod fig;
pub mod wallbench;
pub mod workload;

/// Deprecated location: the swim-lane renderer moved to the `obs` crate
/// with the rest of the presentation/export layer. Re-exported here for
/// one release so `bench::trace_render::render_lanes` keeps compiling.
pub use obs::trace_render;

/// Reads a scale knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Thread counts to sweep, from `SBQ_THREADS` (comma-separated) or the
/// default list.
pub fn thread_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("SBQ_THREADS") {
        Ok(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}
