//! A minimal JSON parser — just enough to validate exported traces and
//! bench documents in tests and CI. In-tree because the workspace builds
//! with no external registry (no serde).
//!
//! Parses the full JSON grammar into a small [`Value`] tree. Object keys
//! keep their document order (`Vec` of pairs, duplicates preserved);
//! numbers are `f64`. This is a *reader* for validation, not a
//! serializer — exporters format their own output so byte-level
//! determinism stays under their control.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first occurrence), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Obj(fields)),
                c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Arr(items)),
                c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(s),
                b'\\' => match self.bump()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let mut cp = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            cp = cp * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad \\u digit {:?}", d as char))?;
                        }
                        // Surrogate pairs are not produced by our
                        // exporters; map lone surrogates to U+FFFD.
                        s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape \\{:?}", c as char)),
                },
                c if c < 0x20 => return Err("raw control character in string".to_string()),
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    s.push_str(
                        std::str::from_utf8(chunk).map_err(|e| format!("invalid UTF-8: {e}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x→y", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x→y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("[1 2]").is_err());
    }

    #[test]
    fn roundtrips_exporter_shaped_output() {
        let doc = r#"{"traceEvents":[{"name":"enqueue","ph":"X","ts":120,"dur":35,"pid":0,"tid":1,"args":{"v":"0x10000000001"}}],"displayTimeUnit":"ns"}"#;
        let v = parse(doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("enqueue"));
        assert_eq!(evs[0].get("ts").unwrap().as_num(), Some(120.0));
    }
}
