//! Typed observability events.
//!
//! An event is either a **span** (an operation with an execution
//! interval) or an **instant** (a point occurrence). Both carry
//! timestamps in *cycles* — simulated cycles on the coherence backend,
//! wall-clock cycles at the nominal 2.2 GHz on native — and a 64-bit
//! payload word whose meaning depends on the kind (enqueued value, abort
//! status, ...). Kinds are closed enums rather than free-form strings so
//! recording is a couple of word writes and rendering is a table lookup:
//! no formatting, hashing, or allocation happens on the hot path.

/// What a recorded span was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A queue enqueue; payload = enqueued value.
    Enqueue,
    /// A queue dequeue that returned a value; payload = dequeued value.
    Dequeue,
    /// A queue dequeue that found the queue empty; payload = 0.
    DequeueEmpty,
    /// A post-barrier drain dequeue; payload = dequeued value.
    Drain,
    /// A generic measured operation (workload phases, setup); payload
    /// free.
    Op,
    /// A load-generator worker servicing one request (dequeue-to-forward
    /// interval); payload = request id.
    Service,
}

impl SpanKind {
    /// Stable lowercase name — the Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Enqueue => "enqueue",
            SpanKind::Dequeue => "dequeue",
            SpanKind::DequeueEmpty => "dequeue-empty",
            SpanKind::Drain => "drain-dequeue",
            SpanKind::Op => "op",
            SpanKind::Service => "service",
        }
    }
}

/// A point occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// A CAS (or CAS-strategy) attempt succeeded; payload = address.
    CasOk,
    /// A CAS attempt failed; payload = address.
    CasFail,
    /// An HTM transaction committed; payload = 0.
    TxCommit,
    /// An HTM transaction aborted; payload = RTM-style status word.
    TxAbort,
    /// The thread passed a phase barrier (scheduler rendezvous/yield
    /// point); payload = 0.
    Barrier,
    /// The scheduler yielded/perturbed this thread; payload free.
    SchedYield,
    /// An experiment-runner worker claimed a job from the pool; payload =
    /// the job's submission index.
    JobClaim,
    /// A load-generator request's *scheduled* open-loop arrival instant
    /// (which may precede the actual ingress enqueue when the source has
    /// fallen behind); payload = request id.
    Arrival,
}

impl InstantKind {
    /// Stable lowercase name — the Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::CasOk => "cas-ok",
            InstantKind::CasFail => "cas-fail",
            InstantKind::TxCommit => "tx-commit",
            InstantKind::TxAbort => "tx-abort",
            InstantKind::Barrier => "barrier",
            InstantKind::SchedYield => "sched-yield",
            InstantKind::JobClaim => "job-claim",
            InstantKind::Arrival => "arrival",
        }
    }
}

/// One recorded event. Two machine words of payload plus the tag: small
/// enough that a ring of tens of thousands costs a few hundred KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// An operation spanning `[start, end]` cycles.
    Span {
        kind: SpanKind,
        start: u64,
        end: u64,
        /// Kind-dependent payload (enqueued/dequeued value, ...).
        arg: u64,
    },
    /// A point occurrence at `ts` cycles.
    Instant {
        kind: InstantKind,
        ts: u64,
        /// Kind-dependent payload (abort status, address, ...).
        arg: u64,
    },
}

impl ObsEvent {
    /// The event's primary timestamp (span start / instant time), used
    /// for canonical ordering.
    pub fn ts(&self) -> u64 {
        match *self {
            ObsEvent::Span { start, .. } => start,
            ObsEvent::Instant { ts, .. } => ts,
        }
    }

    /// The event's name as it appears in exported traces.
    pub fn name(&self) -> &'static str {
        match *self {
            ObsEvent::Span { kind, .. } => kind.name(),
            ObsEvent::Instant { kind, .. } => kind.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let spans = [
            SpanKind::Enqueue,
            SpanKind::Dequeue,
            SpanKind::DequeueEmpty,
            SpanKind::Drain,
            SpanKind::Op,
            SpanKind::Service,
        ];
        let mut seen = std::collections::HashSet::new();
        for s in spans {
            assert!(seen.insert(s.name()));
        }
        let instants = [
            InstantKind::CasOk,
            InstantKind::CasFail,
            InstantKind::TxCommit,
            InstantKind::TxAbort,
            InstantKind::Barrier,
            InstantKind::SchedYield,
            InstantKind::JobClaim,
            InstantKind::Arrival,
        ];
        for i in instants {
            assert!(seen.insert(i.name()));
        }
    }

    #[test]
    fn ts_reads_the_right_field() {
        let s = ObsEvent::Span {
            kind: SpanKind::Enqueue,
            start: 10,
            end: 20,
            arg: 7,
        };
        let i = ObsEvent::Instant {
            kind: InstantKind::Barrier,
            ts: 33,
            arg: 0,
        };
        assert_eq!(s.ts(), 10);
        assert_eq!(i.ts(), 33);
        assert_eq!(s.name(), "enqueue");
        assert_eq!(i.name(), "barrier");
    }
}
