//! # obs — unified observability for both execution backends
//!
//! The paper's whole argument is read off timelines (Figures 2a/2b/3 are
//! coherence message schedules; Figures 5–7 are latency curves), and a
//! production queue needs the same visibility: per-op latency
//! percentiles, structured spans, and machine-readable traces. This
//! crate is that layer, shared by the coherence simulator and the
//! native-atomics backend:
//!
//! * [`event`] — typed spans and instants ([`SpanKind`], [`InstantKind`]),
//!   timestamped in cycles: simulated cycles on `SimBackend` (fully
//!   deterministic), wall-clock cycles at the nominal 2.2 GHz on
//!   `NativeBackend`.
//! * [`ring`] — per-thread bounded event buffers ([`ThreadObs`]; lock-free
//!   recording, one mutex submit per thread per run) collected by an
//!   [`ObsSink`].
//! * [`hist`] — in-tree log-bucketed latency [`Histogram`]s with
//!   p50/p90/p99/p999/max and *exact-count* merge.
//! * [`chrome`] — Chrome trace-event JSON export (one track per
//!   core/thread plus a directory track bridging
//!   [`coherence::TraceEvent`]), a TSV sibling, and a schema
//!   [`chrome::validate`] built on the in-tree [`json`] parser.
//! * [`trace_render`] — the ASCII swim-lane renderer for the paper's
//!   Figure 2/3 diagrams (moved here from `bench`).
//!
//! ## Determinism contract
//!
//! Observability is **off by default** and near-zero-cost when disabled
//! (an `Option` check per already-instrumented call site); determinism
//! goldens and bench numbers are computed with it off. When enabled it
//! never feeds back into execution: recording reuses timestamps the
//! caller already read, so simulated timings — and with them the recorded
//! events — are bit-identical with observability on or off. On the
//! simulator backend the exported trace for a fixed seed is therefore
//! **byte-identical across runs**, making traces themselves a
//! determinism regression surface (see `tests/obs_trace.rs` and the CI
//! `trace-smoke` job).

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
pub mod ring;
pub mod trace_render;

pub use chrome::{export, export_tsv, validate, TraceMeta, TraceSummary};
pub use event::{InstantKind, ObsEvent, SpanKind};
pub use hist::Histogram;
pub use ring::{ObsSink, ThreadLog, ThreadObs, DEFAULT_RING_CAPACITY};
