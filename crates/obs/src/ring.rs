//! Per-thread event recording and the run-level sink.
//!
//! The hot path is a [`ThreadObs`] owned exclusively by one thread: a
//! bounded, pre-allocated event buffer plus per-kind latency histograms.
//! Recording is a bounds check and a couple of word writes — no locks,
//! no allocation, no clock reads (callers pass timestamps they already
//! have). When the buffer is full, further events are counted in
//! `dropped` and discarded — deterministically, so a truncated trace of
//! a fixed simulation is still byte-stable.
//!
//! At thread exit the buffer is handed to the shared [`ObsSink`] (one
//! mutex acquisition per thread per run, off the measured path). The
//! sink orders logs by thread id, so the collected result is independent
//! of the incidental order threads finished in.

use crate::event::{InstantKind, ObsEvent, SpanKind};
use crate::hist::Histogram;
use std::sync::Mutex;

/// Default per-thread event capacity: enough for every suite workload at
/// one span per operation, ~1.5 MiB per thread at 32 bytes an event.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One thread's completed recording.
#[derive(Debug)]
pub struct ThreadLog {
    /// Recording thread id (dense, matches the backend's thread ids).
    pub tid: usize,
    /// Events in recording order (monotone `ts` per thread).
    pub events: Vec<ObsEvent>,
    /// Events discarded after the buffer filled.
    pub dropped: u64,
    /// Span latencies (end - start cycles) for enqueue-like spans.
    pub enq_hist: Histogram,
    /// Span latencies for dequeue-like spans (including empties/drains).
    pub deq_hist: Histogram,
}

/// The per-thread recorder. Create one per participating thread with
/// [`ObsSink::thread`], record along the thread's execution, and call
/// [`ObsSink::submit`] when done.
#[derive(Debug)]
pub struct ThreadObs {
    tid: usize,
    cap: usize,
    events: Vec<ObsEvent>,
    dropped: u64,
    enq_hist: Histogram,
    deq_hist: Histogram,
}

impl ThreadObs {
    fn new(tid: usize, cap: usize) -> ThreadObs {
        ThreadObs {
            tid,
            cap,
            events: Vec::with_capacity(cap.min(DEFAULT_RING_CAPACITY)),
            dropped: 0,
            enq_hist: Histogram::new(),
            deq_hist: Histogram::new(),
        }
    }

    #[inline]
    fn push(&mut self, e: ObsEvent) {
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// Records a completed span `[start, end]` and folds its latency
    /// into the matching histogram.
    #[inline]
    pub fn span(&mut self, kind: SpanKind, start: u64, end: u64, arg: u64) {
        let lat = end.saturating_sub(start);
        match kind {
            SpanKind::Enqueue => self.enq_hist.record(lat),
            SpanKind::Dequeue | SpanKind::DequeueEmpty | SpanKind::Drain => {
                self.deq_hist.record(lat)
            }
            SpanKind::Op | SpanKind::Service => {}
        }
        self.push(ObsEvent::Span {
            kind,
            start,
            end,
            arg,
        });
    }

    /// Records a point event at `ts`.
    #[inline]
    pub fn instant(&mut self, kind: InstantKind, ts: u64, arg: u64) {
        self.push(ObsEvent::Instant { kind, ts, arg });
    }

    /// Events recorded so far (excluding dropped).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The run-level collector threads submit their logs to. Cheap to create
/// per run; share via `Arc` with every participating thread's closure.
#[derive(Debug)]
pub struct ObsSink {
    cap: usize,
    logs: Mutex<Vec<ThreadLog>>,
}

impl Default for ObsSink {
    fn default() -> Self {
        ObsSink::new(DEFAULT_RING_CAPACITY)
    }
}

impl ObsSink {
    /// A sink whose per-thread buffers hold at most `cap` events.
    pub fn new(cap: usize) -> ObsSink {
        ObsSink {
            cap,
            logs: Mutex::new(Vec::new()),
        }
    }

    /// Creates the recorder for thread `tid`.
    pub fn thread(&self, tid: usize) -> ThreadObs {
        ThreadObs::new(tid, self.cap)
    }

    /// Accepts a finished thread recording (cold path; one lock per
    /// thread per run). Collection paths recover from a poisoned lock
    /// (another recording thread panicked): the logs gathered so far are
    /// still wanted, and a second panic here would mask the first.
    pub fn submit(&self, t: ThreadObs) {
        self.logs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ThreadLog {
                tid: t.tid,
                events: t.events,
                dropped: t.dropped,
                enq_hist: t.enq_hist,
                deq_hist: t.deq_hist,
            });
    }

    /// Drains the collected logs, sorted by thread id — the canonical
    /// order exporters consume, independent of submission order.
    pub fn take_logs(&self) -> Vec<ThreadLog> {
        let mut logs = std::mem::take(&mut *self.logs.lock().unwrap_or_else(|e| e.into_inner()));
        logs.sort_by_key(|l| l.tid);
        logs
    }

    /// Merged enqueue-latency histogram over all submitted threads.
    pub fn merged_enq_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for l in self.logs.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            h.merge(&l.enq_hist);
        }
        h
    }

    /// Merged dequeue-latency histogram over all submitted threads.
    pub fn merged_deq_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for l in self.logs.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            h.merge(&l.deq_hist);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_and_instants_in_order() {
        let sink = ObsSink::new(16);
        let mut t = sink.thread(3);
        t.span(SpanKind::Enqueue, 10, 25, 0x42);
        t.instant(InstantKind::Barrier, 30, 0);
        t.span(SpanKind::Dequeue, 31, 40, 0x42);
        assert_eq!(t.len(), 3);
        sink.submit(t);
        let logs = sink.take_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].tid, 3);
        assert_eq!(logs[0].events[0].name(), "enqueue");
        assert_eq!(logs[0].events[1].name(), "barrier");
        assert_eq!(logs[0].dropped, 0);
        assert_eq!(logs[0].enq_hist.count(), 1);
        assert_eq!(logs[0].deq_hist.count(), 1);
        assert_eq!(logs[0].enq_hist.max(), 15);
    }

    #[test]
    fn overflow_drops_deterministically() {
        let sink = ObsSink::new(2);
        let mut t = sink.thread(0);
        for i in 0..5 {
            t.instant(InstantKind::CasOk, i, 0);
        }
        assert_eq!(t.len(), 2);
        sink.submit(t);
        let logs = sink.take_logs();
        assert_eq!(logs[0].events.len(), 2);
        assert_eq!(logs[0].dropped, 3);
        // The *first* events are kept: a truncated deterministic run is
        // still a prefix, hence byte-stable.
        assert_eq!(logs[0].events[0].ts(), 0);
        assert_eq!(logs[0].events[1].ts(), 1);
    }

    #[test]
    fn take_logs_sorts_by_tid() {
        let sink = ObsSink::default();
        for tid in [2usize, 0, 1] {
            let mut t = sink.thread(tid);
            t.instant(InstantKind::Barrier, tid as u64, 0);
            sink.submit(t);
        }
        let logs = sink.take_logs();
        let tids: Vec<usize> = logs.iter().map(|l| l.tid).collect();
        assert_eq!(tids, vec![0, 1, 2]);
    }

    #[test]
    fn merged_histograms_sum_counts() {
        let sink = ObsSink::default();
        for tid in 0..3usize {
            let mut t = sink.thread(tid);
            t.span(SpanKind::Enqueue, 0, 10 * (tid as u64 + 1), 0);
            sink.submit(t);
        }
        assert_eq!(sink.merged_enq_hist().count(), 3);
        assert_eq!(sink.merged_deq_hist().count(), 0);
        assert_eq!(sink.merged_enq_hist().max(), 30);
    }
}
