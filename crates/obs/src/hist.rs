//! Log-bucketed latency histograms (in-tree; the workspace builds with
//! no external registry).
//!
//! The layout is HDR-style: values below [`SUB`] are recorded exactly;
//! above that, each power-of-two octave is split into [`SUB`] equal
//! sub-buckets, so the relative quantization error is bounded by
//! `1/SUB` (3.2%) across the full `u64` range. The whole table is
//! `60 × 32` buckets — 15 KiB — so a histogram per thread per span kind
//! is cheap.
//!
//! Recording is a branch, a `leading_zeros`, and one add; merging adds
//! counts bucket-by-bucket and is therefore **exact**: merging per-thread
//! histograms in any grouping or order yields bit-identical state to
//! recording every sample into one histogram (the merge-associativity
//! property test pins this).

/// Sub-buckets per octave; also the exact-value threshold.
pub const SUB: usize = 32;
const SUB_BITS: u64 = 5;
/// Total buckets: indices `0..SUB` exact, then one `SUB`-wide group per
/// octave `2^5 ..= 2^63`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a value to its bucket index. Monotone and total on `u64`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as u64; // v in [2^e, 2^(e+1)), e >= 5
        let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
        (e as usize - SUB_BITS as usize + 1) * SUB + sub
    }
}

/// The lower bound of bucket `i` — the value [`Histogram::quantile`]
/// reports, so estimates never exceed the exact quantile.
#[inline]
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let group = (i / SUB) as u64; // e - SUB_BITS + 1
        let sub = (i % SUB) as u64;
        let e = group + SUB_BITS - 1;
        (SUB as u64 + sub) << (e - SUB_BITS)
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Exact: bucket counts add, so any merge
    /// tree over the same samples produces identical state.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample — exact, not bucketed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// holding the rank-`⌈q·count⌉` sample: at most the exact quantile,
    /// and within a `1/SUB` relative error of it. Returns 0 on an empty
    /// histogram; `q = 1.0` reports the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).max(self.min);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Renders the non-empty buckets as TSV (`bucket_lo  count`), plus a
    /// summary header line — the machine-readable export.
    pub fn to_tsv(&self) -> String {
        let mut s = format!(
            "# count={} sum={} min={} p50={} p90={} p99={} p999={} max={}\n",
            self.count,
            self.sum,
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max
        );
        s.push_str("bucket_lo\tcount\n");
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                s.push_str(&format!("{}\t{}\n", bucket_lower_bound(i), c));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous_at_seams() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i - last <= 1, "index skipped at {v}");
            last = i;
        }
        // Lower bound inverts the index at every bucket start.
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lb not in bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let exact = ((q * SUB as f64).ceil() as u64).max(1) - 1;
            assert_eq!(h.quantile(q), exact);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB as u64 - 1);
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 40);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        assert!(h.min() <= h.p50());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_recording() {
        let vals: Vec<u64> = (0..500).map(|i| i * i % 10_007).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        assert_eq!(a.to_tsv(), whole.to_tsv());
    }

    #[test]
    fn tsv_contains_summary_and_buckets() {
        let mut h = Histogram::new();
        h.record_n(100, 3);
        let tsv = h.to_tsv();
        assert!(tsv.starts_with("# count=3"));
        assert!(tsv.contains("bucket_lo\tcount"));
        // 100 lies in [96, 100): octave 6, width 2 — lower bound 100.
        assert!(tsv.contains("100\t3"), "{tsv}");
    }
}
