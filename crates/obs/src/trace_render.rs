//! ASCII swim-lane rendering of coherence traces — turns the simulator's
//! message records into diagrams shaped like the paper's Figures 2a/2b/3,
//! one column per network node, time flowing downward.
//!
//! ```text
//! time    Dir          C0           C1           C2
//! 120  ···GetM←─────  ●CAS
//! 145     Inv→C1,C2
//! 170                              ✕abort       ✕abort
//! ```
//!
//! Used by the `figures` binary (`fig2 --render`, `fig3 --render`) and
//! the `coherence_trace` example; the Chrome trace-event export
//! ([`crate::chrome`]) and TSV are the machine-readable forms.
//! (Moved here from `bench`, which re-exports it for one release, so
//! figure rendering and the exporters live in one crate.)

use coherence::TraceEvent;
use std::collections::BTreeMap;

/// One rendered row: a timestamp plus a short annotation per lane.
#[derive(Debug, Default, Clone)]
struct Row {
    cells: BTreeMap<String, Vec<String>>,
}

/// Renders a trace as an ASCII swim-lane table. `lanes` fixes the column
/// order (e.g. `["Dir", "C0", "C1", "C2"]`); events involving other nodes
/// are dropped. Returns the rendered string.
pub fn render_lanes(trace: &[TraceEvent], lanes: &[&str], max_rows: usize) -> String {
    let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
    let mut note = |t: u64, lane: &str, text: String| {
        rows.entry(t)
            .or_default()
            .cells
            .entry(lane.to_string())
            .or_default()
            .push(text);
    };
    for e in trace {
        match e {
            TraceEvent::Msg {
                sent,
                recv,
                src,
                dst,
                kind,
                ..
            } => {
                if lanes.contains(&src.as_str()) {
                    note(*sent, src, format!("{kind}→{dst}"));
                }
                if lanes.contains(&dst.as_str()) {
                    note(*recv, dst, format!("{kind}←{src}"));
                }
            }
            TraceEvent::Tx {
                time,
                core,
                what,
                detail,
            } => {
                let lane = format!("C{core}");
                if lanes.contains(&lane.as_str()) {
                    let mark = match *what {
                        "commit" => "✓commit".to_string(),
                        "abort" => format!("✕abort({detail:#x})"),
                        other => other.to_string(),
                    };
                    note(*time, &lane, mark);
                }
            }
            TraceEvent::Op { .. } => {}
            TraceEvent::Comp {
                time,
                name,
                what,
                core,
                ..
            } => {
                // Component actions land in the lane of the core they
                // act on (the component itself has no column).
                let lane = format!("C{core}");
                if lanes.contains(&lane.as_str()) {
                    note(*time, &lane, format!("⚡{name}:{what}"));
                }
            }
        }
    }

    let width = 26usize;
    let mut out = String::new();
    out.push_str(&format!("{:>8} ", "time"));
    for l in lanes {
        out.push_str(&format!("{l:<width$}"));
    }
    out.push('\n');
    for (t, row) in rows.iter().take(max_rows) {
        out.push_str(&format!("{t:>8} "));
        for l in lanes {
            let cell = row.cells.get(*l).map(|v| v.join(", ")).unwrap_or_default();
            let mut cell = cell;
            if cell.chars().count() >= width {
                cell = cell.chars().take(width - 2).collect::<String>() + "…";
            }
            out.push_str(&format!("{cell:<width$}"));
        }
        // Trim trailing spaces for tidy output.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    if rows.len() > max_rows {
        out.push_str(&format!("... ({} more rows)\n", rows.len() - max_rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(sent: u64, recv: u64, src: &str, dst: &str, kind: &'static str) -> TraceEvent {
        TraceEvent::Msg {
            sent,
            recv,
            src: src.to_string(),
            dst: dst.to_string(),
            kind,
            line: 0x10,
        }
    }

    #[test]
    fn renders_sends_and_receives_in_lanes() {
        let trace = vec![
            msg(10, 35, "C0", "Dir", "GetM"),
            msg(35, 60, "Dir", "C1", "Inv"),
            TraceEvent::Tx {
                time: 60,
                core: 1,
                what: "abort",
                detail: 0x6,
            },
        ];
        let s = render_lanes(&trace, &["Dir", "C0", "C1"], 100);
        assert!(s.contains("GetM→Dir"), "send annotation missing:\n{s}");
        assert!(s.contains("GetM←C0"), "receive annotation missing:\n{s}");
        assert!(s.contains("Inv←Dir"), "inv delivery missing:\n{s}");
        assert!(s.contains("✕abort(0x6)"), "abort mark missing:\n{s}");
        // Time column ordered.
        let t10 = s.find("      10").unwrap();
        let t60 = s.find("      60").unwrap();
        assert!(t10 < t60);
    }

    #[test]
    fn truncates_long_traces() {
        let trace: Vec<TraceEvent> = (0..50)
            .map(|i| msg(i, i + 5, "C0", "Dir", "GetS"))
            .collect();
        let s = render_lanes(&trace, &["Dir", "C0"], 10);
        assert!(s.contains("more rows"));
    }

    #[test]
    fn ignores_nodes_outside_lanes() {
        let trace = vec![msg(1, 2, "C7", "C9", "Data")];
        let s = render_lanes(&trace, &["Dir", "C0"], 10);
        assert!(!s.contains("Data"), "out-of-lane event leaked:\n{s}");
    }

    #[test]
    fn real_fig2a_trace_renders() {
        use absmem::ThreadCtx;
        use coherence::{Machine, MachineConfig, Program, SimCtx};
        use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
        use std::sync::Arc;
        let mut cfg = MachineConfig::single_socket(3);
        cfg.trace = true;
        let shared = Arc::new(AtomicU64::new(0));
        let programs: Vec<Program> = (0..3)
            .map(|i| {
                let shared = Arc::clone(&shared);
                Box::new(move |ctx: &mut SimCtx| {
                    let a = shared.load(SeqCst);
                    let old = ctx.read(a);
                    ctx.barrier();
                    ctx.cas(a, old, i as u64 + 1);
                }) as Program
            })
            .collect();
        let s2 = Arc::clone(&shared);
        let report = Machine::new(cfg).run(
            Box::new(move |ctx| {
                let a = ctx.alloc(1);
                ctx.write(a, 0);
                s2.store(a, SeqCst);
            }),
            programs,
        );
        let s = render_lanes(&report.trace, &["Dir", "C0", "C1", "C2"], 200);
        assert!(s.contains("GetM"), "expected GetM traffic:\n{s}");
        assert!(
            s.contains("Fwd-GetM"),
            "expected the serialization chain:\n{s}"
        );
    }
}
