//! Chrome trace-event JSON export (and a TSV sibling) — the
//! machine-readable form of a run, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! One track per core/thread carries the per-op spans recorded through
//! [`crate::ObsSink`]; when a simulator message trace is supplied, a
//! **Dir** track carries the directory side of every coherence message
//! and the core tracks gain the per-core message endpoints, HTM
//! transaction lifecycle marks (with RTM-style abort status words), and
//! memory-op instants — bridging [`coherence::TraceEvent`] into the same
//! timeline.
//!
//! ## Determinism contract
//!
//! The exporter emits **integers only** (timestamps are cycles; Chrome's
//! nominal unit is microseconds, which merely rescales the axis), object
//! fields in a fixed order, and events sorted by `(ts, track, insertion
//! rank)` — no floats, no hash maps, no wall-clock reads. On the
//! simulator backend the byte output for a fixed seed is therefore
//! reproducible run-to-run, which the determinism suite and the CI
//! `trace-smoke` job enforce with a byte-level diff.

use crate::event::ObsEvent;
use crate::json::{self, Value};
use crate::ring::ThreadLog;
use coherence::TraceEvent;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Export-time description of the run.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Backend name ("sim" / "native"); also decides thread-track naming
    /// (`C<n>` for simulated cores, `T<n>` for OS threads).
    pub backend: &'static str,
    /// Free-form label shown as the process name ("SBQ-HTM producer 4").
    pub label: String,
    /// Simulator fast-path totals `(hits, fallbacks)`, rendered as a
    /// Chrome counter event on the Dir track so the admission rate sits
    /// next to the coherence traffic it avoided. `None` for backends
    /// without a fast path (native, runner).
    pub fastpath: Option<(u64, u64)>,
    /// Simulator interconnect hop totals `(intra, cross)`, rendered as a
    /// second Dir-track counter: how much of the coherence traffic shown
    /// on the tracks stayed on-socket vs. crossed the interconnect.
    /// `None` on native, where there is no simulated topology.
    pub hops: Option<(u64, u64)>,
}

/// The Dir track id; core/thread `n` maps to track `n + 1`.
const DIR_TRACK: u64 = 0;

/// Component `c` on the machine's component spine maps to track
/// `COMP_TRACK_BASE + c`, far above any plausible core count so the two
/// ranges never collide. Only components that actually acted appear.
const COMP_TRACK_BASE: u64 = 1000;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Entry {
    ts: u64,
    track: u64,
    rank: usize,
    json: String,
}

fn span_json(name: &str, ts: u64, dur: u64, track: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{track},\"args\":{{{args}}}}}",
        esc(name)
    )
}

fn instant_json(name: &str, cat: &str, ts: u64, track: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{track},\"s\":\"t\",\"args\":{{{args}}}}}",
        esc(name)
    )
}

/// Maps a trace node name ("Dir", "C3") to its track id; `None` for
/// nodes outside the known topology (never produced today).
fn node_track(node: &str) -> Option<u64> {
    if node == "Dir" {
        return Some(DIR_TRACK);
    }
    node.strip_prefix('C')
        .and_then(|n| n.parse::<u64>().ok())
        .map(|n| n + 1)
}

/// Renders the ring logs plus an optional simulator message trace as one
/// Chrome trace-event JSON document.
pub fn export(logs: &[ThreadLog], sim_trace: &[TraceEvent], meta: &TraceMeta) -> String {
    let mut entries: Vec<Entry> = Vec::new();
    let mut rank = 0usize;
    let mut push = |entries: &mut Vec<Entry>, ts: u64, track: u64, json: String| {
        entries.push(Entry {
            ts,
            track,
            rank,
            json,
        });
        rank += 1;
    };

    // Ring spans/instants, one track per recording thread.
    let mut tracks: BTreeSet<u64> = BTreeSet::new();
    let mut dropped = 0u64;
    for log in logs {
        let track = log.tid as u64 + 1;
        tracks.insert(track);
        dropped += log.dropped;
        for e in &log.events {
            match *e {
                ObsEvent::Span {
                    kind,
                    start,
                    end,
                    arg,
                } => {
                    let args = format!("\"v\":\"{arg:#x}\"");
                    let json =
                        span_json(kind.name(), start, end.saturating_sub(start), track, &args);
                    push(&mut entries, start, track, json);
                }
                ObsEvent::Instant { kind, ts, arg } => {
                    let args = format!("\"v\":\"{arg:#x}\"");
                    let json = instant_json(kind.name(), "op", ts, track, &args);
                    push(&mut entries, ts, track, json);
                }
            }
        }
    }

    // Simulator bridge: coherence messages, HTM lifecycle, memory ops,
    // component-spine actions.
    let mut have_dir = false;
    let mut comp_tracks: std::collections::BTreeMap<u64, String> = Default::default();
    for e in sim_trace {
        match e {
            TraceEvent::Msg {
                sent,
                recv,
                src,
                dst,
                kind,
                line,
            } => {
                let args = format!("\"line\":\"{line:#x}\"");
                if let Some(t) = node_track(src) {
                    have_dir |= t == DIR_TRACK;
                    tracks.insert(t);
                    let json = instant_json(&format!("{kind}→{dst}"), "coherence", *sent, t, &args);
                    push(&mut entries, *sent, t, json);
                }
                if let Some(t) = node_track(dst) {
                    have_dir |= t == DIR_TRACK;
                    tracks.insert(t);
                    let json = instant_json(&format!("{kind}←{src}"), "coherence", *recv, t, &args);
                    push(&mut entries, *recv, t, json);
                }
            }
            TraceEvent::Tx {
                time,
                core,
                what,
                detail,
            } => {
                let track = *core as u64 + 1;
                tracks.insert(track);
                let args = format!("\"status\":\"{detail:#x}\"");
                let json = instant_json(&format!("tx-{what}"), "htm", *time, track, &args);
                push(&mut entries, *time, track, json);
            }
            TraceEvent::Op {
                time,
                core,
                what,
                line,
            } => {
                let track = *core as u64 + 1;
                tracks.insert(track);
                let args = format!("\"line\":\"{line:#x}\"");
                let json = instant_json(what, "mem", *time, track, &args);
                push(&mut entries, *time, track, json);
            }
            TraceEvent::Comp {
                time,
                comp,
                name,
                what,
                core,
            } => {
                // Each acting component gets its own track; the action
                // also references the core it hit via args so the two
                // tracks cross-link in the viewer.
                let track = COMP_TRACK_BASE + *comp as u64;
                comp_tracks
                    .entry(track)
                    .or_insert_with(|| format!("{name}#{comp}"));
                let args = format!("\"core\":{core}");
                let json = instant_json(&format!("{what}→C{core}"), "comp", *time, track, &args);
                push(&mut entries, *time, track, json);
            }
        }
    }

    // Fast-path totals as a counter sample on the Dir track: the two
    // series plot as stacked bars next to the message instants whose
    // absence they explain.
    if let Some((hits, fallbacks)) = meta.fastpath {
        have_dir = true;
        let json = format!(
            "{{\"name\":\"fastpath\",\"cat\":\"coherence\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":{DIR_TRACK},\"args\":{{\"hits\":{hits},\"fallbacks\":{fallbacks}}}}}"
        );
        push(&mut entries, 0, DIR_TRACK, json);
    }

    // Interconnect hop totals as a second Dir-track counter: the
    // intra/cross split of the messages plotted above it.
    if let Some((intra, cross)) = meta.hops {
        have_dir = true;
        let json = format!(
            "{{\"name\":\"hops\",\"cat\":\"coherence\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":{DIR_TRACK},\"args\":{{\"intra\":{intra},\"cross\":{cross}}}}}"
        );
        push(&mut entries, 0, DIR_TRACK, json);
    }

    entries.sort_by_key(|e| (e.ts, e.track, e.rank));

    let mut out = String::new();
    out.push_str("{\n\"displayTimeUnit\":\"ns\",\n");
    let _ = writeln!(
        out,
        "\"otherData\":{{\"tool\":\"sbq-obs\",\"version\":\"1\",\"clock\":\"cycles\",\"backend\":\"{}\",\"dropped\":{dropped}}},",
        esc(meta.backend)
    );
    out.push_str("\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        out.push_str(&line);
        first = false;
    };

    emit(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            esc(&meta.label)
        ),
    );
    if have_dir {
        emit(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{DIR_TRACK},\"args\":{{\"name\":\"Dir\"}}}}"
            ),
        );
    }
    let core_prefix = if meta.backend == "sim" { "C" } else { "T" };
    for t in &tracks {
        if *t == DIR_TRACK {
            continue;
        }
        emit(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"args\":{{\"name\":\"{core_prefix}{}\"}}}}",
                t - 1
            ),
        );
    }
    for (t, name) in &comp_tracks {
        emit(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ),
        );
    }
    for e in entries {
        emit(&mut out, e.json);
    }
    out.push_str("\n]\n}\n");
    out
}

/// Renders the ring logs as TSV (`tid  name  ts  dur  arg`), the plain
/// tabular sibling of the Chrome export.
pub fn export_tsv(logs: &[ThreadLog]) -> String {
    let mut s = String::from("tid\tname\tts\tdur\targ\n");
    for log in logs {
        for e in &log.events {
            match *e {
                ObsEvent::Span {
                    kind,
                    start,
                    end,
                    arg,
                } => {
                    let _ = writeln!(
                        s,
                        "{}\t{}\t{}\t{}\t{arg:#x}",
                        log.tid,
                        kind.name(),
                        start,
                        end.saturating_sub(start)
                    );
                }
                ObsEvent::Instant { kind, ts, arg } => {
                    let _ = writeln!(s, "{}\t{}\t{}\t0\t{arg:#x}", log.tid, kind.name(), ts);
                }
            }
        }
    }
    s
}

/// What [`validate`] learned about a trace document.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete ("X") span events.
    pub spans: usize,
    /// Instant ("i") events.
    pub instants: usize,
    /// Counter ("C") events.
    pub counters: usize,
    /// Metadata ("M") events.
    pub meta: usize,
    /// Distinct `tid` tracks seen on non-metadata events.
    pub tracks: BTreeSet<u64>,
    /// Distinct event names seen on non-metadata events.
    pub names: BTreeSet<String>,
}

fn req_num(e: &Value, key: &str, i: usize) -> Result<f64, String> {
    e.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("event {i}: missing numeric \"{key}\""))
}

/// Validates a Chrome trace-event JSON document against the subset of
/// the schema the exporters produce (and viewers require): a top-level
/// object with a `traceEvents` array whose entries carry `name`/`ph`/
/// `pid`/`tid`, with `ts` (+ non-negative `dur` for `"X"`) on timed
/// events. Returns a summary of what was found.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut sum = TraceSummary::default();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"name\""))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
        req_num(e, "pid", i)?;
        let tid = req_num(e, "tid", i)?;
        sum.events += 1;
        match ph {
            "X" => {
                let ts = req_num(e, "ts", i)?;
                let dur = req_num(e, "dur", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                sum.spans += 1;
            }
            "i" => {
                req_num(e, "ts", i)?;
                sum.instants += 1;
            }
            "C" => {
                req_num(e, "ts", i)?;
                sum.counters += 1;
            }
            "M" => {
                sum.meta += 1;
                continue; // metadata carries no timeline position
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
        sum.tracks.insert(tid as u64);
        sum.names.insert(name.to_string());
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstantKind, SpanKind};
    use crate::ring::ObsSink;

    fn sample_logs() -> Vec<ThreadLog> {
        let sink = ObsSink::default();
        let mut t0 = sink.thread(0);
        t0.span(SpanKind::Enqueue, 10, 42, 0x1_0000_0000_0001);
        t0.instant(InstantKind::Barrier, 50, 0);
        sink.submit(t0);
        let mut t1 = sink.thread(1);
        t1.span(SpanKind::Dequeue, 12, 55, 0x1_0000_0000_0001);
        sink.submit(t1);
        sink.take_logs()
    }

    fn sample_sim_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Msg {
                sent: 10,
                recv: 35,
                src: "C0".to_string(),
                dst: "Dir".to_string(),
                kind: "GetM",
                line: 0x40,
            },
            TraceEvent::Tx {
                time: 60,
                core: 1,
                what: "abort",
                detail: 0x6,
            },
        ]
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            backend: "sim",
            label: "unit test".to_string(),
            fastpath: None,
            hops: None,
        }
    }

    #[test]
    fn export_validates_and_carries_all_pieces() {
        let json = export(&sample_logs(), &sample_sim_trace(), &meta());
        let sum = validate(&json).expect("exporter output must validate");
        assert_eq!(sum.spans, 2);
        assert!(sum.instants >= 3, "barrier + msg endpoints + tx: {sum:?}");
        assert!(sum.names.contains("enqueue"));
        assert!(sum.names.contains("dequeue"));
        assert!(sum.names.contains("GetM→Dir"));
        assert!(sum.names.contains("tx-abort"));
        // Dir track plus both thread tracks.
        assert!(sum.tracks.contains(&DIR_TRACK));
        assert!(sum.tracks.contains(&1) && sum.tracks.contains(&2));
        // Values travel as hex args.
        assert!(json.contains("0x1000000000001"));
        assert!(json.contains("\"status\":\"0x6\""));
    }

    #[test]
    fn fastpath_counter_lands_on_dir_track() {
        let mut m = meta();
        m.fastpath = Some((12, 3));
        let json = export(&sample_logs(), &[], &m);
        let sum = validate(&json).expect("counter event must validate");
        assert_eq!(sum.counters, 1);
        assert!(sum.tracks.contains(&DIR_TRACK));
        assert!(json.contains("\"hits\":12"));
        assert!(json.contains("\"fallbacks\":3"));
        assert!(json.contains("\"name\":\"Dir\""));
    }

    #[test]
    fn hops_counter_lands_on_dir_track() {
        let mut m = meta();
        m.hops = Some((400, 70));
        let json = export(&sample_logs(), &[], &m);
        let sum = validate(&json).expect("counter event must validate");
        assert_eq!(sum.counters, 1);
        assert!(sum.tracks.contains(&DIR_TRACK));
        assert!(json.contains("\"intra\":400"));
        assert!(json.contains("\"cross\":70"));
    }

    #[test]
    fn export_is_deterministic_for_equal_inputs() {
        let a = export(&sample_logs(), &sample_sim_trace(), &meta());
        let b = export(&sample_logs(), &sample_sim_trace(), &meta());
        assert_eq!(a, b);
    }

    #[test]
    fn export_without_sim_trace_has_no_dir_track() {
        let json = export(&sample_logs(), &[], &meta());
        let sum = validate(&json).unwrap();
        assert!(!sum.tracks.contains(&DIR_TRACK));
        assert!(!json.contains("\"name\":\"Dir\""));
    }

    #[test]
    fn tsv_lists_every_event() {
        let tsv = export_tsv(&sample_logs());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "tid\tname\tts\tdur\targ");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0\tenqueue\t10\t32\t"));
    }

    #[test]
    fn validate_rejects_junk() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents": [{"name":"a","ph":"Q","pid":0,"tid":0,"ts":1}]}"#).is_err()
        );
        // Missing dur on a complete event.
        assert!(
            validate(r#"{"traceEvents": [{"name":"a","ph":"X","pid":0,"tid":0,"ts":1}]}"#).is_err()
        );
    }
}
