//! Property tests for the log-bucketed histogram: bucketed quantiles
//! against an exact sorted-sample reference across assorted random
//! distributions, and bit-exact merge associativity.
//!
//! The quantile contract under test (see `obs::hist`): the estimate is
//! the lower bound of the bucket holding the rank-`⌈q·n⌉` sample, so
//! `estimate <= exact` always, and `exact - estimate` is bounded by the
//! bucket width — at most `exact / SUB` (values below `SUB` are exact).

use obs::hist::SUB;
use obs::Histogram;
use simrng::SimRng;

const QS: [f64; 8] = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999];

/// Exact `q`-quantile under the same rank convention the histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn check_against_reference(tag: &str, samples: &[u64]) {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    assert_eq!(h.count(), samples.len() as u64, "{tag}: count");
    assert_eq!(h.min(), sorted[0], "{tag}: min is exact");
    assert_eq!(h.max(), *sorted.last().unwrap(), "{tag}: max is exact");
    assert_eq!(h.quantile(1.0), h.max(), "{tag}: q=1 reports the max");
    for q in QS {
        let est = h.quantile(q);
        let exact = exact_quantile(&sorted, q);
        assert!(
            est <= exact,
            "{tag}: q={q}: estimate {est} above exact {exact}"
        );
        assert!(
            exact - est <= exact / SUB as u64 + 1,
            "{tag}: q={q}: estimate {est} off exact {exact} by more than 1/{SUB}"
        );
    }
    // Quantiles are monotone in q.
    for w in QS.windows(2) {
        assert!(
            h.quantile(w[0]) <= h.quantile(w[1]),
            "{tag}: quantiles not monotone at {w:?}"
        );
    }
}

fn uniform(rng: &mut SimRng, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range_inclusive(lo, hi)).collect()
}

/// Power-law-ish: a uniform mantissa scaled into a geometrically chosen
/// octave — the latency-like shape (dense head, long tail) the histogram
/// exists for.
fn power_law(rng: &mut SimRng, n: usize, max_shift: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let shift = rng.gen_range_inclusive(0, max_shift);
            rng.gen_range_inclusive(1, 255) << shift
        })
        .collect()
}

#[test]
fn quantiles_track_exact_reference_across_distributions() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0b5e_55ed);
        check_against_reference("tiny-exact", &uniform(&mut rng, 500, 0, SUB as u64 - 1));
        check_against_reference("small", &uniform(&mut rng, 1_000, 0, 1_000));
        check_against_reference("wide", &uniform(&mut rng, 2_000, 0, 1 << 48));
        check_against_reference("power-law", &power_law(&mut rng, 1_500, 50));
        check_against_reference("constant", &vec![rng.gen_range_inclusive(1, 1 << 40); 300]);
        // Bimodal: fast path plus rare slow outliers.
        let mut bimodal = uniform(&mut rng, 990, 100, 200);
        bimodal.extend(uniform(&mut rng, 10, 1 << 30, 1 << 31));
        check_against_reference("bimodal", &bimodal);
    }
}

#[test]
fn single_sample_is_every_quantile() {
    for v in [0u64, 1, 31, 32, 1000, u64::MAX] {
        let mut h = Histogram::new();
        h.record(v);
        for q in QS {
            // One sample: estimate is its bucket floor, clamped to min=v.
            assert_eq!(h.quantile(q), v, "v={v} q={q}");
        }
        assert_eq!(h.max(), v);
    }
}

/// Bit-exact view of histogram state for equality assertions.
fn state(h: &Histogram) -> (u64, u64, u64, u64, String) {
    (h.count(), h.sum(), h.min(), h.max(), h.to_tsv())
}

#[test]
fn merge_is_associative_and_matches_single_recording() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let samples = power_law(&mut rng, 2_000, 40);

        // Random 3-way partition.
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut whole = Histogram::new();
        for &v in &samples {
            parts[rng.gen_range_inclusive(0, 2) as usize].record(v);
            whole.record(v);
        }
        let [a, b, c] = parts;

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);

        assert_eq!(state(&left), state(&right), "seed {seed}: associativity");
        assert_eq!(
            state(&left),
            state(&whole),
            "seed {seed}: merge differs from single recording"
        );
        for q in QS {
            assert_eq!(left.quantile(q), whole.quantile(q), "seed {seed} q={q}");
        }
    }
}

#[test]
fn merge_with_empty_is_identity() {
    let mut rng = SimRng::seed_from_u64(7);
    let mut h = Histogram::new();
    for &v in &uniform(&mut rng, 200, 0, 1 << 20) {
        h.record(v);
    }
    let before = state(&h);
    h.merge(&Histogram::new());
    assert_eq!(state(&h), before);
    let mut empty = Histogram::new();
    empty.merge(&h);
    assert_eq!(state(&empty), before);
}
