//! Serial/parallel equivalence for the campaign job pool: a campaign's
//! observable output — report fields, progress-callback order, rendered
//! traces — may not depend on the worker count. The failing-campaign
//! half of this contract (artifact byte-identity, lowest-seed-wins)
//! lives in tests/planted_bug.rs, which needs the `planted-bug` feature
//! to generate failures; these tests run with default features.

use simfuzz::{run_campaign, trace_plan, CampaignConfig, FuzzPlan, FUZZ_QUEUES};

/// One clean rotation over every queue: jobs=1 and jobs=4 campaigns
/// must report identically and call `progress` in the same order.
#[test]
fn clean_campaign_report_is_independent_of_worker_count() {
    let cfg = |jobs: usize| CampaignConfig {
        seeds: 2 * FUZZ_QUEUES.len() as u64,
        start_seed: 0,
        queue: None,
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: None,
        jobs,
    };
    let mut serial_progress = Vec::new();
    let serial = run_campaign(&cfg(1), |seed, queue, f| {
        serial_progress.push((seed, queue, f.is_some()));
    });
    let mut parallel_progress = Vec::new();
    let parallel = run_campaign(&cfg(4), |seed, queue, f| {
        parallel_progress.push((seed, queue, f.is_some()));
    });

    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(serial.failures.len(), parallel.failures.len());
    assert_eq!(
        serial_progress, parallel_progress,
        "progress order must be seed order on both paths"
    );
    let seeds: Vec<u64> = serial_progress.iter().map(|(s, _, _)| *s).collect();
    assert_eq!(seeds, (0..serial.runs).collect::<Vec<_>>());

    // Both campaigns measured their pools; the parallel one really used
    // more than one worker.
    let sp = serial.pool.expect("serial pool report");
    let pp = parallel.pool.expect("parallel pool report");
    assert_eq!(sp.tasks as u64, serial.runs);
    assert_eq!(pp.tasks as u64, parallel.runs);
    assert_eq!(sp.jobs, 1);
    assert_eq!(pp.jobs, 4);
}

/// `jobs: 0` resolves to the auto worker count and must not change the
/// report either.
#[test]
fn auto_jobs_matches_serial() {
    let cfg = |jobs: usize| CampaignConfig {
        seeds: FUZZ_QUEUES.len() as u64,
        start_seed: 3,
        queue: None,
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: None,
        jobs,
    };
    let serial = run_campaign(&cfg(1), |_, _, _| {});
    let auto = run_campaign(&cfg(0), |_, _, _| {});
    assert_eq!(serial.runs, auto.runs);
    assert_eq!(serial.failures.len(), auto.failures.len());
    assert!(auto.pool.expect("pool report").jobs >= 1);
}

/// The Chrome trace of a plan is rendered from simulated time, so the
/// bytes cannot depend on which worker produced them — pin that by
/// rendering the same plans serially and through a pool.
#[test]
fn plan_traces_are_byte_identical_across_worker_counts() {
    let plans: Vec<FuzzPlan> = (0..6).map(|s| FuzzPlan::derive(s, None)).collect();
    let serial: Vec<String> = plans.iter().map(trace_plan).collect();
    let tasks: Vec<_> = plans.iter().map(|p| move || trace_plan(p)).collect();
    let (parallel, report) = runner::run_all(4, tasks);
    assert_eq!(serial, parallel);
    assert_eq!(report.tasks, plans.len());
}
