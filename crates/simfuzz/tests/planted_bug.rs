//! End-to-end self-test of the harness against a known defect: with the
//! `planted-bug` feature, the MS-queue dequeue treats a lost head-swing
//! CAS as a win, so two contending dequeuers can return the same value
//! (a `Repeat` violation). The harness must find it, shrink it to a
//! minimal plan, write a reproducer artifact, and replay it
//! deterministically.
//!
//! Gated on the feature so a default-features build compiles this file
//! to nothing; run with
//! `cargo test -p simfuzz --features planted-bug --release`.
#![cfg(feature = "planted-bug")]

use linearize::Violation;
use simfuzz::{reproduce, run_campaign, run_plan, CampaignConfig, FuzzPlan, QueueKind};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("simfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn campaign_finds_shrinks_and_replays_the_planted_bug() {
    let dir = temp_dir("planted");
    let cfg = CampaignConfig {
        seeds: 64,
        start_seed: 0,
        queue: Some(QueueKind::MsQueue),
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: Some(dir.clone()),
    };
    let report = run_campaign(&cfg, |_, _, _| {});
    assert!(
        !report.failures.is_empty(),
        "64 seeds over the planted bug found nothing"
    );

    let f = &report.failures[0];
    let shrunk = f.shrunk.as_ref().expect("sim failures always shrink");
    assert!(
        matches!(shrunk.violation, Violation::Repeat { .. }),
        "planted bug is a duplicated dequeue, got {:?}",
        shrunk.violation
    );

    // The shrunk plan is itself a reproducer...
    let rerun = run_plan(&shrunk.plan);
    assert!(
        matches!(rerun.violation, Some(Violation::Repeat { .. })),
        "shrunk plan no longer fails: {:?}",
        rerun.violation
    );
    // ...and it is 1-minimal along the shrink dimensions: growing was
    // never tried, but every single-step reduction must have been either
    // tried-and-rejected or out of range. Spot-check the two workload
    // dimensions.
    if shrunk.plan.ops_per_thread > 1 {
        let mut smaller = shrunk.plan.clone();
        smaller.ops_per_thread -= 1;
        let out = run_plan(&smaller);
        assert!(
            !matches!(out.violation, Some(Violation::Repeat { .. })),
            "shrink missed a smaller op count"
        );
    }
    if shrunk.plan.threads > 2 {
        let mut smaller = shrunk.plan.clone();
        smaller.threads -= 1;
        let out = run_plan(&smaller);
        assert!(
            !matches!(out.violation, Some(Violation::Repeat { .. })),
            "shrink missed a smaller thread count"
        );
    }
    // The minimized witness actually exhibits the duplicate.
    assert!(shrunk.witness.len() >= 2);

    // The artifact replays to the same violation kind, bit-identically.
    let path = f.artifact.as_ref().expect("artifact written");
    let r1 = reproduce(path).expect("replay");
    let r2 = reproduce(path).expect("replay");
    assert!(
        r1.reproduced,
        "replay did not reproduce: {:?}",
        r1.violation
    );
    assert_eq!(r1.fingerprint, r2.fingerprint);

    // A Chrome trace of the violating run sits next to the reproducer,
    // parses against the trace schema, and actually shows the violating
    // operations: dequeue spans, and the duplicated value as a span arg.
    let tpath = f.trace.as_ref().expect("trace written beside artifact");
    assert_eq!(tpath.extension().and_then(|e| e.to_str()), Some("trace"));
    let text = std::fs::read_to_string(tpath).expect("trace readable");
    let sum = obs::validate(&text).expect("trace validates against the schema");
    assert!(sum.spans > 0, "trace has no op spans: {sum:?}");
    assert!(
        sum.names.contains("dequeue"),
        "violating dequeue spans missing from trace: {:?}",
        sum.names
    );
    assert!(
        sum.names.contains("enqueue"),
        "enqueue spans missing from trace: {:?}",
        sum.names
    );
    let Violation::Repeat { value } = shrunk.violation else {
        unreachable!("asserted Repeat above");
    };
    assert!(
        text.contains(&format!("\"v\":\"{value:#x}\"")),
        "duplicated value {value:#x} not visible in trace args"
    );
    // Same plan, same simulation: the trace is byte-stable.
    assert_eq!(text, simfuzz::trace_plan(&shrunk.plan));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pristine_queues_stay_clean_even_with_the_feature_on() {
    // The feature touches only the MS queue; the SBQ variants must still
    // pass, proving the harness's signal comes from the planted defect
    // and not from fault injection itself.
    for seed in 0..4 {
        let plan = FuzzPlan::derive(seed, Some(QueueKind::SbqHtm));
        assert_eq!(run_plan(&plan).violation, None, "seed {seed}");
    }
}
