//! End-to-end self-test of the harness against a known defect: with the
//! `planted-bug` feature, the MS-queue dequeue treats a lost head-swing
//! CAS as a win, so two contending dequeuers can return the same value
//! (a `Repeat` violation). The harness must find it, shrink it to a
//! minimal plan, write a reproducer artifact, and replay it
//! deterministically.
//!
//! Gated on the feature so a default-features build compiles this file
//! to nothing; run with
//! `cargo test -p simfuzz --features planted-bug --release`.
#![cfg(feature = "planted-bug")]

use linearize::Violation;
use simfuzz::{reproduce, run_campaign, run_plan, CampaignConfig, FuzzPlan, QueueKind};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("simfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn campaign_finds_shrinks_and_replays_the_planted_bug() {
    let dir = temp_dir("planted");
    let cfg = CampaignConfig {
        seeds: 64,
        start_seed: 0,
        queue: Some(QueueKind::MsQueue),
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: Some(dir.clone()),
        jobs: 1,
    };
    let report = run_campaign(&cfg, |_, _, _| {});
    assert!(
        !report.failures.is_empty(),
        "64 seeds over the planted bug found nothing"
    );

    let f = &report.failures[0];
    let shrunk = f.shrunk.as_ref().expect("sim failures always shrink");
    assert!(
        matches!(shrunk.violation, Violation::Repeat { .. }),
        "planted bug is a duplicated dequeue, got {:?}",
        shrunk.violation
    );

    // The shrunk plan is itself a reproducer...
    let rerun = run_plan(&shrunk.plan);
    assert!(
        matches!(rerun.violation, Some(Violation::Repeat { .. })),
        "shrunk plan no longer fails: {:?}",
        rerun.violation
    );
    // ...and it is 1-minimal along the shrink dimensions: growing was
    // never tried, but every single-step reduction must have been either
    // tried-and-rejected or out of range. Spot-check the two workload
    // dimensions.
    if shrunk.plan.ops_per_thread > 1 {
        let mut smaller = shrunk.plan.clone();
        smaller.ops_per_thread -= 1;
        let out = run_plan(&smaller);
        assert!(
            !matches!(out.violation, Some(Violation::Repeat { .. })),
            "shrink missed a smaller op count"
        );
    }
    if shrunk.plan.threads > 2 {
        let mut smaller = shrunk.plan.clone();
        smaller.threads -= 1;
        let out = run_plan(&smaller);
        assert!(
            !matches!(out.violation, Some(Violation::Repeat { .. })),
            "shrink missed a smaller thread count"
        );
    }
    // The minimized witness actually exhibits the duplicate.
    assert!(shrunk.witness.len() >= 2);

    // The artifact replays to the same violation kind, bit-identically.
    let path = f.artifact.as_ref().expect("artifact written");
    let r1 = reproduce(path).expect("replay");
    let r2 = reproduce(path).expect("replay");
    assert!(
        r1.reproduced,
        "replay did not reproduce: {:?}",
        r1.violation
    );
    assert_eq!(r1.fingerprint, r2.fingerprint);

    // A Chrome trace of the violating run sits next to the reproducer,
    // parses against the trace schema, and actually shows the violating
    // operations: dequeue spans, and the duplicated value as a span arg.
    let tpath = f.trace.as_ref().expect("trace written beside artifact");
    assert_eq!(tpath.extension().and_then(|e| e.to_str()), Some("trace"));
    let text = std::fs::read_to_string(tpath).expect("trace readable");
    let sum = obs::validate(&text).expect("trace validates against the schema");
    assert!(sum.spans > 0, "trace has no op spans: {sum:?}");
    assert!(
        sum.names.contains("dequeue"),
        "violating dequeue spans missing from trace: {:?}",
        sum.names
    );
    assert!(
        sum.names.contains("enqueue"),
        "enqueue spans missing from trace: {:?}",
        sum.names
    );
    let Violation::Repeat { value } = shrunk.violation else {
        unreachable!("asserted Repeat above");
    };
    assert!(
        text.contains(&format!("\"v\":\"{value:#x}\"")),
        "duplicated value {value:#x} not visible in trace args"
    );
    // Same plan, same simulation: the trace is byte-stable.
    assert_eq!(text, simfuzz::trace_plan(&shrunk.plan));
    std::fs::remove_dir_all(&dir).ok();
}

/// The pool's determinism-of-merge contract, exercised on a campaign
/// that actually fails: whatever the worker count and however the host
/// schedules them, the parallel campaign must report the same failures
/// in the same (ascending seed) order and write byte-identical artifact
/// and trace files. In particular "the first failure" is the *lowest*
/// failing seed, not the first job to finish.
#[test]
fn parallel_campaign_reports_lowest_seed_and_identical_artifacts() {
    let serial_dir = temp_dir("planted-serial");
    let parallel_dir = temp_dir("planted-parallel");
    let cfg = |dir: &std::path::Path, jobs: usize| CampaignConfig {
        seeds: 64,
        start_seed: 0,
        queue: Some(QueueKind::MsQueue),
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: Some(dir.to_path_buf()),
        jobs,
    };
    let mut serial_progress = Vec::new();
    let serial = run_campaign(&cfg(&serial_dir, 1), |seed, _, f| {
        serial_progress.push((seed, f.is_some()));
    });
    let mut parallel_progress = Vec::new();
    let parallel = run_campaign(&cfg(&parallel_dir, 8), |seed, _, f| {
        parallel_progress.push((seed, f.is_some()));
    });

    // Progress callbacks fire in ascending seed order on both paths.
    assert_eq!(serial_progress, parallel_progress);
    assert_eq!(
        serial_progress,
        (0..64)
            .map(|s| (s, serial_progress[s as usize].1))
            .collect::<Vec<_>>()
    );

    assert!(!serial.failures.is_empty());
    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(serial.failures.len(), parallel.failures.len());
    let lowest = serial.failures.iter().map(|f| f.seed).min().unwrap();
    assert_eq!(
        parallel.failures[0].seed, lowest,
        "first reported failure must be the lowest failing seed"
    );
    for (a, b) in serial.failures.iter().zip(&parallel.failures) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(format!("{}", a.kind), format!("{}", b.kind));
    }

    // The artifact directories are byte-identical, file for file.
    let list = |dir: &std::path::Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .expect("artifacts dir exists")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = list(&serial_dir);
    assert_eq!(names, list(&parallel_dir), "artifact sets differ");
    assert!(!names.is_empty());
    for name in &names {
        let a = std::fs::read(serial_dir.join(name)).unwrap();
        let b = std::fs::read(parallel_dir.join(name)).unwrap();
        assert_eq!(a, b, "artifact {name} differs between jobs=1 and jobs=8");
    }

    let pool = parallel.pool.expect("campaign reports its pool");
    assert_eq!(pool.tasks as u64, parallel.runs);
    assert_eq!(pool.jobs, 8);
    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&parallel_dir).ok();
}

#[test]
fn pristine_queues_stay_clean_even_with_the_feature_on() {
    // The feature touches only the MS queue; the SBQ variants must still
    // pass, proving the harness's signal comes from the planted defect
    // and not from fault injection itself.
    for seed in 0..4 {
        let plan = FuzzPlan::derive(seed, Some(QueueKind::SbqHtm));
        assert_eq!(run_plan(&plan).violation, None, "seed {seed}");
    }
}
