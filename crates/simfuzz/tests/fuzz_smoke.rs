//! Smoke coverage for the fuzz harness itself: a small clean campaign
//! over every queue with fault injection active, campaign determinism,
//! and the artifact round trip through the filesystem.

use linearize::Violation;
use simfuzz::{
    read_artifact, reproduce, run_campaign, run_plan, write_artifact, CampaignConfig, FuzzPlan,
    FUZZ_QUEUES,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("simfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn small_campaign_is_clean_on_every_queue() {
    // 2 × FUZZ_QUEUES seeds so the rotation covers each implementation
    // at least twice, with the full perturbation mix enabled.
    let cfg = CampaignConfig {
        seeds: 2 * FUZZ_QUEUES.len() as u64,
        start_seed: 0,
        queue: None,
        backend: simfuzz::BackendKind::Sim,
        artifacts_dir: None,
        jobs: 1,
    };
    let report = run_campaign(&cfg, |_, _, _| {});
    assert_eq!(report.runs, cfg.seeds);
    // Under `planted-bug` the MS queue is supposed to fail; that path is
    // owned by tests/planted_bug.rs.
    let unexpected: Vec<_> = report
        .failures
        .iter()
        .filter(|f| {
            let q = f.shrunk.as_ref().map(|s| s.plan.queue);
            !(cfg!(feature = "planted-bug") && q == Some(simfuzz::QueueKind::MsQueue))
        })
        .map(|f| (f.seed, &f.kind))
        .collect();
    assert!(
        unexpected.is_empty(),
        "unexpected violations: {unexpected:?}"
    );
}

#[test]
fn small_native_campaign_is_clean() {
    // One full rotation over every queue on real OS threads, each seed
    // cross-checked against a drained simulator run of the same plan.
    let cfg = CampaignConfig {
        seeds: FUZZ_QUEUES.len() as u64,
        start_seed: 0,
        queue: None,
        backend: simfuzz::BackendKind::Native,
        artifacts_dir: None,
        jobs: 1,
    };
    let report = run_campaign(&cfg, |_, _, _| {});
    assert_eq!(report.runs, cfg.seeds);
    let unexpected: Vec<_> = report
        .failures
        .iter()
        .filter(|f| {
            let q = FuzzPlan::derive(f.seed, None).queue;
            !(cfg!(feature = "planted-bug") && q == simfuzz::QueueKind::MsQueue)
        })
        .map(|f| (f.seed, &f.kind))
        .collect();
    assert!(
        unexpected.is_empty(),
        "unexpected native failures: {unexpected:?}"
    );
}

#[test]
fn campaigns_are_deterministic() {
    for seed in 0..8 {
        let plan = FuzzPlan::derive(seed, None);
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
    }
}

#[test]
fn artifact_roundtrips_through_filesystem_and_replays() {
    // A clean plan still replays: `reproduce` must report the replay did
    // NOT match the recorded violation (there is none to match), while
    // the replay fingerprint stays stable across calls.
    let dir = temp_dir("roundtrip");
    let plan = FuzzPlan::derive(5, None);
    let v = Violation::Repeat { value: 42 };
    let path = write_artifact(&dir, &plan, &v, &[]).expect("write");
    let art = read_artifact(&path).expect("read");
    assert_eq!(art.plan, plan);
    assert_eq!(art.violation, "repeat");

    let r1 = reproduce(&path).expect("replay");
    let r2 = reproduce(&path).expect("replay");
    assert!(!r1.reproduced, "clean plan cannot reproduce a violation");
    assert_eq!(r1.fingerprint, r2.fingerprint);
    std::fs::remove_dir_all(&dir).ok();
}
