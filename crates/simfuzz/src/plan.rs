//! Fuzz plans: everything that determines one randomized run, derived
//! deterministically from a single seed.
//!
//! A plan is the unit of reproduction: the runner consumes *only* the
//! plan (never ambient randomness), so re-running an identical plan —
//! today, or replayed from a `fuzz-artifacts/` file — produces a
//! bit-identical simulation. All fields are integers or flags so a plan
//! round-trips exactly through the text artifact format; probabilities
//! are stored in parts-per-million.

use harness::QueueKind;
use simrng::SimRng;

/// Queue kinds the fuzzer sweeps: the paper set plus the MS-queue base
/// case and the experimental striped basket — every implementation in
/// the tree, in [`QueueKind::ALL`]'s rotation order.
pub const FUZZ_QUEUES: [QueueKind; 7] = QueueKind::ALL;

/// One fully determined fuzz run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzPlan {
    /// Master seed: identifies the plan and seeds the per-thread op
    /// streams (`thread_ops`).
    pub seed: u64,
    /// Queue implementation under test.
    pub queue: QueueKind,
    /// Worker threads (simulated cores).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Enqueue probability of each op, in permille (the rest dequeue).
    pub enq_permille: u64,
    /// Spurious-abort probability at `_xend`, parts-per-million.
    pub spurious_ppm: u64,
    /// `MachineConfig::delay_jitter_pct`.
    pub jitter_pct: u64,
    /// `MachineConfig::sched_perturb` (max extra issue cycles).
    pub sched_perturb: u64,
    /// `MachineConfig::tx_capacity_lines` (0 = unbounded).
    pub capacity_lines: u64,
    /// Dual-socket topology instead of single-socket.
    pub dual_socket: bool,
    /// The paper's §3.4.1 microarchitectural fix.
    pub microarch_fix: bool,
    /// Seed handed to the machine (spurious aborts, jitter, perturbation);
    /// distinct from `seed` so schedule noise and op mix vary
    /// independently.
    pub machine_seed: u64,
    /// Preemption-source period in cycles; 0 disables the component.
    /// When set, an [`coherence::ComponentSpec::Interrupt`] actor fires
    /// round-robin across cores, aborting in-flight transactions with
    /// `txn::INTERRUPT` — the fuzzer's oracle must hold through
    /// interrupt-aborted-and-retried operations.
    pub preempt_period: u64,
    /// Simulated interrupt-handler cost in cycles (used only when
    /// `preempt_period > 0`, but always drawn so plans stay comparable).
    pub preempt_cost: u64,
    /// Timer-consumer period in cycles; 0 disables. When set, thread 0
    /// is paced: a `TickGate` releases one of its ops per period.
    pub timer_period: u64,
}

impl FuzzPlan {
    /// Derives the plan for `seed`. The queue rotates through
    /// [`FUZZ_QUEUES`] unless pinned, so a contiguous seed range covers
    /// every implementation; every other dimension is drawn from the
    /// seed's own RNG stream.
    pub fn derive(seed: u64, queue: Option<QueueKind>) -> FuzzPlan {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x51f7_755a_9e3c_0b1d);
        let queue = queue.unwrap_or(FUZZ_QUEUES[(seed % FUZZ_QUEUES.len() as u64) as usize]);
        // Fault-injection extremes are drawn independently so some seeds
        // combine all of them and some run clean.
        let spurious_ppm = if rng.gen_bool(0.5) {
            rng.gen_range_inclusive(1_000, 200_000) // up to a 20% abort rate
        } else {
            0
        };
        let capacity_lines = if rng.gen_bool(0.3) {
            // Small but survivable: TxCAS's wait-free fallback bounds the
            // retries a permanently-aborting transaction can burn.
            rng.gen_range_inclusive(6, 24)
        } else {
            0
        };
        FuzzPlan {
            seed,
            queue,
            threads: rng.gen_range_inclusive(2, 6) as usize,
            ops_per_thread: rng.gen_range_inclusive(4, 24),
            enq_permille: rng.gen_range_inclusive(300, 700),
            spurious_ppm,
            jitter_pct: rng.gen_range_inclusive(0, 80),
            sched_perturb: rng.gen_range_inclusive(0, 600),
            capacity_lines,
            dual_socket: rng.gen_bool(0.4),
            microarch_fix: rng.gen_bool(0.5),
            machine_seed: rng.next_u64(),
            // Component knobs draw *after* machine_seed so every pre-spine
            // plan field keeps its historical derivation (struct literal
            // fields evaluate in written order).
            preempt_period: if rng.gen_bool(0.35) {
                rng.gen_range_inclusive(1_500, 30_000)
            } else {
                0
            },
            preempt_cost: rng.gen_range_inclusive(50, 400),
            timer_period: if rng.gen_bool(0.25) {
                rng.gen_range_inclusive(2_000, 20_000)
            } else {
                0
            },
        }
    }

    /// The op stream of thread `t` under this plan: `true` = enqueue.
    /// Derived from `(seed, t)` only, so shrinking `threads` or
    /// `ops_per_thread` leaves the surviving threads' streams intact.
    pub fn thread_ops(&self, t: usize) -> Vec<bool> {
        let mut rng = SimRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(t as u64 + 1),
        );
        (0..self.ops_per_thread)
            .map(|_| rng.gen_bool(self.enq_permille as f64 / 1000.0))
            .collect()
    }

    /// Builds the machine configuration this plan runs on.
    pub fn machine(&self) -> coherence::MachineConfig {
        let mut m = if self.dual_socket {
            coherence::MachineConfig::dual_socket(self.threads.div_ceil(2))
        } else {
            coherence::MachineConfig::single_socket(self.threads)
        };
        m.delay_jitter_pct = self.jitter_pct;
        m.spurious_abort_prob = self.spurious_ppm as f64 / 1e6;
        m.tx_capacity_lines = self.capacity_lines as usize;
        m.sched_perturb = self.sched_perturb;
        m.microarch_fix = self.microarch_fix;
        m.seed = self.machine_seed;
        // Protocol invariants are the simulator's own regression net, not
        // the fuzzer's oracle; skip them for campaign throughput.
        m.check_invariants = false;
        if self.preempt_period > 0 {
            m.components.push(coherence::ComponentSpec::Interrupt {
                period: self.preempt_period,
                start: (self.preempt_period / 2).max(1),
                cost: self.preempt_cost,
                victim: None,
            });
        }
        if self.timer_period > 0 {
            // Exactly one release per paced main-loop op of thread 0
            // (see `pace` in the runner); the drain phase is unpaced.
            m.components.push(coherence::ComponentSpec::TickGate {
                core: 0,
                period: self.timer_period,
                start: self.timer_period,
                count: self.ops_per_thread,
            });
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        for seed in 0..32 {
            assert_eq!(FuzzPlan::derive(seed, None), FuzzPlan::derive(seed, None));
        }
    }

    #[test]
    fn seed_range_covers_every_queue() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..FUZZ_QUEUES.len() as u64 {
            seen.insert(FuzzPlan::derive(seed, None).queue.name());
        }
        assert_eq!(seen.len(), FUZZ_QUEUES.len());
    }

    #[test]
    fn thread_ops_stable_under_shrinking() {
        let plan = FuzzPlan::derive(7, None);
        let mut smaller = plan.clone();
        smaller.threads = 2;
        assert_eq!(plan.thread_ops(0), smaller.thread_ops(0));
        assert_eq!(plan.thread_ops(1), smaller.thread_ops(1));
    }
}
