//! Uniform adapters for running the evaluated queues on the coherence
//! simulator. Each adapter publishes itself as a descriptor address
//! created in the setup phase and re-attached by every measured thread.

use absmem::{DelayedCas, StandardCas};
use baselines::{CcHandle, CcQueue, MsQueue, WfHandle, WfQueue};
use coherence::SimCtx;
use sbq::basket::SbqBasket;
use sbq::modular::{EnqueuerState, ModularQueue, QueueConfig};
use sbq::txcas::{TxCas, TxCasParams};

/// Queue construction parameters shared across the suite.
#[derive(Debug, Clone, Copy)]
pub struct QueueParams {
    /// Protector-array size: total threads attached to the queue.
    pub max_threads: usize,
    /// Active enqueuers (bounds the basket extraction scan, §6.1).
    pub enqueuers: usize,
    /// Basket cell count (the paper fixes 44).
    pub basket_capacity: usize,
    /// TxCAS tuning for SBQ-HTM.
    pub txcas: TxCasParams,
    /// Delay for SBQ-CAS (the paper gives it the same delay as TxCAS).
    pub delay_cycles: u64,
    /// Run the epoch reclaimer.
    pub reclaim: bool,
}

impl Default for QueueParams {
    fn default() -> Self {
        QueueParams {
            max_threads: 64,
            enqueuers: 64,
            basket_capacity: 44,
            txcas: TxCasParams::default(),
            delay_cycles: TxCasParams::default().intra_delay,
            reclaim: true,
        }
    }
}

impl QueueParams {
    fn queue_config(&self) -> QueueConfig {
        QueueConfig {
            max_threads: self.max_threads,
            reclaim: self.reclaim,
            poison_on_free: false,
        }
    }

    fn basket(&self) -> SbqBasket {
        SbqBasket::with_inserters(
            self.basket_capacity,
            self.enqueuers.min(self.basket_capacity),
        )
    }
}

/// A queue runnable on the simulator with per-thread state.
pub trait SimQueue: Sized {
    /// Human-readable series name (matches the paper's legend).
    const NAME: &'static str;

    /// Creates the queue in the setup phase; returns its descriptor base.
    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64;

    /// Re-attaches a measured thread to the published queue.
    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self;

    /// Enqueues a value (nonzero, below the basket element max).
    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64);

    /// Dequeues a value.
    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64>;
}

/// SBQ-HTM: scalable basket + TxCAS (the contribution).
pub struct SbqHtmSim {
    q: ModularQueue<SbqBasket, TxCas>,
    st: EnqueuerState,
}

impl SimQueue for SbqHtmSim {
    const NAME: &'static str = "SBQ-HTM";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        ModularQueue::new(ctx, p.basket(), TxCas::new(p.txcas), p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self {
        let _ = ctx;
        SbqHtmSim {
            q: ModularQueue::from_base(base, p.basket(), TxCas::new(p.txcas), p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// SBQ-CAS: scalable basket + delayed plain CAS (the control).
pub struct SbqCasSim {
    q: ModularQueue<SbqBasket, DelayedCas>,
    st: EnqueuerState,
}

impl SimQueue for SbqCasSim {
    const NAME: &'static str = "SBQ-CAS";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        let strat = DelayedCas {
            delay_cycles: p.delay_cycles,
        };
        ModularQueue::new(ctx, p.basket(), strat, p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self {
        let _ = ctx;
        let strat = DelayedCas {
            delay_cycles: p.delay_cycles,
        };
        SbqCasSim {
            q: ModularQueue::from_base(base, p.basket(), strat, p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// SBQ-HTM with the experimental striped basket (the paper's §8 future
/// work: scalable dequeues). Compared against the stock basket by the
/// `ablate-deq` driver.
pub struct SbqStripedSim {
    q: ModularQueue<sbq::StripedBasket, TxCas>,
    st: EnqueuerState,
}

impl SbqStripedSim {
    fn basket(p: &QueueParams) -> sbq::StripedBasket {
        sbq::StripedBasket::with_inserters(p.basket_capacity, p.enqueuers.min(p.basket_capacity))
    }
}

impl SimQueue for SbqStripedSim {
    const NAME: &'static str = "SBQ-Striped";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        ModularQueue::new(ctx, Self::basket(p), TxCas::new(p.txcas), p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self {
        let _ = ctx;
        SbqStripedSim {
            q: ModularQueue::from_base(
                base,
                Self::basket(p),
                TxCas::new(p.txcas),
                p.queue_config(),
            ),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// BQ-Original: LIFO sealed basket + plain CAS.
pub struct BqOriginalSim {
    q: baselines::BqOriginal,
    st: EnqueuerState,
}

impl SimQueue for BqOriginalSim {
    const NAME: &'static str = "BQ-Original";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        baselines::new_bq_original(ctx, p.queue_config()).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self {
        let _ = ctx;
        BqOriginalSim {
            q: ModularQueue::from_base(base, baselines::LifoBasket, StandardCas, p.queue_config()),
            st: EnqueuerState::default(),
        }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.st, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// WF-Queue: the FAA-based comparator.
pub struct WfSim {
    q: WfQueue,
    h: WfHandle,
}

impl SimQueue for WfSim {
    const NAME: &'static str = "WF-Queue";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        WfQueue::new(ctx, p.max_threads, p.reclaim).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, p: &QueueParams) -> Self {
        let q = WfQueue::from_base(base, p.max_threads, p.reclaim);
        let h = q.handle(ctx);
        WfSim { q, h }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.h, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx, &mut self.h)
    }
}

/// CC-Queue: the combining comparator.
pub struct CcSim {
    q: CcQueue,
    h: CcHandle,
}

impl SimQueue for CcSim {
    const NAME: &'static str = "CC-Queue";

    fn create(ctx: &mut SimCtx, _p: &QueueParams) -> u64 {
        CcQueue::new(ctx).base()
    }

    fn attach(base: u64, ctx: &mut SimCtx, _p: &QueueParams) -> Self {
        let q = CcQueue::from_base(base);
        let h = q.handle(ctx);
        CcSim { q, h }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, &mut self.h, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx, &mut self.h)
    }
}

/// Michael–Scott: the classic base case (not in the paper's figures but
/// useful context and a framework cross-check).
pub struct MsSim {
    q: MsQueue,
}

impl SimQueue for MsSim {
    const NAME: &'static str = "MS-Queue";

    fn create(ctx: &mut SimCtx, p: &QueueParams) -> u64 {
        MsQueue::new(ctx, p.max_threads, p.reclaim).base()
    }

    fn attach(base: u64, _ctx: &mut SimCtx, p: &QueueParams) -> Self {
        MsSim {
            q: MsQueue::from_base(base, p.max_threads, p.reclaim),
        }
    }

    fn enqueue(&mut self, ctx: &mut SimCtx, v: u64) {
        self.q.enqueue(ctx, v)
    }

    fn dequeue(&mut self, ctx: &mut SimCtx) -> Option<u64> {
        self.q.dequeue(ctx)
    }
}

/// The benchmark suite's queue selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    SbqHtm,
    SbqCas,
    /// The experimental striped-basket SBQ (§8 future work).
    SbqStriped,
    BqOriginal,
    WfQueue,
    CcQueue,
    MsQueue,
}

impl QueueKind {
    /// The queues of the paper's Figures 5–7, in legend order.
    pub const PAPER_SET: [QueueKind; 5] = [
        QueueKind::BqOriginal,
        QueueKind::CcQueue,
        QueueKind::SbqCas,
        QueueKind::SbqHtm,
        QueueKind::WfQueue,
    ];

    /// Series name.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::SbqHtm => SbqHtmSim::NAME,
            QueueKind::SbqCas => SbqCasSim::NAME,
            QueueKind::SbqStriped => SbqStripedSim::NAME,
            QueueKind::BqOriginal => BqOriginalSim::NAME,
            QueueKind::WfQueue => WfSim::NAME,
            QueueKind::CcQueue => CcSim::NAME,
            QueueKind::MsQueue => MsSim::NAME,
        }
    }

    /// Parses a series name (case-insensitive, dashes optional).
    pub fn parse(s: &str) -> Option<QueueKind> {
        let k = s.to_lowercase().replace(['-', '_'], "");
        Some(match k.as_str() {
            "sbqhtm" | "sbq" => QueueKind::SbqHtm,
            "sbqcas" => QueueKind::SbqCas,
            "sbqstriped" | "striped" => QueueKind::SbqStriped,
            "bqoriginal" | "bq" => QueueKind::BqOriginal,
            "wfqueue" | "wf" => QueueKind::WfQueue,
            "ccqueue" | "cc" => QueueKind::CcQueue,
            "msqueue" | "ms" => QueueKind::MsQueue,
            _ => return None,
        })
    }
}
