//! # simfuzz — deterministic schedule-exploration fuzzer
//!
//! Randomized concurrent-queue workloads on the coherence simulator,
//! with fault injection, full linearizability checking, and shrinking of
//! failures to replayable text artifacts.
//!
//! One **seed** determines one run completely ([`FuzzPlan::derive`]):
//! the queue under test (rotating over every implementation in the
//! tree), thread count, per-thread op streams, and the perturbation
//! knobs — spurious-abort probability, transactional capacity limit,
//! delay-jitter extremes, scheduler-choice perturbation, topology, and
//! the §3.4.1 microarchitectural fix. The run records every operation
//! through [`linearize::Recorder`] and checks the merged history with
//! the complete (pattern + Wing&Gong search) checker.
//!
//! On violation, [`shrink_plan`] greedily minimizes the plan (fewer ops,
//! fewer threads, fewer fault knobs) while preserving the violation
//! kind, minimizes the witness history event-by-event, and the campaign
//! driver writes a `fuzz-artifacts/<queue>-seed<n>.repro` file that
//! `simctl fuzz --repro` replays bit-exactly.

pub mod artifact;
pub mod plan;
pub mod run;
pub mod shrink;
pub mod simq;

pub use artifact::{
    parse_artifact, read_artifact, render_artifact, write_artifact, Artifact, ARTIFACT_VERSION,
};
pub use plan::{FuzzPlan, FUZZ_QUEUES};
pub use run::{run_plan, RunOutcome};
pub use shrink::{shrink_plan, ShrinkOutcome, DEFAULT_SHRINK_BUDGET};

use linearize::Violation;
use simq::QueueKind;
use std::path::{Path, PathBuf};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of consecutive seeds to run.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Pin every run to one queue instead of rotating over
    /// [`FUZZ_QUEUES`].
    pub queue: Option<QueueKind>,
    /// Where to write reproducer artifacts for failures; `None` skips
    /// writing (failures are still shrunk and reported).
    pub artifacts_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 64,
            start_seed: 0,
            queue: None,
            artifacts_dir: Some(PathBuf::from("fuzz-artifacts")),
        }
    }
}

/// One shrunk, recorded failure.
#[derive(Debug)]
pub struct CampaignFailure {
    /// The seed whose derived plan failed.
    pub seed: u64,
    /// The *minimized* reproducer (not the original derived plan).
    pub shrunk: ShrinkOutcome,
    /// Artifact path, if an artifacts dir was configured and the write
    /// succeeded.
    pub artifact: Option<PathBuf>,
}

/// Campaign result.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Seeds run.
    pub runs: u64,
    /// Failures, shrunk; empty means the campaign was clean.
    pub failures: Vec<CampaignFailure>,
}

/// Runs `cfg.seeds` consecutive plans; shrinks every failure and writes
/// its reproducer artifact. `progress` is called after each seed with
/// `(seed, queue name, violation if any)` — pass `|_, _, _| {}` when
/// silence is wanted.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(u64, &'static str, Option<&Violation>),
) -> CampaignReport {
    let mut report = CampaignReport::default();
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        let plan = FuzzPlan::derive(seed, cfg.queue);
        let out = run_plan(&plan);
        report.runs += 1;
        progress(seed, plan.queue.name(), out.violation.as_ref());
        if out.violation.is_none() {
            continue;
        }
        // Re-running inside shrink_plan is deterministic, so the
        // confirmed violation is the one we just saw.
        let shrunk = shrink_plan(&plan, DEFAULT_SHRINK_BUDGET)
            .expect("deterministic rerun of a failing plan must fail again");
        let artifact = cfg.artifacts_dir.as_deref().and_then(|dir| {
            write_artifact(dir, &shrunk.plan, &shrunk.violation, &shrunk.witness).ok()
        });
        report.failures.push(CampaignFailure {
            seed,
            shrunk,
            artifact,
        });
    }
    report
}

/// Result of replaying an artifact.
#[derive(Debug)]
pub struct ReproOutcome {
    /// The plan that was replayed.
    pub plan: FuzzPlan,
    /// Violation kind token recorded in the artifact.
    pub expected: String,
    /// What the replay actually produced.
    pub violation: Option<Violation>,
    /// True iff the replay produced a violation of the recorded kind.
    pub reproduced: bool,
    /// Replay fingerprint (for determinism checks across replays).
    pub fingerprint: String,
}

/// Replays a reproducer artifact and checks it still fails the same way.
pub fn reproduce(path: &Path) -> Result<ReproOutcome, String> {
    let art = read_artifact(path)?;
    let out = run_plan(&art.plan);
    let reproduced = out
        .violation
        .as_ref()
        .is_some_and(|v| artifact::violation_token(v) == art.violation);
    Ok(ReproOutcome {
        plan: art.plan,
        expected: art.violation,
        violation: out.violation,
        reproduced,
        fingerprint: out.fingerprint,
    })
}
