//! # simfuzz — deterministic schedule-exploration fuzzer
//!
//! Randomized concurrent-queue workloads with fault injection, full
//! linearizability checking, and shrinking of failures to replayable
//! text artifacts — on either execution backend of the
//! [`harness`] crate: the coherence simulator (default) or native
//! atomics (`--backend native`).
//!
//! One **seed** determines one run completely ([`FuzzPlan::derive`]):
//! the queue under test (rotating over every implementation in the
//! tree), thread count, per-thread op streams, and the perturbation
//! knobs — spurious-abort probability, transactional capacity limit,
//! delay-jitter extremes, scheduler-choice perturbation, topology, and
//! the §3.4.1 microarchitectural fix. The run records every operation
//! through [`linearize::Recorder`] (via [`harness::record_history`]) and
//! checks the merged history with the complete (pattern + Wing&Gong
//! search) checker.
//!
//! On the simulator a violation is shrunk: [`shrink_plan`] greedily
//! minimizes the plan (fewer ops, fewer threads, fewer fault knobs)
//! while preserving the violation kind, minimizes the witness history
//! event-by-event, and the campaign driver writes a
//! `fuzz-artifacts/<queue>-seed<n>.repro` file that `simctl fuzz
//! --repro` replays bit-exactly.
//!
//! Campaigns fan their seeds across a [`runner`] job pool
//! ([`CampaignConfig::jobs`]); since every plan is self-contained and
//! deterministic, the only serial part is the in-order merge, which
//! keeps reports and artifacts byte-identical to a serial campaign.
//!
//! On the native backend each seed's plan runs on real OS threads *and*
//! on the simulator, both draining the queue after the op phase; the
//! campaign fails a seed if either history is non-linearizable or the
//! drained dequeue multisets disagree. Native schedules are not
//! reproducible, so a native-only failure is reported unshrunken; when
//! the simulator reproduces the violation deterministically, the usual
//! shrink-and-artifact pipeline runs.

pub mod artifact;
pub mod plan;
pub mod run;
pub mod shrink;

pub use artifact::{
    parse_artifact, read_artifact, render_artifact, write_artifact, Artifact, ARTIFACT_VERSION,
};
pub use harness::{BackendKind, QueueKind, QueueParams};
pub use plan::{FuzzPlan, FUZZ_QUEUES};
pub use run::{
    crosscheck_plan, run_plan, run_plan_native, run_plan_sim, trace_plan, CrosscheckOutcome,
    RunOutcome,
};
pub use shrink::{shrink_plan, ShrinkOutcome, DEFAULT_SHRINK_BUDGET};

use linearize::Violation;
use std::path::{Path, PathBuf};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of consecutive seeds to run.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Pin every run to one queue instead of rotating over
    /// [`FUZZ_QUEUES`].
    pub queue: Option<QueueKind>,
    /// Execution backend. [`BackendKind::Native`] cross-checks every seed
    /// against a drained simulator run of the same plan.
    pub backend: BackendKind,
    /// Where to write reproducer artifacts for failures; `None` skips
    /// writing (failures are still shrunk and reported).
    pub artifacts_dir: Option<PathBuf>,
    /// Worker threads for the seed pool: each seed runs (and shrinks) as
    /// one independent job. `0` means auto ([`runner::default_jobs`]).
    /// Results are merged in **seed order** whatever the worker count,
    /// so reports, progress callbacks, and artifact files are
    /// byte-identical to a `jobs = 1` run.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 64,
            start_seed: 0,
            queue: None,
            backend: BackendKind::Sim,
            artifacts_dir: Some(PathBuf::from("fuzz-artifacts")),
            jobs: 1,
        }
    }
}

/// Why a seed failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A recorded history failed the linearizability checker; the name
    /// tells which backend's history ("sim" / "native").
    Violation {
        backend: &'static str,
        violation: Violation,
    },
    /// Native cross-check: the drained dequeue multisets of the sim and
    /// native runs disagreed (sizes attached for diagnostics).
    MultisetMismatch { sim: usize, native: usize },
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Violation { backend, violation } => {
                write!(f, "[{backend}] {violation}")
            }
            FailureKind::MultisetMismatch { sim, native } => write!(
                f,
                "drained multisets disagree: sim dequeued {sim} values, native {native}"
            ),
        }
    }
}

/// One recorded campaign failure.
#[derive(Debug)]
pub struct CampaignFailure {
    /// The seed whose derived plan failed.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// The minimized reproducer, present when the (deterministic)
    /// simulator reproduces the failure; a native-only failure cannot be
    /// shrunk and carries `None`.
    pub shrunk: Option<ShrinkOutcome>,
    /// Artifact path, if the failure was shrunk, an artifacts dir was
    /// configured, and the write succeeded.
    pub artifact: Option<PathBuf>,
    /// Chrome trace of the shrunk plan (`<artifact>.trace`), written
    /// beside the reproducer so the violating schedule can be inspected
    /// on a timeline (Perfetto / `chrome://tracing`).
    pub trace: Option<PathBuf>,
}

/// Campaign result.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Seeds run.
    pub runs: u64,
    /// Failures, in ascending seed order (the pool merges in submission
    /// order, so "the first failure" is always the lowest failing seed,
    /// not the first job to finish); empty means the campaign was clean.
    pub failures: Vec<CampaignFailure>,
    /// Job-pool measurements: per-seed wall latencies and worker spans.
    /// `None` only on a default-constructed report.
    pub pool: Option<runner::JobReport>,
}

/// Everything one seed's job computes away from the merge path. The
/// expensive work — the run itself, shrinking, and the shrunk plan's
/// trace re-run — happens here, inside the worker; only deterministic
/// rendering and file writes are left for the in-order merge.
struct SeedOutcome {
    seed: u64,
    queue_name: &'static str,
    kind: Option<FailureKind>,
    shrunk: Option<ShrinkOutcome>,
    /// Chrome trace of the shrunk plan, pre-rendered (deterministic, so
    /// the bytes cannot depend on which worker produced them).
    trace_text: Option<String>,
}

fn run_seed(
    seed: u64,
    queue: Option<QueueKind>,
    backend: BackendKind,
    want_trace: bool,
) -> SeedOutcome {
    let plan = FuzzPlan::derive(seed, queue);
    let kind = match backend {
        BackendKind::Sim => run_plan(&plan)
            .violation
            .map(|violation| FailureKind::Violation {
                backend: "sim",
                violation,
            }),
        BackendKind::Native => {
            let out = crosscheck_plan(&plan);
            if let Some(violation) = out.native.violation {
                Some(FailureKind::Violation {
                    backend: "native",
                    violation,
                })
            } else if let Some(violation) = out.sim.violation {
                Some(FailureKind::Violation {
                    backend: "sim",
                    violation,
                })
            } else if !out.multisets_agree {
                Some(FailureKind::MultisetMismatch {
                    sim: harness::dequeue_multiset(&out.sim.history).len(),
                    native: harness::dequeue_multiset(&out.native.history).len(),
                })
            } else {
                None
            }
        }
    };
    let queue_name = plan.queue.name();
    let Some(kind) = kind else {
        return SeedOutcome {
            seed,
            queue_name,
            kind: None,
            shrunk: None,
            trace_text: None,
        };
    };
    // Shrinking replays on the simulator, which is deterministic;
    // it reproduces (and hence shrinks) every sim failure, while a
    // native-only failure yields `None` and is reported as-is.
    let shrunk = shrink_plan(&plan, DEFAULT_SHRINK_BUDGET);
    // The timeline companion: the shrunk plan re-run with
    // observability on (which cannot change the schedule).
    let trace_text = match (&shrunk, want_trace) {
        (Some(s), true) => Some(trace_plan(&s.plan)),
        _ => None,
    };
    SeedOutcome {
        seed,
        queue_name,
        kind: Some(kind),
        shrunk,
        trace_text,
    }
}

/// Runs `cfg.seeds` consecutive plans on `cfg.backend`, fanned across
/// `cfg.jobs` worker threads; shrinks every sim-reproducible failure and
/// writes its reproducer artifact. `progress` is called once per seed in
/// **ascending seed order** with `(seed, queue name, failure if any)` —
/// pass `|_, _, _| {}` when silence is wanted. Artifact writes happen on
/// the merge path in the same order, so the artifact directory is
/// byte-identical for any worker count.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(u64, &'static str, Option<&FailureKind>),
) -> CampaignReport {
    let jobs = if cfg.jobs == 0 {
        runner::default_jobs()
    } else {
        cfg.jobs
    };
    let want_trace = cfg.artifacts_dir.is_some();
    let tasks: Vec<_> = (cfg.start_seed..cfg.start_seed + cfg.seeds)
        .map(|seed| {
            let (queue, backend) = (cfg.queue, cfg.backend);
            move || run_seed(seed, queue, backend, want_trace)
        })
        .collect();
    let mut report = CampaignReport::default();
    let pool = runner::run_ordered(jobs, tasks, |_, out: SeedOutcome| {
        report.runs += 1;
        progress(out.seed, out.queue_name, out.kind.as_ref());
        let Some(kind) = out.kind else { return };
        let (artifact, trace) = match (&out.shrunk, cfg.artifacts_dir.as_deref()) {
            (Some(s), Some(dir)) => {
                let artifact = write_artifact(dir, &s.plan, &s.violation, &s.witness).ok();
                let trace = match (&artifact, &out.trace_text) {
                    (Some(p), Some(text)) => {
                        let tp = p.with_extension("trace");
                        std::fs::write(&tp, text).ok().map(|()| tp)
                    }
                    _ => None,
                };
                (artifact, trace)
            }
            _ => (None, None),
        };
        report.failures.push(CampaignFailure {
            seed: out.seed,
            kind,
            shrunk: out.shrunk,
            artifact,
            trace,
        });
    });
    report.pool = Some(pool);
    report
}

/// Result of replaying an artifact.
#[derive(Debug)]
pub struct ReproOutcome {
    /// The plan that was replayed.
    pub plan: FuzzPlan,
    /// Violation kind token recorded in the artifact.
    pub expected: String,
    /// What the replay actually produced.
    pub violation: Option<Violation>,
    /// True iff the replay produced a violation of the recorded kind.
    pub reproduced: bool,
    /// Replay fingerprint (for determinism checks across replays).
    pub fingerprint: String,
}

/// Replays a reproducer artifact (on the simulator — artifacts are only
/// written for deterministic failures) and checks it still fails the
/// same way.
pub fn reproduce(path: &Path) -> Result<ReproOutcome, String> {
    let art = read_artifact(path)?;
    let out = run_plan(&art.plan);
    let reproduced = out
        .violation
        .as_ref()
        .is_some_and(|v| artifact::violation_token(v) == art.violation);
    Ok(ReproOutcome {
        plan: art.plan,
        expected: art.violation,
        violation: out.violation,
        reproduced,
        fingerprint: out.fingerprint,
    })
}
