//! Plan-level shrinking: reduces a failing [`FuzzPlan`] to a minimal
//! reproducer that still triggers the *same kind* of violation.
//!
//! Strategy (greedy, to fixpoint, bounded by a run budget):
//!
//! 1. shrink the workload — halve then decrement `ops_per_thread`,
//!    decrement `threads` (never below 2: a linearizability violation
//!    needs contention);
//! 2. discharge fault knobs one at a time — spurious aborts, capacity
//!    limit, jitter, scheduler perturbation, dual-socket topology, and
//!    the component actors (preemption source, timer pacing). A knob
//!    that survives zeroing was not needed to trigger the bug, so the
//!    artifact records only the faults that matter;
//! 3. hand the final witness history to [`linearize::shrink_history`]
//!    for event-level 1-minimization.
//!
//! Every candidate is validated by a full deterministic re-run, and a
//! mutation is kept only if the violation's `std::mem::discriminant`
//! matches the original — shrinking must not wander onto a different bug.

use crate::plan::FuzzPlan;
use crate::run::run_plan;
use linearize::{shrink_history, Event, Violation};

/// Default cap on the number of candidate re-runs one shrink may spend.
/// Plans are small (≤ 6 threads × 24 ops), so this is generous: greedy
/// shrinking converges in well under 100 runs in practice.
pub const DEFAULT_SHRINK_BUDGET: usize = 300;

/// A minimized reproducer.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The smallest plan found that still fails with the original kind.
    pub plan: FuzzPlan,
    /// The violation the minimized plan produces.
    pub violation: Violation,
    /// Event-level minimized witness history from the final run.
    pub witness: Vec<Event>,
    /// Candidate runs spent (including the initial confirmation run).
    pub runs: usize,
}

/// Shrinks `plan` to a minimal same-kind reproducer. Returns `None` if
/// the plan does not fail to begin with.
pub fn shrink_plan(plan: &FuzzPlan, budget: usize) -> Option<ShrinkOutcome> {
    let first = run_plan(plan);
    let mut violation = first.violation?;
    let kind = std::mem::discriminant(&violation);
    let mut runs = 1usize;
    let mut cur = plan.clone();
    let mut history = first.history;

    // Greedy descent: after each accepted mutation, restart the pass on
    // the smaller plan (its candidate list is different). Stop at
    // fixpoint or budget.
    'outer: while runs < budget {
        for cand in candidates(&cur) {
            if runs >= budget {
                break 'outer;
            }
            let out = run_plan(&cand);
            runs += 1;
            if let Some(v) = out.violation {
                if std::mem::discriminant(&v) == kind {
                    cur = cand;
                    violation = v;
                    history = out.history;
                    continue 'outer;
                }
            }
        }
        break; // full pass without progress: fixpoint
    }

    // Event-level minimization of the witness. Only adopt the result if
    // it preserved the kind (shrink_history tracks its own verdict).
    let witness = match shrink_history(&history) {
        Some((min, v)) if std::mem::discriminant(&v) == kind => {
            violation = v;
            min
        }
        _ => history,
    };

    Some(ShrinkOutcome {
        plan: cur,
        violation,
        witness,
        runs,
    })
}

/// Single-step mutations of `p`, most aggressive first.
fn candidates(p: &FuzzPlan) -> Vec<FuzzPlan> {
    let mut out = Vec::new();
    if p.ops_per_thread > 1 {
        let mut c = p.clone();
        c.ops_per_thread = (p.ops_per_thread / 2).max(1);
        out.push(c);
        if p.ops_per_thread > 2 {
            let mut c = p.clone();
            c.ops_per_thread -= 1;
            out.push(c);
        }
    }
    if p.threads > 2 {
        let mut c = p.clone();
        c.threads -= 1;
        out.push(c);
    }
    if p.spurious_ppm != 0 {
        let mut c = p.clone();
        c.spurious_ppm = 0;
        out.push(c);
    }
    if p.capacity_lines != 0 {
        let mut c = p.clone();
        c.capacity_lines = 0;
        out.push(c);
    }
    if p.jitter_pct != 0 {
        let mut c = p.clone();
        c.jitter_pct = 0;
        out.push(c);
    }
    if p.sched_perturb != 0 {
        let mut c = p.clone();
        c.sched_perturb = 0;
        out.push(c);
    }
    if p.dual_socket {
        let mut c = p.clone();
        c.dual_socket = false;
        out.push(c);
    }
    // Component actors are fault knobs too: a bug that survives without
    // the preemption source or the timer pacing should record neither.
    if p.preempt_period != 0 {
        let mut c = p.clone();
        c.preempt_period = 0;
        out.push(c);
    }
    if p.timer_period != 0 {
        let mut c = p.clone();
        c.timer_period = 0;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_does_not_shrink() {
        // Seed 1 runs clean (covered by run.rs tests), so there is
        // nothing to shrink.
        let plan = FuzzPlan::derive(1, None);
        assert!(shrink_plan(&plan, DEFAULT_SHRINK_BUDGET).is_none());
    }

    #[test]
    fn candidates_strictly_simplify() {
        for seed in 0..16 {
            let p = FuzzPlan::derive(seed, None);
            for c in candidates(&p) {
                assert_ne!(c, p, "seed {seed}: candidate equals its parent");
                assert!(c.threads >= 2);
                assert!(c.ops_per_thread >= 1);
            }
        }
    }
}
