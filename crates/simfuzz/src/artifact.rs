//! Reproducer artifacts: a failing (shrunk) plan serialized as a small
//! `key value` text file under `fuzz-artifacts/`, replayable exactly via
//! `simctl fuzz --repro <file>`.
//!
//! The format stores every [`FuzzPlan`] field verbatim — replay builds
//! the plan *from the stored fields*, never by re-deriving from the seed,
//! so a shrunk plan (whose fields no longer match its seed's derivation)
//! round-trips exactly. All values are integers, which keeps the format
//! lossless; the violation and witness travel along as comments plus a
//! machine-checkable `violation` kind token.

use crate::plan::FuzzPlan;
use harness::QueueKind;
use linearize::{Event, Op, Violation};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Bumped whenever the plan fields or their meaning change.
/// v2 added the component-spine knobs (`preempt-period`, `preempt-cost`,
/// `timer-period`); v1 artifacts predate components and are rejected
/// rather than silently replayed without their fault model.
pub const ARTIFACT_VERSION: u64 = 2;

/// A parsed reproducer: the plan to replay plus the violation kind the
/// original run produced (for replay verification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    pub plan: FuzzPlan,
    /// Kind token of the recorded violation (see [`violation_token`]).
    pub violation: String,
}

/// Stable, machine-comparable token for a violation kind (payloads are
/// deliberately excluded: replays compare kinds, not witness values).
pub fn violation_token(v: &Violation) -> &'static str {
    match v {
        Violation::Fresh { .. } => "fresh",
        Violation::Repeat { .. } => "repeat",
        Violation::Ord { .. } => "ord",
        Violation::Wit { .. } => "wit",
        Violation::Malformed { .. } => "malformed",
        Violation::NoLinearization => "nolinearization",
    }
}

/// Lowercase dashless queue token; accepted back by [`QueueKind::parse`].
fn queue_token(q: QueueKind) -> String {
    q.name().to_lowercase().replace('-', "")
}

fn render_op(op: &Op) -> String {
    match op {
        Op::Enq(v) => format!("enq({v:#x})"),
        Op::DeqSome(v) => format!("deq -> {v:#x}"),
        Op::DeqNull => "deq -> null".to_string(),
    }
}

/// Renders the artifact text for a failing plan.
pub fn render_artifact(plan: &FuzzPlan, violation: &Violation, witness: &[Event]) -> String {
    let mut s = String::new();
    s.push_str("# simfuzz reproducer — replay with: simctl fuzz --repro <this file>\n");
    s.push_str(&format!("# {violation}\n"));
    s.push_str(&format!("version {ARTIFACT_VERSION}\n"));
    s.push_str(&format!("violation {}\n", violation_token(violation)));
    s.push_str(&format!("queue {}\n", queue_token(plan.queue)));
    s.push_str(&format!("seed {}\n", plan.seed));
    s.push_str(&format!("threads {}\n", plan.threads));
    s.push_str(&format!("ops-per-thread {}\n", plan.ops_per_thread));
    s.push_str(&format!("enq-permille {}\n", plan.enq_permille));
    s.push_str(&format!("spurious-ppm {}\n", plan.spurious_ppm));
    s.push_str(&format!("jitter-pct {}\n", plan.jitter_pct));
    s.push_str(&format!("sched-perturb {}\n", plan.sched_perturb));
    s.push_str(&format!("capacity-lines {}\n", plan.capacity_lines));
    s.push_str(&format!("dual-socket {}\n", plan.dual_socket as u64));
    s.push_str(&format!("microarch-fix {}\n", plan.microarch_fix as u64));
    s.push_str(&format!("machine-seed {}\n", plan.machine_seed));
    s.push_str(&format!("preempt-period {}\n", plan.preempt_period));
    s.push_str(&format!("preempt-cost {}\n", plan.preempt_cost));
    s.push_str(&format!("timer-period {}\n", plan.timer_period));
    s.push_str("# minimized witness (thread op [invoke,ret]):\n");
    for e in witness {
        s.push_str(&format!(
            "#   t{} {} [{},{}]\n",
            e.thread,
            render_op(&e.op),
            e.invoke,
            e.ret
        ));
    }
    s
}

/// Writes the artifact into `dir` (created if absent) as
/// `<queue>-seed<seed>.repro` and returns the path.
pub fn write_artifact(
    dir: &Path,
    plan: &FuzzPlan,
    violation: &Violation,
    witness: &[Event],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "{}-seed{}.repro",
        queue_token(plan.queue),
        plan.seed
    ));
    std::fs::write(&path, render_artifact(plan, violation, witness))?;
    Ok(path)
}

/// Parses artifact text back into a replayable plan.
pub fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("malformed line: {line:?}"))?;
        kv.insert(k, v.trim());
    }
    let int = |key: &str| -> Result<u64, String> {
        kv.get(key)
            .ok_or_else(|| format!("missing key: {key}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad value for {key}: {e}"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        match *kv.get(key).ok_or_else(|| format!("missing key: {key}"))? {
            "0" | "false" => Ok(false),
            "1" | "true" => Ok(true),
            other => Err(format!("bad flag for {key}: {other:?}")),
        }
    };

    let version = int("version")?;
    if version != ARTIFACT_VERSION {
        return Err(format!(
            "unsupported artifact version {version} (expected {ARTIFACT_VERSION})"
        ));
    }
    let queue_name = kv.get("queue").ok_or("missing key: queue")?;
    let queue =
        QueueKind::parse(queue_name).ok_or_else(|| format!("unknown queue: {queue_name:?}"))?;
    let violation = kv
        .get("violation")
        .ok_or("missing key: violation")?
        .to_string();

    Ok(Artifact {
        plan: FuzzPlan {
            seed: int("seed")?,
            queue,
            threads: int("threads")? as usize,
            ops_per_thread: int("ops-per-thread")?,
            enq_permille: int("enq-permille")?,
            spurious_ppm: int("spurious-ppm")?,
            jitter_pct: int("jitter-pct")?,
            sched_perturb: int("sched-perturb")?,
            capacity_lines: int("capacity-lines")?,
            dual_socket: flag("dual-socket")?,
            microarch_fix: flag("microarch-fix")?,
            machine_seed: int("machine-seed")?,
            preempt_period: int("preempt-period")?,
            preempt_cost: int("preempt-cost")?,
            timer_period: int("timer-period")?,
        },
        violation,
    })
}

/// Reads and parses an artifact file.
pub fn read_artifact(path: &Path) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_artifact(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_roundtrip_through_text() {
        for seed in 0..32 {
            let mut plan = FuzzPlan::derive(seed, None);
            // A shrunk plan's fields diverge from the seed derivation;
            // the artifact must carry the fields, not the seed.
            plan.ops_per_thread = 2;
            plan.threads = 2;
            plan.spurious_ppm = 0;
            let v = Violation::Repeat { value: 7 };
            let text = render_artifact(&plan, &v, &[]);
            let art = parse_artifact(&text).expect("parse");
            assert_eq!(art.plan, plan);
            assert_eq!(art.violation, "repeat");
        }
    }

    #[test]
    fn queue_tokens_parse_back() {
        for q in crate::plan::FUZZ_QUEUES {
            assert_eq!(QueueKind::parse(&queue_token(q)), Some(q));
        }
    }

    #[test]
    fn parse_rejects_missing_and_malformed() {
        assert!(parse_artifact("").is_err());
        let plan = FuzzPlan::derive(0, None);
        let good = render_artifact(&plan, &Violation::NoLinearization, &[]);
        let stale = good.replace("version 2", "version 999");
        assert!(parse_artifact(&stale).unwrap_err().contains("version"));
        let broken = good.replace("threads", "thread-count");
        assert!(parse_artifact(&broken).is_err());
    }

    #[test]
    fn parse_rejects_pre_component_v1_artifacts() {
        // A v1 artifact carries neither the version nor the component
        // knobs; both defects must be caught, version first.
        let plan = FuzzPlan::derive(3, None);
        let good = render_artifact(&plan, &Violation::NoLinearization, &[]);
        let v1 = good
            .replace("version 2", "version 1")
            .lines()
            .filter(|l| {
                !l.starts_with("preempt-period")
                    && !l.starts_with("preempt-cost")
                    && !l.starts_with("timer-period")
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(parse_artifact(&v1).unwrap_err().contains("version 1"));
        // Even with a forged current version, the missing knobs reject.
        let forged = v1.replace("version 1", "version 2");
        assert!(parse_artifact(&forged)
            .unwrap_err()
            .contains("preempt-period"));
    }

    #[test]
    fn parse_rejects_corrupt_component_knobs() {
        let plan = FuzzPlan::derive(5, None);
        let good = render_artifact(&plan, &Violation::NoLinearization, &[]);
        let line = format!("timer-period {}", plan.timer_period);
        let corrupt = good.replace(line.as_str(), "timer-period soon");
        assert!(parse_artifact(&corrupt)
            .unwrap_err()
            .contains("timer-period"));
    }
}
