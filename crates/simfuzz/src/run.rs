//! The fuzz runner: executes one [`FuzzPlan`] through the backend-generic
//! [`harness::record_history`] driver and checks the merged history with
//! the full (pattern + search) linearizability checker.
//!
//! Reproducibility contract (simulator backend): the runner consumes
//! *only* the plan. Thread op streams come from the plan's seed, machine
//! noise from the plan's machine seed, and the merged history is
//! canonically sorted — so two runs of equal plans produce identical
//! outcomes down to the fingerprint, on either scheduler.
//!
//! The native backend runs the *same plan* on real OS threads and real
//! atomics. Native interleavings are not reproducible, so native
//! fingerprints vary run to run; what is invariant — and what
//! [`crosscheck_plan`] verifies — is linearizability of every recorded
//! history plus, for drained runs, the dequeued-value multiset, which is
//! fully determined by the plan on any correct queue.

use crate::plan::FuzzPlan;
use coherence::RunReport;
use harness::{
    dequeue_multiset, history_digest, record_history, DriveSpec, NativeBackend, QueueParams,
    SimBackend,
};
use linearize::{check_queue_linearizable, Event, Violation};
use obs::{ObsSink, TraceMeta};
use sbq::txcas::TxCasParams;
use std::sync::Arc;

/// Result of one fuzz run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The complete recorded history, canonically sorted.
    pub history: Vec<Event>,
    /// Checker verdict; `None` means linearizable.
    pub violation: Option<Violation>,
    /// Compact digest of the observable run result (times, counters,
    /// history) for determinism comparisons. Stable across runs on the
    /// simulator; schedule-dependent on native.
    pub fingerprint: String,
    /// End time in cycles (simulated or nominal wall-clock).
    pub end_time: u64,
}

/// Queue parameters used for fuzzing: sized to the plan's thread count,
/// with TxCAS delays shortened (correctness is timing-independent; short
/// delays buy more schedules per simulated cycle) and few enough retries
/// that injected-abort storms reach the fallback path quickly.
fn queue_params(plan: &FuzzPlan) -> QueueParams {
    QueueParams {
        max_threads: plan.threads,
        enqueuers: plan.threads,
        basket_capacity: plan.threads.max(44),
        txcas: TxCasParams {
            intra_delay: 200,
            post_abort_delay: 40,
            max_retries: 12,
        },
        delay_cycles: 200,
        reclaim: true,
    }
}

fn spec(plan: &FuzzPlan, drain: bool) -> DriveSpec {
    let mut spec = DriveSpec::new(
        queue_params(plan),
        (0..plan.threads).map(|t| plan.thread_ops(t)).collect(),
        drain,
    );
    if plan.timer_period > 0 {
        // Thread 0 is timer-paced: one op per `TickGate` release (the
        // plan's machine() schedules exactly `ops_per_thread` of them).
        // On native — no tick source — `wait_tick` returns immediately.
        let mut pace = vec![0u64; plan.threads];
        pace[0] = 1;
        spec.pace = pace;
    }
    spec
}

fn sim_fingerprint(report: &RunReport, history: &[Event]) -> String {
    format!(
        "end={} core_end={:?} commits={} conflicts={} explicit={} spurious={} capacity={} \
         interrupt={} fired={} tripped={} stalls={} hist={}#{:016x}",
        report.end_time,
        report.core_end,
        report.stats.tx_commits,
        report.stats.tx_aborts_conflict,
        report.stats.tx_aborts_explicit,
        report.stats.tx_aborts_spurious,
        report.stats.tx_aborts_capacity,
        report.stats.tx_aborts_interrupt,
        report.stats.interrupts_fired,
        report.stats.tripped_writers,
        report.stats.stalls,
        history.len(),
        history_digest(history),
    )
}

/// Runs one plan on the simulator with the historical (no-drain) shape:
/// this is the deterministic path the campaign, shrinker, and artifact
/// replay are built on.
pub fn run_plan(plan: &FuzzPlan) -> RunOutcome {
    run_plan_sim(plan, false)
}

/// Runs one plan on the simulator, optionally draining the queue after an
/// end-of-ops barrier (drained histories conserve elements exactly).
pub fn run_plan_sim(plan: &FuzzPlan, drain: bool) -> RunOutcome {
    let mut backend = SimBackend::new(plan.machine());
    let out = record_history(&mut backend, plan.queue, spec(plan, drain));
    let report = out.report.sim.expect("sim backend always carries a report");
    let violation = check_queue_linearizable(&out.history).err();
    let fingerprint = sim_fingerprint(&report, &out.history);
    RunOutcome {
        history: out.history,
        violation,
        fingerprint,
        end_time: report.end_time,
    }
}

/// Re-runs one plan on the simulator with observability attached (op
/// spans per core plus the machine's coherence/HTM trace) and returns
/// the Chrome trace-event JSON document — the campaign writes this next
/// to each `.repro` so a violation can be *looked at* on a timeline,
/// not just replayed. Uses the same no-drain shape as [`run_plan`], so
/// the traced schedule is exactly the one the violation was found on
/// (recording cannot perturb simulated timing).
pub fn trace_plan(plan: &FuzzPlan) -> String {
    let mut cfg = plan.machine();
    cfg.trace = true;
    let mut backend = SimBackend::new(cfg);
    let sink = Arc::new(ObsSink::default());
    let mut s = spec(plan, false);
    s.obs = Some(Arc::clone(&sink));
    let out = record_history(&mut backend, plan.queue, s);
    let report = out.report.sim.expect("sim backend always carries a report");
    let meta = TraceMeta {
        backend: "sim",
        label: format!(
            "fuzz {} seed {} ({} threads)",
            plan.queue.name(),
            plan.seed,
            plan.threads
        ),
        fastpath: Some((report.stats.fastpath_hits, report.stats.fastpath_fallbacks)),
        hops: Some((report.stats.hops_intra, report.stats.hops_cross)),
    };
    obs::export(&sink.take_logs(), &report.trace, &meta)
}

/// Runs one plan on native atomics (real OS threads). The plan's
/// machine-level fault knobs (spurious aborts, capacity, jitter,
/// scheduler perturbation) have no native equivalent and are ignored;
/// the op streams, queue kind, and thread count are honored exactly.
pub fn run_plan_native(plan: &FuzzPlan, drain: bool) -> RunOutcome {
    let mut backend = NativeBackend::default();
    let out = record_history(&mut backend, plan.queue, spec(plan, drain));
    let violation = check_queue_linearizable(&out.history).err();
    let fingerprint = format!(
        "backend=native end={} hist={}#{:016x}",
        out.report.end_time,
        out.history.len(),
        history_digest(&out.history),
    );
    RunOutcome {
        violation,
        fingerprint,
        end_time: out.report.end_time,
        history: out.history,
    }
}

/// One plan run on both backends with draining, plus the cross-backend
/// comparison of the drained dequeue multisets.
#[derive(Debug)]
pub struct CrosscheckOutcome {
    pub sim: RunOutcome,
    pub native: RunOutcome,
    /// True iff both backends drained the exact same multiset of values —
    /// a schedule-independent equality on any correct queue, since the
    /// drained multiset equals the plan-determined enqueue multiset.
    pub multisets_agree: bool,
}

/// Runs `plan` on the simulator *and* on native atomics (both drained)
/// and compares the dequeued-value multisets.
pub fn crosscheck_plan(plan: &FuzzPlan) -> CrosscheckOutcome {
    let sim = run_plan_sim(plan, true);
    let native = run_plan_native(plan, true);
    let multisets_agree = dequeue_multiset(&sim.history) == dequeue_multiset(&native.history);
    CrosscheckOutcome {
        sim,
        native,
        multisets_agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::QueueKind;

    #[test]
    fn identical_plans_produce_identical_outcomes() {
        let plan = FuzzPlan::derive(3, None);
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn clean_small_campaign_over_every_queue() {
        for seed in 0..7 {
            let plan = FuzzPlan::derive(seed, None);
            // Under `planted-bug` the MS queue is *supposed* to fail;
            // tests/planted_bug.rs owns that expectation.
            if cfg!(feature = "planted-bug") && plan.queue == QueueKind::MsQueue {
                continue;
            }
            let out = run_plan(&plan);
            assert_eq!(
                out.violation,
                None,
                "seed {seed} ({}) reported a violation",
                plan.queue.name()
            );
            assert!(!out.history.is_empty());
        }
    }

    #[test]
    fn crosscheck_agrees_on_a_clean_plan() {
        let plan = FuzzPlan::derive(1, None);
        let out = crosscheck_plan(&plan);
        assert_eq!(out.sim.violation, None);
        assert_eq!(out.native.violation, None);
        assert!(out.multisets_agree);
    }

    /// Forced-preemption campaign: every queue runs under an aggressive
    /// interrupt source, the linearizability oracle must hold across the
    /// INTERRUPT-aborted-and-retried operations, and at least one seed
    /// per queue must actually observe interrupt aborts (otherwise the
    /// campaign silently stopped exercising the new fault).
    #[test]
    fn preemption_campaign_is_clean_and_observes_interrupt_aborts() {
        for (i, queue) in crate::plan::FUZZ_QUEUES.iter().enumerate() {
            if cfg!(feature = "planted-bug") && *queue == QueueKind::MsQueue {
                continue;
            }
            let mut interrupted = 0u64;
            for seed in 0..3u64 {
                let mut plan = FuzzPlan::derive(i as u64 * 31 + seed, Some(*queue));
                plan.preempt_period = 1_200;
                plan.preempt_cost = 200;
                plan.ops_per_thread = plan.ops_per_thread.max(12);
                let out = run_plan_sim(&plan, true);
                assert_eq!(
                    out.violation,
                    None,
                    "{} seed {seed} violated under preemption",
                    queue.name()
                );
                let report = run_report(&plan);
                interrupted += report.stats.tx_aborts_interrupt;
                assert!(report.stats.interrupts_fired > 0);
            }
            // Only the HTM-backed queues run transactions on the
            // simulator; everywhere else interrupts fire into plain code
            // and correctly abort nothing.
            let uses_htm = matches!(queue, QueueKind::SbqHtm | QueueKind::SbqStriped);
            assert_eq!(
                interrupted > 0,
                uses_htm,
                "{}: interrupt-abort observation disagrees with its HTM use",
                queue.name()
            );
        }
    }

    /// Timer pacing holds the oracle and actually gates thread 0.
    #[test]
    fn timer_paced_plans_are_clean_and_paced() {
        let mut plan = FuzzPlan::derive(2, Some(QueueKind::SbqHtm));
        plan.timer_period = 3_000;
        let out = run_plan_sim(&plan, true);
        assert_eq!(out.violation, None);
        let report = run_report(&plan);
        assert_eq!(report.stats.op("waittick"), plan.ops_per_thread);
        assert!(out.end_time >= plan.ops_per_thread * plan.timer_period);
        // Determinism with components attached.
        assert_eq!(out.fingerprint, run_plan_sim(&plan, true).fingerprint);
    }

    /// The sim report for one drained plan run (helper for component
    /// assertions that need raw counters, not the fingerprint).
    fn run_report(plan: &FuzzPlan) -> RunReport {
        let mut backend = SimBackend::new(plan.machine());
        let out = record_history(&mut backend, plan.queue, spec(plan, true));
        out.report.sim.expect("sim backend always carries a report")
    }
}
