//! The deterministic fuzz runner: executes one [`FuzzPlan`] on the
//! coherence simulator, records the complete operation history through
//! [`linearize::Recorder`], and checks it with the full (pattern +
//! search) linearizability checker.
//!
//! Reproducibility contract: the runner consumes *only* the plan. Thread
//! op streams come from the plan's seed, machine noise from the plan's
//! machine seed, and the merged history is canonically sorted — so two
//! runs of equal plans produce identical outcomes down to the
//! fingerprint, on either scheduler.

use crate::plan::FuzzPlan;
use crate::simq::{
    BqOriginalSim, CcSim, MsSim, QueueKind, QueueParams, SbqCasSim, SbqHtmSim, SbqStripedSim,
    SimQueue, WfSim,
};
use absmem::ThreadCtx;
use coherence::{Machine, Program, RunReport, SimCtx};
use linearize::{check_queue_linearizable, Event, Op, Recorder, Violation};
use sbq::txcas::TxCasParams;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Result of one fuzz run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The complete recorded history, canonically sorted.
    pub history: Vec<Event>,
    /// Checker verdict; `None` means linearizable.
    pub violation: Option<Violation>,
    /// Compact digest of the observable run result (simulated times,
    /// counters, history) for determinism comparisons.
    pub fingerprint: String,
    /// Simulated end time, cycles.
    pub end_time: u64,
}

/// Queue parameters used for fuzzing: sized to the plan's thread count,
/// with TxCAS delays shortened (correctness is timing-independent; short
/// delays buy more schedules per simulated cycle) and few enough retries
/// that injected-abort storms reach the fallback path quickly.
fn queue_params(plan: &FuzzPlan) -> QueueParams {
    QueueParams {
        max_threads: plan.threads,
        enqueuers: plan.threads,
        basket_capacity: plan.threads.max(44),
        txcas: TxCasParams {
            intra_delay: 200,
            post_abort_delay: 40,
            max_retries: 12,
        },
        delay_cycles: 200,
        reclaim: true,
    }
}

/// Canonical history order: merged per-thread recorders are sorted by
/// `(invoke, ret, thread, op)` so the outcome does not depend on the
/// incidental order threads parked their recorders in.
fn sort_history(history: &mut [Event]) {
    fn op_key(op: &Op) -> (u8, u64) {
        match *op {
            Op::Enq(v) => (0, v),
            Op::DeqSome(v) => (1, v),
            Op::DeqNull => (2, 0),
        }
    }
    history.sort_by_key(|e| (e.invoke, e.ret, e.thread, op_key(&e.op)));
}

/// FNV-1a fold over the history, mixed into the fingerprint.
fn history_digest(history: &[Event]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for e in history {
        let (tag, v) = match e.op {
            Op::Enq(v) => (1u64, v),
            Op::DeqSome(v) => (2, v),
            Op::DeqNull => (3, 0),
        };
        mix(e.thread as u64);
        mix(tag);
        mix(v);
        mix(e.invoke);
        mix(e.ret);
    }
    h
}

fn fingerprint(report: &RunReport, history: &[Event]) -> String {
    format!(
        "end={} core_end={:?} commits={} conflicts={} explicit={} spurious={} capacity={} \
         tripped={} stalls={} hist={}#{:016x}",
        report.end_time,
        report.core_end,
        report.stats.tx_commits,
        report.stats.tx_aborts_conflict,
        report.stats.tx_aborts_explicit,
        report.stats.tx_aborts_spurious,
        report.stats.tx_aborts_capacity,
        report.stats.tripped_writers,
        report.stats.stalls,
        history.len(),
        history_digest(history),
    )
}

fn run_plan_on<Q: SimQueue + 'static>(plan: &FuzzPlan) -> RunOutcome {
    let base = Arc::new(AtomicU64::new(0));
    let recorders: Arc<Mutex<Vec<Recorder>>> = Arc::new(Mutex::new(Vec::new()));
    let qp = queue_params(plan);

    let programs: Vec<Program> = (0..plan.threads)
        .map(|t| {
            let ops = plan.thread_ops(t);
            let base = Arc::clone(&base);
            let recorders = Arc::clone(&recorders);
            Box::new(move |ctx: &mut SimCtx| {
                let mut q = Q::attach(base.load(SeqCst), ctx, &qp);
                let tid = ctx.thread_id();
                let mut rec = Recorder::new();
                let mut seq = 0u64;
                ctx.barrier();
                for &is_enq in &ops {
                    let invoke = ctx.now();
                    if is_enq {
                        seq += 1;
                        let v = ((tid as u64 + 1) << 40) | seq;
                        q.enqueue(ctx, v);
                        rec.record(tid, Op::Enq(v), invoke, ctx.now());
                    } else {
                        let op = match q.dequeue(ctx) {
                            Some(v) => Op::DeqSome(v),
                            None => Op::DeqNull,
                        };
                        rec.record(tid, op, invoke, ctx.now());
                    }
                }
                recorders.lock().unwrap().push(rec);
            }) as Program
        })
        .collect();

    let b2 = Arc::clone(&base);
    let report = Machine::new(plan.machine()).run(
        Box::new(move |ctx| {
            let addr = Q::create(ctx, &qp);
            b2.store(addr, SeqCst);
        }),
        programs,
    );

    let recorders = std::mem::take(&mut *recorders.lock().unwrap());
    let mut history = Recorder::merge(recorders);
    sort_history(&mut history);
    let violation = check_queue_linearizable(&history).err();
    let fingerprint = fingerprint(&report, &history);
    RunOutcome {
        history,
        violation,
        fingerprint,
        end_time: report.end_time,
    }
}

/// Runs one plan, dispatching on its queue kind.
pub fn run_plan(plan: &FuzzPlan) -> RunOutcome {
    match plan.queue {
        QueueKind::SbqHtm => run_plan_on::<SbqHtmSim>(plan),
        QueueKind::SbqCas => run_plan_on::<SbqCasSim>(plan),
        QueueKind::SbqStriped => run_plan_on::<SbqStripedSim>(plan),
        QueueKind::BqOriginal => run_plan_on::<BqOriginalSim>(plan),
        QueueKind::WfQueue => run_plan_on::<WfSim>(plan),
        QueueKind::CcQueue => run_plan_on::<CcSim>(plan),
        QueueKind::MsQueue => run_plan_on::<MsSim>(plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_plans_produce_identical_outcomes() {
        let plan = FuzzPlan::derive(3, None);
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn clean_small_campaign_over_every_queue() {
        for seed in 0..7 {
            let plan = FuzzPlan::derive(seed, None);
            // Under `planted-bug` the MS queue is *supposed* to fail;
            // tests/planted_bug.rs owns that expectation.
            if cfg!(feature = "planted-bug") && plan.queue == QueueKind::MsQueue {
                continue;
            }
            let out = run_plan(&plan);
            assert_eq!(
                out.violation,
                None,
                "seed {seed} ({}) reported a violation",
                plan.queue.name()
            );
            assert!(!out.history.is_empty());
        }
    }
}
