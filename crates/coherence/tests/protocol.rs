//! Protocol-level validation of the simulated substrate: these tests pin
//! down the cache-coherence dynamics the paper's analysis (§3) relies on,
//! before any queue is built on top.

use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Runs `n` copies of `prog` after `setup`; returns (report, per-thread
/// results pushed into the shared vec by the programs).
fn run_n<T: Send + 'static>(
    cfg: MachineConfig,
    setup: impl FnOnce(&mut SimCtx) -> u64 + Send + 'static,
    prog: impl Fn(&mut SimCtx, u64) -> T + Send + Sync + 'static,
) -> (coherence::RunReport, Vec<T>) {
    let n = cfg.cores;
    let shared = Arc::new(AtomicU64::new(0));
    let results: Arc<Mutex<Vec<(usize, T)>>> = Arc::new(Mutex::new(Vec::new()));
    let prog = Arc::new(prog);
    let s2 = Arc::clone(&shared);
    let programs: Vec<Program> = (0..n)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let results = Arc::clone(&results);
            let prog = Arc::clone(&prog);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                let r = prog(ctx, base);
                results.lock().unwrap().push((i, r));
            }) as Program
        })
        .collect();
    let report = Machine::new(cfg).run(
        Box::new(move |ctx| {
            let base = setup(ctx);
            s2.store(base, SeqCst);
        }),
        programs,
    );
    let mut res = match Arc::try_unwrap(results) {
        Ok(m) => m.into_inner().unwrap(),
        Err(_) => panic!("results still shared"),
    };
    res.sort_by_key(|(i, _)| *i);
    (report, res.into_iter().map(|(_, t)| t).collect())
}

fn word_setup(ctx: &mut SimCtx) -> u64 {
    let a = ctx.alloc(1);
    ctx.write(a, 0);
    a
}

#[test]
fn values_propagate_between_cores() {
    let cfg = MachineConfig::single_socket(2);
    let (_, vals) = run_n(cfg, word_setup, |ctx, a| {
        if ctx.thread_id() == 0 {
            ctx.write(a, 42);
            0
        } else {
            // Spin until the writer's value is visible.
            let mut v = ctx.read(a);
            while v != 42 {
                ctx.delay(50);
                v = ctx.read(a);
            }
            v
        }
    });
    assert_eq!(vals[1], 42);
}

#[test]
fn faa_loses_no_increments_under_contention() {
    for cores in [1, 3, 8] {
        let cfg = MachineConfig::single_socket(cores);
        let (_, _) = {
            let (report, _) = run_n(cfg.clone(), word_setup, |ctx, a| {
                for _ in 0..50 {
                    ctx.faa(a, 1);
                }
            });
            // Verify the final value with a fresh single-core run is not
            // possible (memory is per-run); instead count FAA ops and use
            // a final reader below.
            (report, ())
        };
        // Re-run with a checker thread pattern: every thread FAAs then one
        // checks the total via the returned FAA values.
        let (_, last_vals) = run_n(cfg, word_setup, |ctx, a| {
            let mut last = 0;
            for _ in 0..50 {
                last = ctx.faa(a, 1);
            }
            last
        });
        // FAA returns the pre-value; across all threads, the maximum
        // pre-value must be total-1.
        let max = last_vals.iter().copied().max().unwrap();
        assert_eq!(max, (cores as u64) * 50 - 1, "cores={cores}");
    }
}

#[test]
fn cas_elects_exactly_one_winner_per_value() {
    let cfg = MachineConfig::single_socket(6);
    let (_, wins) = run_n(cfg, word_setup, |ctx, a| {
        let mut wins = 0u64;
        for round in 0..40u64 {
            if ctx.cas(a, round, round + 1) {
                wins += 1;
            } else {
                while ctx.read(a) <= round {
                    ctx.delay(30);
                }
            }
        }
        wins
    });
    assert_eq!(wins.iter().sum::<u64>(), 40);
}

#[test]
fn swap_chains_preserve_all_values() {
    // Each thread swaps in its id+1 and remembers what it displaced; the
    // multiset {initial 0, all swapped-in values} minus {displaced values}
    // must equal the final value.
    let cfg = MachineConfig::single_socket(4);
    let (_, got) = run_n(cfg, word_setup, |ctx, a| {
        ctx.swap(a, ctx.thread_id() as u64 + 1)
    });
    let mut seen: Vec<u64> = got.clone();
    seen.sort_unstable();
    // Exactly one thread must have displaced the initial 0.
    assert_eq!(seen.iter().filter(|&&v| v == 0).count(), 1);
    // No two threads can displace the same value.
    seen.dedup();
    assert_eq!(seen.len(), 4);
}

/// §3.2: the average latency of a contended FAA grows linearly with the
/// number of contenders (the Fwd-GetM handoff chain).
#[test]
fn contended_faa_latency_grows_linearly() {
    let mut lat = Vec::new();
    for cores in [2usize, 8, 16] {
        let mut cfg = MachineConfig::single_socket(cores);
        cfg.check_invariants = false;
        let (_, times) = run_n(cfg, word_setup, |ctx, a| {
            const OPS: u64 = 100;
            let t0 = ctx.now();
            for _ in 0..OPS {
                ctx.faa(a, 1);
            }
            (ctx.now() - t0) / OPS
        });
        let avg = times.iter().sum::<u64>() / times.len() as u64;
        lat.push(avg);
    }
    // 16 cores should cost several times what 2 cores cost.
    assert!(
        lat[2] > lat[0] * 3,
        "expected linear growth, got {lat:?} cycles/op"
    );
    // And 16-core latency should be roughly 2x the 8-core latency
    // (allowing generous slack).
    assert!(lat[2] > lat[1] * 3 / 2, "expected ~2x from 8->16: {lat:?}");
}

/// Transactions: a read-modify-write transaction on an uncontended line
/// commits, and its write is visible afterwards.
#[test]
fn uncontended_transaction_commits() {
    let cfg = MachineConfig::single_socket(1);
    let (report, vals) = run_n(cfg, word_setup, |ctx, a| {
        ctx.tx_begin().unwrap();
        let v = ctx.tx_read(a).unwrap();
        ctx.tx_write(a, v + 7).unwrap();
        ctx.tx_end().unwrap();
        ctx.read(a)
    });
    assert_eq!(vals[0], 7);
    assert_eq!(report.stats.tx_commits, 1);
    assert_eq!(report.stats.tx_aborts(), 0);
}

/// An explicit abort rolls back the transactional write and reports the
/// code.
#[test]
fn explicit_abort_rolls_back() {
    let cfg = MachineConfig::single_socket(1);
    let (report, vals) = run_n(cfg, word_setup, |ctx, a| {
        ctx.tx_begin().unwrap();
        let r: coherence::TxResult<()> = (|| {
            ctx.tx_write(a, 99)?;
            Err(ctx.tx_abort(5))
        })();
        let status = r.unwrap_err().status;
        (ctx.read(a), status)
    });
    let (val, status) = vals[0];
    assert_eq!(val, 0, "transactional write must be rolled back");
    assert!(coherence::txn::is_explicit(status));
    assert_eq!(coherence::txn::code(status), 5);
    assert_eq!(report.stats.tx_aborts_explicit, 1);
    assert_eq!(report.stats.tx_commits, 0);
}

/// Nested flat transactions: an abort inside the nested transaction sets
/// the NESTED status bit (the signal TxCAS's triage logic uses, §4.2).
#[test]
fn nested_abort_sets_nested_bit() {
    let cfg = MachineConfig::single_socket(1);
    let (_, vals) = run_n(cfg, word_setup, |ctx, _a| {
        ctx.tx_begin().unwrap();
        ctx.tx_begin().unwrap();
        ctx.tx_abort(3).status
    });
    assert!(coherence::txn::is_nested(vals[0]));
    assert!(coherence::txn::is_explicit(vals[0]));
}

/// §3.3 / Figure 2b: when many HTM CASes contend, exactly one commits per
/// "round" and the rest abort on concurrently delivered invalidations —
/// so failure latency stays roughly flat as contention rises.
#[test]
fn htm_cas_failures_are_concurrent() {
    let run_one = |cores: usize| {
        let mut cfg = MachineConfig::single_socket(cores);
        cfg.check_invariants = false;
        let (report, times) = run_n(cfg, word_setup, move |ctx, a| {
            // One round of transactional CAS(0 -> tid+1): read, delay,
            // write, commit.
            let t0 = ctx.now();
            let _ = (|| -> coherence::TxResult<()> {
                ctx.tx_begin()?;
                let v = ctx.tx_read(a)?;
                if v != 0 {
                    return Err(ctx.tx_abort(1));
                }
                ctx.tx_delay(600)?;
                ctx.tx_write(a, ctx.thread_id() as u64 + 1)?;
                ctx.tx_end()?;
                Ok(())
            })();
            ctx.now() - t0
        });
        (report, times)
    };
    let (r4, t4) = run_one(4);
    assert_eq!(r4.stats.tx_commits, 1, "exactly one winner");
    assert_eq!(r4.stats.tx_aborts_conflict, 3, "all others conflict-abort");
    let (r16, t16) = run_one(16);
    assert_eq!(r16.stats.tx_commits, 1);
    assert_eq!(r16.stats.tx_aborts_conflict, 15);
    // Scalability: mean completion time should NOT grow linearly from 4 to
    // 16 threads (the losers abort concurrently). Allow 2x slack.
    let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
    assert!(
        avg(&t16) < avg(&t4) * 2,
        "HTM CAS failure latency must stay ~flat: {} vs {}",
        avg(&t4),
        avg(&t16)
    );
}

/// §3.4 / Figure 3: a remote read hitting the window where the
/// transactional write's GetM is pending trips the writer; the §3.4.1
/// microarchitectural fix converts the abort into a stall.
#[test]
fn tripped_writer_and_microarch_fix() {
    let scenario = |fix: bool| {
        // Dual socket: the sharer owing the InvAck sits on the far socket,
        // so the writer's GetM waits ~2 cross-socket hops — a wide window
        // for the reader's Fwd-GetS to land in (§4.3: exactly why NUMA
        // makes tripped writers frequent).
        let mut cfg = MachineConfig::dual_socket(3);
        cfg.microarch_fix = fix;
        let (report, _) = run_n(cfg, word_setup, move |ctx, a| {
            match ctx.thread_id() {
                0 => {
                    // Writer (socket 0): read first (becomes sharer), then
                    // transactional CAS without delay.
                    let _ = ctx.read(a);
                    let _ = (|| -> coherence::TxResult<()> {
                        ctx.tx_begin()?;
                        let v = ctx.tx_read(a)?;
                        ctx.tx_write(a, v + 1)?;
                        ctx.tx_end()?;
                        Ok(())
                    })();
                }
                3 => {
                    // Far-socket sharer: its InvAck takes two cross-socket
                    // hops, widening the writer's commit window.
                    let _ = ctx.read(a);
                    ctx.delay(5000);
                }
                1 | 2 => {
                    // Near readers staggered into the window.
                    ctx.delay(100 + 80 * ctx.thread_id() as u64);
                    let _ = ctx.read(a);
                }
                _ => {}
            }
        });
        report
    };
    let no_fix = scenario(false);
    assert!(
        no_fix.stats.tripped_writers >= 1,
        "expected a tripped writer, stats: {:?}",
        no_fix.stats
    );
    let with_fix = scenario(true);
    assert_eq!(
        with_fix.stats.tripped_writers, 0,
        "fix must eliminate tripped writers"
    );
    assert!(with_fix.stats.fix_stalls >= 1, "fix must stall the read");
    assert!(with_fix.stats.tx_commits >= 1, "writer commits under fix");
}

/// An in-transaction delay is cut short by a conflicting invalidation: the
/// mechanism that lets a delaying TxCAS abort early (§4.1).
#[test]
fn delay_is_interruptible_by_abort() {
    let mut cfg = MachineConfig::single_socket(2);
    cfg.check_invariants = false;
    let (_, times) = run_n(cfg, word_setup, |ctx, a| {
        if ctx.thread_id() == 0 {
            // Reader transaction with a huge delay.
            let t0 = ctx.now();
            let _ = (|| -> coherence::TxResult<()> {
                ctx.tx_begin()?;
                ctx.tx_read(a)?;
                ctx.tx_delay(1_000_000)?;
                ctx.tx_end()?;
                Ok(())
            })();
            ctx.now() - t0
        } else {
            ctx.delay(500);
            ctx.write(a, 1);
            0
        }
    });
    assert!(
        times[0] < 100_000,
        "delay must be interrupted early, took {} cycles",
        times[0]
    );
}

/// Spurious aborts fire at the configured rate and are distinguishable
/// from conflicts.
#[test]
fn spurious_aborts_injected() {
    let mut cfg = MachineConfig::single_socket(1);
    cfg.spurious_abort_prob = 1.0;
    let (report, vals) = run_n(cfg, word_setup, |ctx, a| {
        let r = (|| -> coherence::TxResult<()> {
            ctx.tx_begin()?;
            let v = ctx.tx_read(a)?;
            ctx.tx_write(a, v + 1)?;
            ctx.tx_end()?;
            Ok(())
        })();
        r.unwrap_err().status
    });
    assert_eq!(report.stats.tx_aborts_spurious, 1);
    assert!(!coherence::txn::is_conflict(vals[0]));
    assert!(!coherence::txn::is_explicit(vals[0]));
}

/// Cross-socket messages cost more: the same contended FAA workload takes
/// longer when contenders straddle sockets (§4.3's motivation).
#[test]
fn cross_socket_contention_is_slower() {
    let run_with = |cfg: MachineConfig| {
        let (_, times) = run_n(cfg, word_setup, |ctx, a| {
            const OPS: u64 = 60;
            let t0 = ctx.now();
            for _ in 0..OPS {
                ctx.faa(a, 1);
            }
            (ctx.now() - t0) / OPS
        });
        times.iter().sum::<u64>() / times.len() as u64
    };
    let mut single = MachineConfig::single_socket(8);
    single.check_invariants = false;
    let mut dual = MachineConfig::dual_socket(4);
    dual.check_invariants = false;
    let t_single = run_with(single);
    let t_dual = run_with(dual);
    assert!(
        t_dual > t_single * 3 / 2,
        "cross-socket should be slower: {t_single} vs {t_dual}"
    );
}

/// Setup-phase state is visible to all measured threads (the warm queue
/// handoff every benchmark relies on).
#[test]
fn setup_state_visible_to_all_threads() {
    let cfg = MachineConfig::single_socket(5);
    let (_, vals) = run_n(
        cfg,
        |ctx| {
            let a = ctx.alloc(4);
            for i in 0..4 {
                ctx.write(a + i, 100 + i);
            }
            a
        },
        |ctx, a| (0..4).map(|i| ctx.read(a + i)).sum::<u64>(),
    );
    for v in vals {
        assert_eq!(v, 100 + 101 + 102 + 103);
    }
}
