//! Component-spine behaviour: interrupt sources abort transactions with
//! `txn::INTERRUPT` and stay deterministic across runs and schedulers;
//! tick gates pace `wait_tick()` consumers (banking early releases);
//! heartbeats are provably benign; and a paced thread with no gate fails
//! the deadlock assertion with a hint instead of hanging.

use absmem::ThreadCtx;
use coherence::txn;
use coherence::{ComponentSpec, Machine, MachineConfig, Program, RunReport, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// `cores` threads, each committing `txns` transactions that read,
/// dwell, and increment one shared counter word. The dwell keeps the
/// transaction window open long enough for a periodic interrupt source
/// to land inside it.
fn txn_workload(mut cfg: MachineConfig, txns: u64, statuses: Arc<Mutex<Vec<u32>>>) -> RunReport {
    let cores = cfg.cores;
    cfg.delay_jitter_pct = 0;
    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let statuses = Arc::clone(&statuses);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                let mut committed = 0;
                while committed < txns {
                    let attempt = (|| {
                        ctx.tx_begin()?;
                        let v = ctx.tx_read(a)?;
                        ctx.tx_delay(200)?;
                        ctx.tx_write(a, v + 1)?;
                        ctx.tx_end()
                    })();
                    match attempt {
                        Ok(()) => committed += 1,
                        Err(abort) => statuses.lock().unwrap().push(abort.status),
                    }
                }
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(1);
            ctx.write(a, 0);
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

fn interrupt_cfg(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::single_socket(cores);
    cfg.components.push(ComponentSpec::Interrupt {
        period: 900,
        start: 400,
        cost: 150,
        victim: None,
    });
    cfg
}

#[test]
fn interrupt_source_aborts_transactions_with_interrupt_status() {
    let statuses = Arc::new(Mutex::new(Vec::new()));
    let report = txn_workload(interrupt_cfg(2), 25, Arc::clone(&statuses));
    assert_eq!(report.stats.tx_commits, 50, "every txn eventually commits");
    assert!(
        report.stats.interrupts_fired > 0,
        "the source never fired: {:?}",
        report.stats
    );
    assert!(
        report.stats.tx_aborts_interrupt > 0,
        "no interrupt landed inside a transaction window: {:?}",
        report.stats
    );
    assert!(report.stats.interrupts_fired >= report.stats.tx_aborts_interrupt);
    // The total-abort accessor folds the new cause in.
    assert!(report.stats.tx_aborts() >= report.stats.tx_aborts_interrupt);
    let statuses = statuses.lock().unwrap();
    let interrupted: Vec<u32> = statuses
        .iter()
        .copied()
        .filter(|&s| txn::is_interrupt(s))
        .collect();
    assert_eq!(
        interrupted.len() as u64,
        report.stats.tx_aborts_interrupt,
        "every interrupt abort reaches the program exactly once"
    );
    for s in interrupted {
        assert!(
            s & txn::RETRY != 0,
            "interrupt aborts are retryable: {s:#x}"
        );
        assert!(!txn::is_explicit(s) && !txn::is_conflict(s) && !txn::is_capacity(s));
    }
}

#[test]
fn interrupted_runs_are_deterministic_and_scheduler_independent() {
    let fingerprint = |r: &RunReport| {
        format!(
            "end={} core_end={:?} commits={} interrupts={} int_aborts={} conflicts={}",
            r.end_time,
            r.core_end,
            r.stats.tx_commits,
            r.stats.interrupts_fired,
            r.stats.tx_aborts_interrupt,
            r.stats.tx_aborts_conflict,
        )
    };
    let a = fingerprint(&txn_workload(
        interrupt_cfg(3),
        12,
        Arc::new(Mutex::new(Vec::new())),
    ));
    let b = fingerprint(&txn_workload(
        interrupt_cfg(3),
        12,
        Arc::new(Mutex::new(Vec::new())),
    ));
    assert_eq!(a, b, "same seed, same interrupts, same run");
    let mut cfg = interrupt_cfg(3);
    cfg.os_thread_scheduler = true;
    let c = fingerprint(&txn_workload(cfg, 12, Arc::new(Mutex::new(Vec::new()))));
    assert_eq!(a, c, "both schedulers agree under interrupt components");
}

#[test]
fn interrupts_appear_in_the_trace_on_component_and_core_tracks() {
    let mut cfg = interrupt_cfg(2);
    cfg.trace = true;
    let report = txn_workload(cfg, 8, Arc::new(Mutex::new(Vec::new())));
    let mut comp_marks = 0u64;
    for e in &report.trace {
        if let coherence::TraceEvent::Comp {
            comp, name, what, ..
        } = e
        {
            assert!(*comp >= 2, "configured components sit after the built-ins");
            assert_eq!(*name, "interrupt");
            assert_eq!(*what, "interrupt");
            comp_marks += 1;
        }
    }
    assert_eq!(comp_marks, report.stats.interrupts_fired);
    // The victim side shows up as ordinary tx-abort marks carrying the
    // INTERRUPT status word on the core tracks.
    let int_aborts = report
        .trace
        .iter()
        .filter(|e| {
            matches!(e, coherence::TraceEvent::Tx { what, detail, .. }
                if *what == "abort" && txn::is_interrupt(*detail as u32))
        })
        .count() as u64;
    assert_eq!(int_aborts, report.stats.tx_aborts_interrupt);
}

/// One paced core: `wait_tick()` × `n` against a gate with the given
/// period/start/count, returning the report.
fn paced_run(gate: ComponentSpec, pre_delay: u64, waits: u64) -> RunReport {
    let mut cfg = MachineConfig::single_socket(1);
    cfg.delay_jitter_pct = 0;
    cfg.components.push(gate);
    let programs: Vec<Program> = vec![Box::new(move |ctx: &mut SimCtx| {
        if pre_delay > 0 {
            ctx.delay(pre_delay);
        }
        for _ in 0..waits {
            SimCtx::wait_tick(ctx);
        }
    }) as Program];
    Machine::new(cfg).run(Box::new(|_ctx| {}), programs)
}

#[test]
fn tick_gate_paces_a_waiting_core() {
    let report = paced_run(
        ComponentSpec::TickGate {
            core: 0,
            period: 1000,
            start: 1000,
            count: 10,
        },
        0,
        10,
    );
    // The tenth release cannot arrive before the tenth firing at t=10000.
    assert!(
        report.core_end[0] >= 10_000,
        "paced core finished at {} — before the gate's last firing",
        report.core_end[0]
    );
    assert_eq!(report.stats.op("waittick"), 10);
    assert_eq!(report.stats.comp_ticks, 10);
}

#[test]
fn early_gate_firings_are_banked_not_lost() {
    // The gate finishes all 10 firings by t=1000, while the consumer is
    // still in its initial delay; the banked ticks satisfy its later
    // wait_tick() calls immediately.
    let report = paced_run(
        ComponentSpec::TickGate {
            core: 0,
            period: 100,
            start: 100,
            count: 10,
        },
        5_000,
        10,
    );
    assert_eq!(report.stats.op("waittick"), 10);
    assert!(
        report.core_end[0] < 7_000,
        "banked ticks should resolve instantly, got end {}",
        report.core_end[0]
    );
}

#[test]
fn unlimited_gates_and_heartbeats_do_not_stall_run_end() {
    // count = 0 gates/heartbeats keep requesting ticks forever; the run
    // still ends when the last thread retires.
    let report = paced_run(
        ComponentSpec::TickGate {
            core: 0,
            period: 500,
            start: 500,
            count: 0,
        },
        0,
        4,
    );
    assert_eq!(report.stats.op("waittick"), 4);
    assert!(report.core_end[0] >= 2_000);
}

#[test]
fn heartbeat_component_leaves_a_run_byte_identical() {
    let run = |with_heartbeat: bool| {
        let mut cfg = MachineConfig::single_socket(3);
        if with_heartbeat {
            cfg.components.push(ComponentSpec::Heartbeat {
                period: 37,
                count: 0,
            });
        }
        let shared = Arc::new(AtomicU64::new(0));
        let programs: Vec<Program> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                Box::new(move |ctx: &mut SimCtx| {
                    let a = shared.load(SeqCst);
                    for _ in 0..40 {
                        ctx.faa(a, 1);
                        ctx.delay(30);
                    }
                }) as Program
            })
            .collect();
        let s2 = Arc::clone(&shared);
        Machine::new(cfg).run(
            Box::new(move |ctx| {
                let a = ctx.alloc(1);
                ctx.write(a, 0);
                s2.store(a, SeqCst);
            }),
            programs,
        )
    };
    let base = run(false);
    let beat = run(true);
    assert!(beat.stats.comp_ticks > 0, "the heartbeat never ticked");
    assert_eq!(base.end_time, beat.end_time);
    assert_eq!(base.core_end, beat.core_end);
    let obs = |r: &RunReport| {
        let msgs: Vec<(&str, u64)> = r.stats.msgs().collect();
        let ops: Vec<(&str, u64)> = r.stats.ops().collect();
        format!(
            "{msgs:?} {ops:?} commits={} aborts={} stalls={}",
            r.stats.tx_commits,
            r.stats.tx_aborts(),
            r.stats.stalls
        )
    };
    assert_eq!(obs(&base), obs(&beat));
}

#[test]
#[should_panic(expected = "TickWait")]
fn wait_tick_without_a_gate_fails_the_deadlock_assert_with_a_hint() {
    // No components configured: the lone thread's wait_tick() can never
    // be released, and the machine names the stuck core instead of
    // hanging or dying opaquely.
    let mut cfg = MachineConfig::single_socket(1);
    cfg.delay_jitter_pct = 0;
    let programs: Vec<Program> = vec![Box::new(|ctx: &mut SimCtx| {
        SimCtx::wait_tick(ctx);
    }) as Program];
    Machine::new(cfg).run(Box::new(|_ctx| {}), programs);
}
