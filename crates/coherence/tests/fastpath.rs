//! Differential suite for the uncontended fast path
//! (`MachineConfig::fast_path`): with the knob on, local-hit operations
//! retire inline at submission — no directory messages, no wheel events —
//! and the result must be *byte-identical* to the full protocol: same
//! end-times, same per-core histories, same message/op/abort counters,
//! same trace. The slow path is the semantic reference; these tests are
//! what let it stay one.
//!
//! The fast-path hit/fallback counters are deliberately excluded from the
//! comparison: they measure *how* ops retired, which is exactly what the
//! two configurations legitimately disagree on.

use absmem::ThreadCtx;
use coherence::sim::{OpKind, OpOutcome, Sim};
use coherence::{Machine, MachineConfig, Program, RunReport, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

const MSG_KINDS: &[&str] = &[
    "GetS",
    "GetM",
    "Data",
    "Inv",
    "InvAck",
    "Fwd-GetS",
    "Fwd-GetM",
    "DataOwner",
    "WbData",
];
const OP_KINDS: &[&str] = &[
    "read", "write", "cas", "faa", "swap", "delay", "xbegin", "xend", "xabort",
];

/// Flattens everything observable about a run — end-times, counters, and
/// a digest of the full message/transaction trace — into one comparable
/// string. Fast-path hit/fallback counters are excluded (see module doc).
fn fingerprint(r: &RunReport) -> String {
    let mut s = format!("end={} core_end={:?}", r.end_time, r.core_end);
    s.push_str(" msgs=[");
    for k in MSG_KINDS {
        s.push_str(&format!("{}:{} ", k, r.stats.msg(k)));
    }
    s.push_str("] ops=[");
    for k in OP_KINDS {
        s.push_str(&format!("{}:{} ", k, r.stats.op(k)));
    }
    s.push_str(&format!(
        "] commits={} conflicts={} explicit={} spurious={} capacity={} tripped={} stalls={} \
         fix_stalls={} trace={:#x}",
        r.stats.tx_commits,
        r.stats.tx_aborts_conflict,
        r.stats.tx_aborts_explicit,
        r.stats.tx_aborts_spurious,
        r.stats.tx_aborts_capacity,
        r.stats.tripped_writers,
        r.stats.stalls,
        r.stats.fix_stalls,
        trace_digest(r),
    ));
    s
}

/// FNV-1a over the debug rendering of every trace event, order-sensitive.
fn trace_digest(r: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in &r.trace {
        for b in format!("{ev:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The determinism fixture's mixed workload (contended FAA/CAS, shared
/// reads, private writes, an HTM transaction with retry, a barrier),
/// parameterized over the fast-path knob and scheduler, with the full
/// trace recorded.
fn fixture(cores: usize, dual_socket: bool, fast_path: bool, os_threads: bool) -> RunReport {
    let mut cfg = if dual_socket {
        MachineConfig::dual_socket(cores.div_ceil(2))
    } else {
        MachineConfig::single_socket(cores)
    };
    cfg.delay_jitter_pct = 0;
    cfg.spurious_abort_prob = 0.0;
    cfg.fast_path = fast_path;
    cfg.os_thread_scheduler = os_threads;
    cfg.trace = true;
    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                match i % 4 {
                    0 => {
                        for _ in 0..40 {
                            ctx.faa(base, 1);
                        }
                        ctx.barrier();
                        let mut tries = 0;
                        loop {
                            tries += 1;
                            let r = (|| -> coherence::TxResult<()> {
                                ctx.tx_begin()?;
                                let v = ctx.tx_read(base + 1)?;
                                ctx.tx_delay(20)?;
                                ctx.tx_write(base + 2, v + 1)?;
                                ctx.tx_end()?;
                                Ok(())
                            })();
                            if r.is_ok() || tries > 8 {
                                break;
                            }
                        }
                    }
                    1 => {
                        for _ in 0..40 {
                            let old = ctx.read(base);
                            ctx.cas(base, old, old + 1);
                        }
                        ctx.barrier();
                        for k in 0..8 {
                            let _ = ctx.read(base + k);
                        }
                    }
                    2 => {
                        for k in 0..30 {
                            ctx.write(base + 3, k);
                        }
                        ctx.barrier();
                        let extra = ctx.alloc(4);
                        for k in 0..4 {
                            ctx.write(extra + k, k * 7);
                        }
                        let _ = ctx.swap(base + 5, 99);
                        ctx.free(extra, 4);
                    }
                    _ => {
                        for _ in 0..10 {
                            for k in 0..8 {
                                let _ = ctx.read(base + k);
                            }
                        }
                        ctx.barrier();
                        ctx.delay(100);
                        let _ = ctx.faa(base + 1, 3);
                    }
                }
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(8);
            for k in 0..8 {
                ctx.write(a + k, k);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

/// The golden fixtures must be byte-identical — histories, end-times, and
/// trace digests — with the fast path on and off, on both schedulers.
#[test]
fn goldens_identical_with_fast_path_on_and_off() {
    // 88 cores = the paper's dual-socket machine; the fast path must
    // stay invisible at full scale, not just on the small fixtures.
    for &(cores, dual) in &[(4usize, false), (6, true), (88, true)] {
        for &os_threads in &[false, true] {
            let on = fixture(cores, dual, true, os_threads);
            let off = fixture(cores, dual, false, os_threads);
            assert_eq!(
                fingerprint(&on),
                fingerprint(&off),
                "fast path diverged from the slow reference at cores={cores} dual={dual} \
                 os_threads={os_threads}"
            );
            assert_eq!(
                on.stats.fastpath_hits + off.stats.fastpath_hits,
                on.stats.fastpath_hits,
                "slow-path run counted fast-path hits"
            );
        }
    }
}

/// A private-working-set workload — each core hammers its own lines —
/// must actually *use* the fast path: after the first miss per line,
/// every op is an uncontended local hit.
#[test]
fn uncontended_workload_retires_inline() {
    let run = |fast_path: bool| -> RunReport {
        let mut cfg = MachineConfig::single_socket(4);
        cfg.delay_jitter_pct = 0;
        cfg.fast_path = fast_path;
        let programs: Vec<Program> = (0..4)
            .map(|i| {
                Box::new(move |ctx: &mut SimCtx| {
                    let base = ctx.alloc(4);
                    for k in 0..100u64 {
                        ctx.write(base, k + i);
                        let _ = ctx.read(base);
                        let _ = ctx.faa(base + 1, 1);
                        let _ = ctx.cas(base + 2, k, k + 1);
                        let _ = ctx.swap(base + 3, k);
                    }
                }) as Program
            })
            .collect();
        Machine::new(cfg).run(Box::new(|_| {}), programs)
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(
        format!("{} {:?}", on.end_time, on.core_end),
        format!("{} {:?}", off.end_time, off.core_end),
        "uncontended timings diverged"
    );
    let total_ops: u64 = OP_KINDS.iter().map(|k| on.stats.op(k)).sum();
    assert!(
        on.stats.fastpath_hits * 2 > total_ops,
        "fast path admitted only {} of {} ops on a private working set",
        on.stats.fastpath_hits,
        total_ops
    );
    assert_eq!(off.stats.fastpath_hits, 0);
    assert_eq!(off.stats.fastpath_fallbacks, 0);
}

/// Randomized fixture with every fault knob live *except* scheduler
/// perturbation (forced to 0 so the fast path stays armed — with
/// `sched_perturb > 0` it disables itself and the comparison would be
/// vacuous).
fn randomized_workload(seed: u64, fast_path: bool) -> RunReport {
    let mut rng = simrng::SimRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x7a3e);
    let cores = rng.gen_range_inclusive(2, 6) as usize;
    let dual = rng.gen_bool(0.4);
    let mut cfg = if dual {
        MachineConfig::dual_socket(cores.div_ceil(2))
    } else {
        MachineConfig::single_socket(cores)
    };
    cfg.delay_jitter_pct = rng.gen_range_inclusive(0, 80);
    cfg.spurious_abort_prob = rng.gen_range_inclusive(0, 200_000) as f64 / 1e6;
    cfg.sched_perturb = 0;
    cfg.tx_capacity_lines = if rng.gen_bool(0.3) {
        rng.gen_range_inclusive(1, 8) as usize
    } else {
        0
    };
    cfg.microarch_fix = rng.gen_bool(0.5);
    cfg.mesi_exclusive = rng.gen_bool(0.5);
    cfg.seed = rng.next_u64();
    cfg.fast_path = fast_path;
    cfg.trace = true;

    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                // A private stretch (fast-path food) ...
                let mine = ctx.alloc(2);
                for k in 0..10 {
                    ctx.write(mine, k);
                    let _ = ctx.read(mine);
                    let _ = ctx.faa(mine + 1, 1);
                }
                // ... then the contended mixed stretch.
                for _ in 0..20 {
                    ctx.faa(base, 1);
                }
                ctx.barrier();
                let mut tries = 0;
                loop {
                    tries += 1;
                    let r = (|| -> coherence::TxResult<()> {
                        ctx.tx_begin()?;
                        let v = ctx.tx_read(base + 1 + (i as u64 % 3))?;
                        ctx.tx_delay(10)?;
                        ctx.tx_write(base + 4, v + 1)?;
                        ctx.tx_end()?;
                        Ok(())
                    })();
                    if r.is_ok() || tries > 6 {
                        break;
                    }
                }
                let _ = ctx.swap(base + 5, i as u64);
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(8);
            for k in 0..8 {
                ctx.write(a + k, k);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

/// Differential fuzz slice: 32 random machine configurations and
/// workloads, fast path on vs off, byte-identical fingerprints (including
/// the trace digest). Parallel over a `runner` pool; each seed builds its
/// own `Machine`, so the seeds are independent.
#[test]
fn fuzz_slice_identical_with_fast_path_on_and_off() {
    let tasks: Vec<_> = (0..32u64)
        .map(|seed| {
            move || {
                (
                    fingerprint(&randomized_workload(seed, true)),
                    fingerprint(&randomized_workload(seed, false)),
                )
            }
        })
        .collect();
    let (pairs, _) = runner::run_all(runner::default_jobs(), tasks);
    for (seed, (on, off)) in pairs.iter().enumerate() {
        assert_eq!(
            on, off,
            "fast path diverged from the slow reference at fuzz seed {seed}"
        );
    }
}

/// Regression for the `submit_op` time-discipline assertions: a thread's
/// local time legitimately lags the event clock (the clock advances while
/// the thread runs user code), so a lagging `at` must be clamped forward,
/// never scheduled into the simulator's past. Exercises both the slow
/// path (cold miss) and the fast path (local hit); under
/// `debug_assertions` the engine's internal asserts fire on any
/// violation.
#[test]
fn lagging_submission_never_schedules_into_the_past() {
    let mut cfg = MachineConfig::single_socket(2);
    // This test exercises the fast path itself; pin the knob on so the
    // SBQ_FAST_PATH=0 CI job doesn't turn it into a slow-path run.
    cfg.fast_path = true;
    let cfg = Arc::new(cfg);
    let mut sim = Sim::new(cfg);
    let addr = 0x40;

    // Cold FAA: full protocol round trip, advances the clock well past 0.
    sim.submit_op(0, 0, OpKind::Faa(addr, 1));
    while sim.resumes.is_empty() {
        assert!(sim.step(), "engine stalled before completing the op");
    }
    let r = sim.resumes.pop().unwrap();
    assert_eq!(r.core, 0);
    assert!(r.time >= sim.now());
    let clock = sim.now();
    assert!(clock > 0, "round trip should have advanced the clock");

    // Lagging resubmission (at=0 < clock) on the now-owned line: the
    // fast path admits it, and its completion must sit at or after the
    // clock, not at `at`.
    sim.submit_op(0, 0, OpKind::Faa(addr, 1));
    assert_eq!(
        sim.stats.fastpath_hits, 1,
        "owned-line RMW should take the fast path"
    );
    while sim.resumes.is_empty() {
        assert!(sim.step(), "engine stalled before completing the op");
    }
    let r = sim.resumes.pop().unwrap();
    assert_eq!(r.core, 0);
    assert!(
        r.time >= clock,
        "fast-path retirement at {} precedes the clock {}",
        r.time,
        clock
    );
    assert!(matches!(r.outcome, OpOutcome::Val(1)));

    // Lagging cold miss on a second core: slow path, same discipline.
    sim.submit_op(1, 0, OpKind::Read(addr));
    while sim.resumes.is_empty() {
        assert!(sim.step(), "engine stalled before completing the read");
    }
    let r = sim.resumes.pop().unwrap();
    assert_eq!(r.core, 1);
    assert!(r.time >= clock);
    assert!(matches!(r.outcome, OpOutcome::Val(2)));
}
