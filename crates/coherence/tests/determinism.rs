//! Determinism regression: a fixed workload must produce bit-identical
//! `RunReport`s on every run, and identical to the golden fingerprint
//! captured on the original mpsc-channel scheduler — so scheduler and
//! hot-loop rewrites provably preserve simulated results.
//!
//! The fixture disables delay jitter and spurious aborts (the only RNG
//! consumers), so any divergence is a scheduler-ordering bug, not noise.

use absmem::ThreadCtx;
use coherence::{ComponentSpec, Machine, MachineConfig, Program, RunReport, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

const MSG_KINDS: &[&str] = &[
    "GetS",
    "GetM",
    "Data",
    "Inv",
    "InvAck",
    "Fwd-GetS",
    "Fwd-GetM",
    "DataOwner",
    "WbData",
];
const OP_KINDS: &[&str] = &[
    "read", "write", "cas", "faa", "swap", "delay", "xbegin", "xend", "xabort",
];

/// Flattens the observable run result into one comparable string.
fn fingerprint(r: &RunReport) -> String {
    let mut s = format!("end={} core_end={:?}", r.end_time, r.core_end);
    s.push_str(" msgs=[");
    for k in MSG_KINDS {
        s.push_str(&format!("{}:{} ", k, r.stats.msg(k)));
    }
    s.push_str("] ops=[");
    for k in OP_KINDS {
        s.push_str(&format!("{}:{} ", k, r.stats.op(k)));
    }
    s.push_str(&format!(
        "] commits={} conflicts={} explicit={} spurious={} tripped={} stalls={} fix_stalls={}",
        r.stats.tx_commits,
        r.stats.tx_aborts_conflict,
        r.stats.tx_aborts_explicit,
        r.stats.tx_aborts_spurious,
        r.stats.tripped_writers,
        r.stats.stalls,
        r.stats.fix_stalls
    ));
    s
}

/// A fixed 4-core workload covering the protocol broadside: contended
/// FAA and CAS, shared reads, exclusive writes, swap, delays, an HTM
/// transaction with retry, allocation/free, and a mid-run barrier.
/// `os_threads` forces the OS-thread scheduler instead of the default
/// fiber scheduler (where fibers are supported). `heartbeat` attaches a
/// benign no-op component — the fingerprint must not move.
fn fixed_workload_full(
    cores: usize,
    dual_socket: bool,
    os_threads: bool,
    heartbeat: bool,
) -> RunReport {
    let mut cfg = if dual_socket {
        MachineConfig::dual_socket(cores.div_ceil(2))
    } else {
        MachineConfig::single_socket(cores)
    };
    cfg.delay_jitter_pct = 0;
    cfg.spurious_abort_prob = 0.0;
    cfg.os_thread_scheduler = os_threads;
    if heartbeat {
        cfg.components.push(ComponentSpec::Heartbeat {
            period: 61,
            count: 0,
        });
    }
    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                match i % 4 {
                    0 => {
                        for _ in 0..40 {
                            ctx.faa(base, 1);
                        }
                        ctx.barrier();
                        // Transactional read-modify-write with retry.
                        let mut tries = 0;
                        loop {
                            tries += 1;
                            let r = (|| -> coherence::TxResult<()> {
                                ctx.tx_begin()?;
                                let v = ctx.tx_read(base + 1)?;
                                ctx.tx_delay(20)?;
                                ctx.tx_write(base + 2, v + 1)?;
                                ctx.tx_end()?;
                                Ok(())
                            })();
                            if r.is_ok() || tries > 8 {
                                break;
                            }
                        }
                    }
                    1 => {
                        for _ in 0..40 {
                            let old = ctx.read(base);
                            ctx.cas(base, old, old + 1);
                        }
                        ctx.barrier();
                        for k in 0..8 {
                            let _ = ctx.read(base + k);
                        }
                    }
                    2 => {
                        for k in 0..30 {
                            ctx.write(base + 3, k);
                        }
                        ctx.barrier();
                        let extra = ctx.alloc(4);
                        for k in 0..4 {
                            ctx.write(extra + k, k * 7);
                        }
                        let _ = ctx.swap(base + 5, 99);
                        ctx.free(extra, 4);
                    }
                    _ => {
                        for _ in 0..10 {
                            for k in 0..8 {
                                let _ = ctx.read(base + k);
                            }
                        }
                        ctx.barrier();
                        ctx.delay(100);
                        let _ = ctx.faa(base + 1, 3);
                    }
                }
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(8);
            for k in 0..8 {
                ctx.write(a + k, k);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

/// The fixture without components attached.
fn fixed_workload_on(cores: usize, dual_socket: bool, os_threads: bool) -> RunReport {
    fixed_workload_full(cores, dual_socket, os_threads, false)
}

/// The fixture on the default scheduler (fibers on x86_64).
fn fixed_workload(cores: usize, dual_socket: bool) -> RunReport {
    fixed_workload_on(cores, dual_socket, false)
}

/// Golden fingerprints captured from the seed (mpsc-channel) scheduler.
/// A scheduler or hot-loop rewrite must reproduce these exactly.
const GOLDEN_4_SINGLE: &str = "end=4313 core_end=[4230, 4313, 4319, 4137] \
    msgs=[GetS:35 GetM:58 Data:42 Inv:36 InvAck:36 Fwd-GetS:25 Fwd-GetM:26 DataOwner:51 WbData:25 ] \
    ops=[read:130 write:44 cas:40 faa:41 swap:1 delay:3 xbegin:2 xend:1 xabort:0 ] \
    commits=1 conflicts=1 explicit=0 spurious=0 tripped=0 stalls=48 fix_stalls=0";
const GOLDEN_6_DUAL: &str = "end=27774 core_end=[26814, 26130, 26313, 26124, 26420, 27774] \
    msgs=[GetS:89 GetM:166 Data:94 Inv:106 InvAck:106 Fwd-GetS:56 Fwd-GetM:105 DataOwner:161 WbData:56 ] \
    ops=[read:181 write:47 cas:80 faa:81 swap:1 delay:6 xbegin:5 xend:2 xabort:0 ] \
    commits=2 conflicts=3 explicit=0 spurious=0 tripped=1 stalls=147 fix_stalls=0";

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Paper-scale dual-socket golden: 88 cores, 44 per socket — the
/// geometry of the paper's evaluation machine (§6.1). Captured from the
/// fiber scheduler; `core_end` is summarized (min/max/sum) instead of
/// inlined so the golden stays reviewable at this width.
const GOLDEN_88_DUAL: &str = "end=251174 core_end_len=88 min=247363 max=251174 sum=21895762 \
    msgs=[GetS:1401 GetM:2557 Data:1489 Inv:1838 InvAck:1838 Fwd-GetS:757 Fwd-GetM:1712 DataOwner:2469 WbData:757 ] \
    ops=[read:2863 write:801 cas:880 faa:902 swap:22 delay:69 xbegin:47 xend:22 xabort:0 ] \
    commits=22 conflicts=25 explicit=0 spurious=0 tripped=2 stalls=2457 fix_stalls=0";

/// [`fingerprint`] with `core_end` folded to (len, min, max, sum) — at
/// 88 cores the full vector is pinned through the sum while the golden
/// string stays one line.
fn fingerprint_wide(r: &RunReport) -> String {
    let full = fingerprint(r);
    let folded = format!(
        "core_end_len={} min={} max={} sum={}",
        r.core_end.len(),
        r.core_end.iter().min().unwrap(),
        r.core_end.iter().max().unwrap(),
        r.core_end.iter().sum::<u64>()
    );
    let rest = &full[full.find(" msgs=[").unwrap()..];
    format!("end={} {}{}", r.end_time, folded, rest)
}

#[test]
fn matches_golden_88_core_dual_socket() {
    let fp = fingerprint_wide(&fixed_workload(88, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_88_DUAL),
        "88-core dual-socket fixture diverged from its golden"
    );
}

/// Both schedulers must agree at paper scale, not just on the small
/// fixtures — the OS-thread scheduler hands the token through 89 real
/// threads here.
#[test]
fn os_thread_scheduler_matches_88_core_golden() {
    let fp = fingerprint_wide(&fixed_workload_on(88, true, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_88_DUAL),
        "OS-thread scheduler diverged from the 88-core golden"
    );
}

#[test]
fn repeated_runs_are_identical() {
    let a = fingerprint(&fixed_workload(4, false));
    for _ in 0..3 {
        let b = fingerprint(&fixed_workload(4, false));
        assert_eq!(a, b, "simulated results diverged between identical runs");
    }
}

#[test]
fn repeated_dual_socket_runs_are_identical() {
    let a = fingerprint(&fixed_workload(6, true));
    let b = fingerprint(&fixed_workload(6, true));
    assert_eq!(a, b);
}

#[test]
fn matches_seed_scheduler_golden_single_socket() {
    let fp = fingerprint(&fixed_workload(4, false));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_4_SINGLE),
        "single-socket fixture diverged from the seed scheduler's results"
    );
}

#[test]
fn matches_seed_scheduler_golden_dual_socket() {
    let fp = fingerprint(&fixed_workload(6, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_6_DUAL),
        "dual-socket fixture diverged from the seed scheduler's results"
    );
}

/// The OS-thread (token-passing) scheduler must reproduce the same
/// goldens as the default fiber scheduler: the two are interchangeable
/// down to the bit.
#[test]
fn os_thread_scheduler_matches_goldens() {
    let fp = fingerprint(&fixed_workload_on(4, false, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_4_SINGLE),
        "OS-thread scheduler diverged from the golden results"
    );
    let fp = fingerprint(&fixed_workload_on(6, true, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_6_DUAL),
        "OS-thread scheduler diverged from the golden results (dual socket)"
    );
}

/// Belt and braces: run both schedulers side by side and compare the
/// full fingerprints directly (not just against the stored goldens).
#[test]
fn schedulers_agree_with_each_other() {
    for &(cores, dual) in &[(2usize, false), (5, false), (6, true)] {
        let fibers = fingerprint(&fixed_workload_on(cores, dual, false));
        let threads = fingerprint(&fixed_workload_on(cores, dual, true));
        assert_eq!(
            fibers, threads,
            "fiber and OS-thread schedulers diverged at cores={cores} dual={dual}"
        );
    }
}

/// A benign (no-op) component must leave the run byte-identical to the
/// component-free goldens: its ticks are ordinary events that touch no
/// core, no line, and no RNG, so the observable machine cannot move.
/// This is the component spine's central determinism claim.
#[test]
fn benign_component_matches_component_free_goldens() {
    let fp = fingerprint(&fixed_workload_full(4, false, false, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_4_SINGLE),
        "a no-op heartbeat component perturbed the single-socket golden"
    );
    let fp = fingerprint(&fixed_workload_full(6, true, true, true));
    assert_eq!(
        normalize(&fp),
        normalize(GOLDEN_6_DUAL),
        "a no-op heartbeat component perturbed the dual-socket golden (OS threads)"
    );
}

/// The fixture under a randomized machine configuration derived from
/// `seed`, with every RNG-consuming fault knob live: delay jitter,
/// spurious aborts, scheduler perturbation, and a transactional capacity
/// limit. Cross-scheduler bit-identity must survive all of them, because
/// the shared-`Sim` RNG is consumed in submit order — which both
/// schedulers produce identically.
fn randomized_faulty_workload_on(seed: u64, os_threads: bool) -> RunReport {
    randomized_faulty_workload_full(seed, os_threads, false)
}

/// As above, optionally with a benign heartbeat component attached
/// *after* the RNG-derived knobs, so the config derivation stream is
/// untouched and the fingerprint must match the component-free run.
fn randomized_faulty_workload_full(seed: u64, os_threads: bool, heartbeat: bool) -> RunReport {
    let mut rng = simrng::SimRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1f7);
    let cores = rng.gen_range_inclusive(2, 6) as usize;
    let dual = rng.gen_bool(0.4);
    let mut cfg = if dual {
        MachineConfig::dual_socket(cores.div_ceil(2))
    } else {
        MachineConfig::single_socket(cores)
    };
    cfg.delay_jitter_pct = rng.gen_range_inclusive(0, 80);
    cfg.spurious_abort_prob = rng.gen_range_inclusive(0, 200_000) as f64 / 1e6;
    cfg.sched_perturb = rng.gen_range_inclusive(0, 500);
    // Capacity 0 = unbounded; small limits abort the fixture's 2-line
    // transaction, exercising the retry-then-give-up path.
    cfg.tx_capacity_lines = if rng.gen_bool(0.3) {
        rng.gen_range_inclusive(1, 8) as usize
    } else {
        0
    };
    cfg.microarch_fix = rng.gen_bool(0.5);
    cfg.seed = rng.next_u64();
    cfg.os_thread_scheduler = os_threads;
    if heartbeat {
        cfg.components.push(ComponentSpec::Heartbeat {
            period: 97,
            count: 0,
        });
    }

    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                for _ in 0..20 {
                    ctx.faa(base, 1);
                }
                ctx.barrier();
                let mut tries = 0;
                loop {
                    tries += 1;
                    let r = (|| -> coherence::TxResult<()> {
                        ctx.tx_begin()?;
                        let v = ctx.tx_read(base + 1 + (i as u64 % 3))?;
                        ctx.tx_delay(10)?;
                        ctx.tx_write(base + 4, v + 1)?;
                        ctx.tx_end()?;
                        Ok(())
                    })();
                    if r.is_ok() || tries > 6 {
                        break;
                    }
                }
                let _ = ctx.swap(base + 5, i as u64);
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(8);
            for k in 0..8 {
                ctx.write(a + k, k);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

/// Differential fuzz across schedulers: 32 random seeds, all fault knobs
/// active, fiber vs OS-thread fingerprints must be identical — the
/// simfuzz harness depends on this to make its artifacts
/// scheduler-independent. Each seed additionally runs with a benign
/// heartbeat component attached (fiber scheduler), which must match the
/// component-free fingerprint byte for byte. Each seed's fingerprint
/// triple is one job on a `runner` pool; since every seed builds its own
/// `Machine`, the seeds are independent and the pool's submission-order
/// merge reports the *lowest* diverging seed whatever finishes first.
#[test]
fn schedulers_agree_on_randomized_fault_injection_workloads() {
    let tasks: Vec<_> = (0..32u64)
        .map(|seed| {
            move || {
                (
                    fingerprint(&randomized_faulty_workload_on(seed, false)),
                    fingerprint(&randomized_faulty_workload_on(seed, true)),
                    fingerprint(&randomized_faulty_workload_full(seed, false, true)),
                )
            }
        })
        .collect();
    let (triples, _) = runner::run_all(runner::default_jobs(), tasks);
    for (seed, (fibers, threads, with_comp)) in triples.iter().enumerate() {
        assert_eq!(
            fibers, threads,
            "fiber and OS-thread schedulers diverged at fault seed {seed}"
        );
        assert_eq!(
            fibers, with_comp,
            "a benign no-op component changed the run at fault seed {seed}"
        );
    }
}
