//! Paper-scale NUMA regressions: the 176-core machine must fit its
//! fiber-stack budget, home-socket policies must route directory legs
//! where they claim to, the widened trace counters must hold counts a
//! 176-core run produces, and the calendar wheel must keep
//! overflow-heap migration ordered against in-horizon pushes at the
//! same tick.

use absmem::ThreadCtx;
use coherence::sim::testhooks::WheelProbe;
use coherence::{HomePolicy, Machine, MachineConfig, Program, RunReport, SimCtx, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Every core hammers a private 8-line stripe (writes then reads); the
/// bootstrap thread only allocates, so under `FirstTouch` each stripe
/// homes on its owner's socket. No barrier and no sharing: all traffic
/// is core↔directory, which makes the hop counters easy to reason
/// about.
fn striped_workload(mut cfg: MachineConfig) -> RunReport {
    cfg.delay_jitter_pct = 0;
    let cores = cfg.cores;
    let shared = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst) + (i as u64) * 8;
                for k in 0..8 {
                    ctx.write(base + k, k);
                }
                for k in 0..8 {
                    let _ = ctx.read(base + k);
                }
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(cores * 8);
            s2.store(a, SeqCst);
        }),
        programs,
    )
}

// ---------------------------------------------------------------------
// Footprint: the tentpole's reason the 176-core machine exists at all.
// ---------------------------------------------------------------------

/// A quad-socket, 176-core machine must construct and run with a total
/// fiber-stack footprint at least 8× below the old 1 MiB-per-fiber
/// scheme (177 fibers including bootstrap = 177 MiB). With the 64 KiB
/// default the total is ~11 MiB.
#[cfg(target_arch = "x86_64")]
#[test]
fn machine_176_cores_fits_the_stack_budget() {
    let mut cfg = MachineConfig::multi_socket(4, 44);
    cfg.check_invariants = false;
    assert_eq!(cfg.cores, 176);
    assert_eq!(cfg.sockets(), 4);
    assert_eq!(cfg.home_policy, HomePolicy::Interleave);
    let report = striped_workload(cfg);
    assert_eq!(report.core_end.len(), 176);
    let old_budget = 177u64 * (1 << 20);
    assert!(
        report.stats.stack_bytes_total > 0,
        "fiber scheduler reported no stack footprint"
    );
    assert!(
        report.stats.stack_bytes_total * 8 <= old_budget,
        "176-core stack footprint regressed: {} bytes is not 8x below the old {} bytes",
        report.stats.stack_bytes_total,
        old_budget
    );
}

/// With `measure_stacks` on, the canary scan reports a real high-water
/// mark that fits comfortably inside the 64 KiB default — the evidence
/// behind shrinking `DEFAULT_STACK` from 1 MiB.
#[cfg(target_arch = "x86_64")]
#[test]
fn measured_stack_high_water_fits_the_default() {
    let mut cfg = MachineConfig::dual_socket(4);
    cfg.measure_stacks = true;
    let budget = cfg.fiber_stack as u64;
    let report = striped_workload(cfg);
    let hwm = report.stats.stack_high_water;
    assert!(hwm > 0, "canary scan found no dirtied stack at all");
    assert!(
        hwm < budget,
        "measured high-water mark {hwm} does not fit the {budget}-byte default"
    );
}

// ---------------------------------------------------------------------
// Home-socket policies.
// ---------------------------------------------------------------------

/// A single-socket machine has nowhere to cross to: every hop is intra
/// regardless of traffic shape.
#[test]
fn single_socket_runs_count_no_cross_hops() {
    let report = striped_workload(MachineConfig::single_socket(4));
    assert!(report.stats.hops_intra > 0);
    assert_eq!(report.stats.hops_cross, 0);
    assert_eq!(report.stats.dir_hops_cross, 0);
}

/// Under the `Fixed` policy every directory leg lands on `home_socket`,
/// so socket-1 cores pay cross-socket hops for their own private lines.
/// `FirstTouch` homes each stripe where its owner runs, eliminating
/// every cross hop for this share-nothing workload.
#[test]
fn first_touch_localizes_private_stripes() {
    let fixed = striped_workload(MachineConfig::dual_socket(3));
    assert!(
        fixed.stats.dir_hops_cross > 0,
        "fixed-home run shows no cross-socket directory traffic to improve on"
    );
    let mut cfg = MachineConfig::dual_socket(3);
    cfg.home_policy = HomePolicy::FirstTouch;
    let ft = striped_workload(cfg);
    assert_eq!(
        ft.stats.hops_cross, 0,
        "first-touch left cross-socket traffic on a share-nothing workload"
    );
    assert!(ft.stats.hops_intra >= fixed.stats.hops_intra);
}

/// `Interleave` spreads homes by address hash: a dual-socket run sees
/// both intra- and cross-socket directory legs, and the cross count
/// sits strictly between first-touch (all local) and all-remote.
#[test]
fn interleave_spreads_directory_homes_across_sockets() {
    let mut cfg = MachineConfig::dual_socket(3);
    cfg.home_policy = HomePolicy::Interleave;
    let report = striped_workload(cfg);
    assert!(
        report.stats.hops_intra > 0,
        "no socket-local directory legs"
    );
    assert!(
        report.stats.hops_cross > 0,
        "hash interleave never crossed sockets"
    );
    assert!(report.stats.dir_hops_cross > 0);
    assert!(report.stats.dir_hops_cross <= report.stats.hops_cross);
}

/// Policies only move directory legs; they must not change simulated
/// results' determinism. Same config, same run, twice.
#[test]
fn policy_runs_are_deterministic() {
    for policy in [HomePolicy::Interleave, HomePolicy::FirstTouch] {
        let run = || {
            let mut cfg = MachineConfig::dual_socket(3);
            cfg.home_policy = policy;
            striped_workload(cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.end_time, b.end_time,
            "policy {policy:?} is nondeterministic"
        );
        assert_eq!(a.core_end, b.core_end);
        assert_eq!(
            (
                a.stats.hops_intra,
                a.stats.hops_cross,
                a.stats.dir_hops_cross
            ),
            (
                b.stats.hops_intra,
                b.stats.hops_cross,
                b.stats.dir_hops_cross
            )
        );
    }
}

// ---------------------------------------------------------------------
// Counter widths (stats.rs detail audit).
// ---------------------------------------------------------------------

/// The `Tx.detail` field carries abort status words and nesting depths;
/// at 176 cores cumulative status encodings overflow the old `u32`. The
/// widened field must hold and format values past the old width.
#[test]
fn tx_trace_detail_holds_values_past_u32() {
    let big: u64 = (u32::MAX as u64) + 0x1234;
    let ev = TraceEvent::Tx {
        time: 1,
        core: 0,
        what: "abort",
        detail: big,
    };
    let TraceEvent::Tx { detail, .. } = ev else {
        unreachable!()
    };
    assert!(
        detail > u32::MAX as u64,
        "detail field truncated to the old u32 width"
    );
    assert_eq!(format!("{detail:#x}"), "0x100001233");
}

// ---------------------------------------------------------------------
// Calendar wheel: overflow-heap → wheel migration ordering.
// ---------------------------------------------------------------------

/// Directed reproduction of the migration ordering contract: events
/// pushed far beyond the 256-tick horizon (overflow heap) must pop in
/// global (time, push-order) order even when in-horizon pushes land on
/// exactly the same ticks *after* the heap events have migrated into
/// the wheel.
#[test]
fn overflow_migration_keeps_fifo_order_against_same_tick_pushes() {
    let mut p = WheelProbe::new();
    // 88 far-future events on four ticks, several per tick — all beyond
    // the wheel horizon at clock 0, so they land in the overflow heap.
    for i in 0..88u64 {
        p.push(500 + (i % 4), 1_000 + i);
    }
    // In-horizon filler to walk the clock forward through migration.
    for t in 0..300u64 {
        p.push(t, t);
    }
    for t in 0..300u64 {
        assert_eq!(p.pop(), Some((t, t)), "filler popped out of order");
    }
    // Clock is now 299; ticks 500..=503 are inside the horizon and the
    // heap events have migrated (or will, lazily). Push younger events
    // onto those exact ticks: they must pop AFTER every migrated event
    // with the same tick.
    for i in 0..44u64 {
        p.push(500 + (i % 4), 2_000 + i);
    }
    let mut expected = Vec::new();
    for t in 0..4u64 {
        for i in 0..88u64 {
            if i % 4 == t {
                expected.push((500 + t, 1_000 + i));
            }
        }
        for i in 0..44u64 {
            if i % 4 == t {
                expected.push((500 + t, 2_000 + i));
            }
        }
    }
    let mut got = Vec::new();
    while let Some(pair) = p.pop() {
        got.push(pair);
    }
    assert_eq!(got, expected, "migration broke (time, push-order) ordering");
    assert!(p.is_empty());
}

/// The same contract exercised end-to-end at paper scale: 88 cores
/// where half sleep far past the wheel horizon (long `delay()`s land in
/// the overflow heap) while the other half keep the wheel dense with
/// short-latency coherence traffic. Two runs must agree exactly.
#[test]
fn long_delays_beyond_the_horizon_stay_deterministic_at_88_cores() {
    let run = || {
        let mut cfg = MachineConfig::dual_socket(44);
        cfg.delay_jitter_pct = 0;
        cfg.check_invariants = false;
        let cores = cfg.cores;
        let shared = Arc::new(AtomicU64::new(0));
        let programs: Vec<Program> = (0..cores)
            .map(|i| {
                let shared = Arc::clone(&shared);
                Box::new(move |ctx: &mut SimCtx| {
                    let base = shared.load(SeqCst);
                    if i % 2 == 0 {
                        // Far-heap traffic: sleeps several horizons out,
                        // interleaved with contended FAAs.
                        for k in 0..4 {
                            ctx.delay(700 + 13 * (i as u64) + k);
                            ctx.faa(base, 1);
                        }
                    } else {
                        // Wheel traffic: dense short-latency ops.
                        for k in 0..40 {
                            ctx.write(base + 1 + (i as u64 % 7), k);
                            let _ = ctx.read(base + 1 + (k % 7));
                        }
                    }
                }) as Program
            })
            .collect();
        let s2 = Arc::clone(&shared);
        Machine::new(cfg).run(
            Box::new(move |ctx| {
                let a = ctx.alloc(8);
                for k in 0..8 {
                    ctx.write(a + k, 0);
                }
                s2.store(a, SeqCst);
            }),
            programs,
        )
    };
    let (a, b) = (run(), run());
    assert!(a.end_time > 700, "long delays never reached the far heap");
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.core_end, b.core_end);
    assert_eq!(a.stats.op("delay"), b.stats.op("delay"));
}
