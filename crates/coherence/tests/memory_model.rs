//! Memory-model validation: the simulated coherent memory must be
//! indistinguishable from a plain sequential memory for single-threaded
//! programs, and linearizable (here: value-conserving and
//! last-write-wins-consistent) for concurrent ones.

use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A small deterministic op script interpreted both on the simulator and
/// on a Vec<u64> reference memory.
#[derive(Debug, Clone, Copy)]
enum MOp {
    Read(u64),
    Write(u64, u64),
    Cas(u64, u64, u64),
    Faa(u64, u64),
    Swap(u64, u64),
}

fn script(seed: u64, len: usize, addrs: u64) -> Vec<MOp> {
    let mut x = seed | 1;
    let mut rnd = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    };
    (0..len)
        .map(|_| {
            let a = rnd() % addrs;
            match rnd() % 5 {
                0 => MOp::Read(a),
                1 => MOp::Write(a, rnd() % 100),
                2 => MOp::Cas(a, rnd() % 4, rnd() % 100),
                3 => MOp::Faa(a, rnd() % 10),
                _ => MOp::Swap(a, rnd() % 100),
            }
        })
        .collect()
}

fn run_on_ref(ops: &[MOp], mem: &mut [u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &op in ops {
        match op {
            MOp::Read(a) => out.push(mem[a as usize]),
            MOp::Write(a, v) => mem[a as usize] = v,
            MOp::Cas(a, old, new) => {
                let ok = mem[a as usize] == old;
                if ok {
                    mem[a as usize] = new;
                }
                out.push(ok as u64);
            }
            MOp::Faa(a, v) => {
                out.push(mem[a as usize]);
                mem[a as usize] = mem[a as usize].wrapping_add(v);
            }
            MOp::Swap(a, v) => {
                out.push(mem[a as usize]);
                mem[a as usize] = v;
            }
        }
    }
    out
}

#[test]
fn single_thread_matches_sequential_memory() {
    for seed in [1u64, 9, 77, 1234] {
        let ops = script(seed, 400, 16);
        let mut ref_mem = vec![0u64; 16];
        let expect = run_on_ref(&ops, &mut ref_mem);

        let cfg = MachineConfig::single_socket(1);
        let base = Arc::new(AtomicU64::new(0));
        let got: Arc<Mutex<(Vec<u64>, Vec<u64>)>> = Arc::new(Mutex::new((Vec::new(), Vec::new())));
        let g2 = Arc::clone(&got);
        let b1 = Arc::clone(&base);
        let ops2 = ops.clone();
        let report = Machine::new(cfg).run(
            Box::new({
                let base = Arc::clone(&base);
                move |ctx| {
                    let a = ctx.alloc(16);
                    for i in 0..16 {
                        ctx.write(a + i, 0);
                    }
                    base.store(a, SeqCst);
                }
            }),
            vec![Box::new(move |ctx: &mut SimCtx| {
                let a = b1.load(SeqCst);
                let mut out = Vec::new();
                for &op in &ops2 {
                    match op {
                        MOp::Read(x) => out.push(ctx.read(a + x)),
                        MOp::Write(x, v) => ctx.write(a + x, v),
                        MOp::Cas(x, old, new) => out.push(ctx.cas(a + x, old, new) as u64),
                        MOp::Faa(x, v) => out.push(ctx.faa(a + x, v)),
                        MOp::Swap(x, v) => out.push(ctx.swap(a + x, v)),
                    }
                }
                let finals = (0..16).map(|i| ctx.read(a + i)).collect();
                *g2.lock().unwrap() = (out, finals);
            }) as Program],
        );
        let _ = report;
        let (out, finals) = got.lock().unwrap().clone();
        assert_eq!(out, expect, "seed {seed}: op results diverge");
        assert_eq!(finals, ref_mem, "seed {seed}: final memory diverges");
    }
}

#[test]
fn concurrent_increments_conserved_across_many_lines() {
    // 4 threads FAA over 8 lines in different orders; the total per line
    // must equal the number of increments targeting it.
    let threads = 4;
    let lines = 8u64;
    let per = 64u64;
    let mut cfg = MachineConfig::single_socket(threads);
    cfg.check_invariants = true; // exercise the invariant checker too
    let base = Arc::new(AtomicU64::new(0));
    let finals: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..threads)
        .map(|t| {
            let base = Arc::clone(&base);
            let finals = Arc::clone(&finals);
            Box::new(move |ctx: &mut SimCtx| {
                let a = base.load(SeqCst);
                for i in 0..per {
                    // Different stride per thread → different line order.
                    let line = (i * (t as u64 + 1)) % lines;
                    ctx.faa(a + line, 1);
                }
                ctx.barrier();
                if t == 0 {
                    let f = (0..lines).map(|i| ctx.read(a + i)).collect();
                    *finals.lock().unwrap() = f;
                }
            }) as Program
        })
        .collect();
    let b2 = Arc::clone(&base);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(lines as usize);
            for i in 0..lines {
                ctx.write(a + i, 0);
            }
            b2.store(a, SeqCst);
        }),
        programs,
    );
    let finals = finals.lock().unwrap();
    let total: u64 = finals.iter().sum();
    assert_eq!(total, threads as u64 * per, "increments lost: {finals:?}");
}

#[test]
fn mixed_transactional_and_plain_traffic_stays_coherent() {
    // One thread runs transactions over a line while others do plain
    // FAAs on a second line sharing nothing: the transaction must never
    // abort (no conflicts) and both results must be exact.
    let mut cfg = MachineConfig::single_socket(3);
    cfg.check_invariants = true;
    let base = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let programs: Vec<Program> = (0..3)
        .map(|t| {
            let base = Arc::clone(&base);
            let out = Arc::clone(&out);
            Box::new(move |ctx: &mut SimCtx| {
                let a = base.load(SeqCst);
                if t == 0 {
                    for _ in 0..50 {
                        let r = htm_like(ctx, a);
                        assert!(r.is_ok(), "unexpected abort: {r:?}");
                    }
                    out.lock().unwrap().0 = ctx.read(a);
                } else {
                    for _ in 0..50 {
                        ctx.faa(a + 1, 1);
                    }
                    ctx.barrier();
                    if t == 1 {
                        out.lock().unwrap().1 = ctx.read(a + 1);
                    }
                    return;
                }
                ctx.barrier();
            }) as Program
        })
        .collect();
    let b2 = Arc::clone(&base);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(2);
            ctx.write(a, 0);
            ctx.write(a + 1, 0);
            b2.store(a, SeqCst);
        }),
        programs,
    );
    let (tx_total, faa_total) = *out.lock().unwrap();
    assert_eq!(tx_total, 50, "transactional increments lost");
    assert_eq!(faa_total, 100, "plain increments lost");
}

fn htm_like(ctx: &mut SimCtx, a: u64) -> coherence::TxResult<()> {
    ctx.tx_begin()?;
    let v = ctx.tx_read(a)?;
    ctx.tx_write(a, v + 1)?;
    ctx.tx_end()?;
    Ok(())
}
