//! MESI Exclusive-state extension: uncontended read-then-write sequences
//! save a directory round trip; all contended behaviour is unchanged.

use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

fn run_counting(
    mesi: bool,
    cores: usize,
    prog: impl Fn(&mut SimCtx, u64) -> u64 + Send + Sync + 'static,
) -> (coherence::RunReport, Vec<u64>) {
    let mut cfg = MachineConfig::single_socket(cores);
    cfg.mesi_exclusive = mesi;
    let shared = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let prog = Arc::new(prog);
    let programs: Vec<Program> = (0..cores)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let out = Arc::clone(&out);
            let prog = Arc::clone(&prog);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                let r = prog(ctx, a);
                out.lock().unwrap().push((i, r));
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    let report = Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(8);
            // Initialize only the low half; lines a+4..a+8 stay untouched
            // (directory Invalid) so a sole reader can receive Exclusive.
            for i in 0..4 {
                ctx.write(a + i, 0);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    );
    let mut o = out.lock().unwrap().clone();
    o.sort_by_key(|(i, _)| *i);
    (report, o.into_iter().map(|(_, r)| r).collect())
}

#[test]
fn exclusive_grants_silent_write_upgrade() {
    // One core reads then writes a private line: under MSI the write
    // issues a GetM; under MESI-E it upgrades silently.
    let body = |ctx: &mut SimCtx, a: u64| {
        let v = ctx.read(a + 5); // miss → GetS (line untouched by setup)
        ctx.write(a + 5, v + 1); // MSI: GetM upgrade; MESI-E: silent
        ctx.read(a + 5)
    };
    let (msi, vals_msi) = run_counting(false, 1, body);
    let (mesi, vals_mesi) = run_counting(true, 1, body);
    assert_eq!(vals_msi, vals_mesi, "same results under both protocols");
    assert_eq!(vals_mesi[0], 1);
    // The bootstrap phase issues the same 4 setup writes in both runs;
    // the measured body costs one extra GetM under MSI and none under
    // MESI-E.
    assert_eq!(
        msi.stats.msg("GetM"),
        mesi.stats.msg("GetM") + 1,
        "MSI needs the upgrade, MESI-E does not"
    );
    assert_eq!(mesi.stats.msg("GetS"), 1);
}

#[test]
fn exclusive_downgrades_on_remote_read() {
    // Core 0 obtains E (and silently dirties the line); core 1 then reads
    // and must see the dirty value via the Fwd-GetS path.
    let (report, vals) = run_counting(true, 2, |ctx, a| {
        if ctx.thread_id() == 0 {
            let v = ctx.read(a + 6); // E grant (untouched line)
            ctx.write(a + 6, v + 42); // silent upgrade to M
            ctx.barrier();
            0
        } else {
            ctx.barrier();
            ctx.read(a + 6) // Fwd-GetS to the silent owner
        }
    });
    assert_eq!(vals[1], 42, "remote reader must see the silent write");
    assert!(report.stats.msg("Fwd-GetS") >= 1);
}

#[test]
fn exclusive_handed_off_on_remote_write() {
    let (_, vals) = run_counting(true, 2, |ctx, a| {
        if ctx.thread_id() == 0 {
            let _ = ctx.read(a + 7); // E on the untouched line
            ctx.barrier();
            ctx.barrier();
            ctx.read(a + 7)
        } else {
            ctx.barrier();
            ctx.faa(a + 7, 7); // Fwd-GetM takes the line from the E owner
            ctx.barrier();
            0
        }
    });
    assert_eq!(vals[0], 7, "E owner re-reads the remote writer's value");
}

#[test]
fn contended_faa_identical_under_both_protocols() {
    // The contended path never sees E (lines go M immediately), so totals
    // and message mixes should match between protocols.
    let body = |ctx: &mut SimCtx, a: u64| {
        let mut last = 0;
        for _ in 0..50 {
            last = ctx.faa(a, 1);
        }
        last
    };
    let (_, v_msi) = run_counting(false, 4, body);
    let (_, v_mesi) = run_counting(true, 4, body);
    let max_msi = v_msi.iter().max().unwrap();
    let max_mesi = v_mesi.iter().max().unwrap();
    assert_eq!(max_msi, max_mesi, "both protocols conserve all increments");
    assert_eq!(*max_mesi, 4 * 50 - 1);
}

#[test]
fn transactions_work_over_exclusive_lines() {
    let (report, vals) = run_counting(true, 1, |ctx, a| {
        let _ = ctx.read(a + 4); // E grant (untouched line)
        let r = (|| -> coherence::TxResult<u64> {
            ctx.tx_begin()?;
            let v = ctx.tx_read(a + 4)?;
            ctx.tx_write(a + 4, v + 9)?; // buffered over the E line
            ctx.tx_end()?;
            Ok(v)
        })();
        assert!(r.is_ok());
        ctx.read(a + 4)
    });
    assert_eq!(vals[0], 9);
    assert_eq!(report.stats.tx_commits, 1);
    // Only the bootstrap's 4 setup writes issue GetMs; the transaction's
    // write upgrades the Exclusive line silently.
    assert_eq!(report.stats.msg("GetM"), 4, "no upgrade traffic needed");
}
