//! Regression tests for the §3.3 "pending GetM" behaviour: a transaction
//! aborted while its write's GetM is in flight leaves a *headless*
//! request behind; the thread continues immediately and may access the
//! same line again, which must merge into the in-flight request (MSHR
//! behaviour) instead of deadlocking or double-requesting.

use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Two cores race transactional writes; the loser's GetM continues
/// headless while the loser immediately re-reads the line. Terminates
/// (no deadlock) and the re-read returns a coherent value.
#[test]
fn aborted_txn_write_then_immediate_reread() {
    let cfg = MachineConfig::single_socket(2);
    let shared = Arc::new(AtomicU64::new(0));
    let out: Arc<Mutex<Vec<(usize, bool, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..2)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let out = Arc::clone(&out);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                // Both become sharers, then race a transactional write
                // with a long pre-write delay for one and none for the
                // other, so exactly one loses mid-GetM or mid-delay.
                let _ = ctx.read(a);
                ctx.barrier();
                let r = (|| -> coherence::TxResult<()> {
                    ctx.tx_begin()?;
                    let v = ctx.tx_read(a)?;
                    if i == 0 {
                        ctx.tx_delay(40)?;
                    }
                    ctx.tx_write(a, v + 10 + i as u64)?;
                    ctx.tx_end()?;
                    Ok(())
                })();
                // Immediately read the same line — on the loser this must
                // merge with its headless GetM.
                let seen = ctx.read(a);
                out.lock().unwrap().push((i, r.is_ok(), seen));
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    let report = Machine::new(cfg).run(
        Box::new(move |ctx| {
            let addr = ctx.alloc(1);
            ctx.write(addr, 0);
            s2.store(addr, SeqCst);
        }),
        programs,
    );
    let out = out.lock().unwrap();
    assert_eq!(out.len(), 2, "both threads must terminate");
    let winners = out.iter().filter(|(_, ok, _)| *ok).count();
    assert!(winners >= 1, "at least one transaction commits");
    if winners == 1 {
        // The loser's immediate re-read must observe the winner's value.
        let (_, _, winner_val) = out.iter().find(|(_, ok, _)| *ok).unwrap();
        let (_, _, loser_val) = out.iter().find(|(_, ok, _)| !*ok).unwrap();
        assert_eq!(
            loser_val, winner_val,
            "post-abort read must see the committed value"
        );
    }
    assert!(report.stats.tx_commits >= 1);
}

/// Hammer the pattern: repeated transactional CAS-like races where losers
/// instantly retry with a read of the contested line. This is the exact
/// shape that deadlocked a one-outstanding-request cache model.
#[test]
fn txcas_retry_storm_terminates() {
    let shared = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let programs: Vec<Program> = (0..6)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            Box::new(move |ctx: &mut SimCtx| {
                let a = shared.load(SeqCst);
                ctx.barrier();
                let mut successes = 0u64;
                for _ in 0..30 {
                    // read-tx-write with no delay: losers abort at or
                    // after the write step, leaving headless GetMs, then
                    // immediately re-read.
                    let old = ctx.read(a);
                    let r = (|| -> coherence::TxResult<()> {
                        ctx.tx_begin()?;
                        let v = ctx.tx_read(a)?;
                        if v != old {
                            return Err(ctx.tx_abort(1));
                        }
                        ctx.tx_write(a, v + 1)?;
                        ctx.tx_end()?;
                        Ok(())
                    })();
                    if r.is_ok() {
                        successes += 1;
                    }
                }
                done.fetch_add(successes, SeqCst);
                let _ = i;
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    let final_val = {
        let shared = Arc::clone(&shared);
        let out = Arc::new(AtomicU64::new(0));
        let o2 = Arc::clone(&out);
        let mut programs = programs;
        programs.push(Box::new(move |ctx: &mut SimCtx| {
            let a = shared.load(SeqCst);
            ctx.barrier();
            // Wait out the storm, then read the total.
            ctx.delay(200_000);
            o2.store(ctx.read(a), SeqCst);
        }) as Program);
        let mut cfg2 = MachineConfig::single_socket(7);
        cfg2.check_invariants = false;
        Machine::new(cfg2).run(
            Box::new(move |ctx| {
                let addr = ctx.alloc(1);
                ctx.write(addr, 0);
                s2.store(addr, SeqCst);
            }),
            programs,
        );
        out.load(SeqCst)
    };
    // Every committed transaction incremented by exactly 1.
    assert_eq!(
        final_val,
        done.load(SeqCst),
        "committed increments must all land"
    );
    assert!(final_val > 0, "some transactions must succeed");
}
