//! Barrier primitive semantics: all participants resume at the same
//! simulated time, and phased workloads order correctly across it.

use absmem::ThreadCtx;
use coherence::{Machine, MachineConfig, Program, SimCtx};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

#[test]
fn barrier_aligns_local_clocks() {
    let cfg = MachineConfig::single_socket(4);
    let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..4)
        .map(|i| {
            let times = Arc::clone(&times);
            Box::new(move |ctx: &mut SimCtx| {
                // Threads arrive at very different local times.
                ctx.delay(100 * (i as u64 + 1));
                ctx.barrier();
                times.lock().unwrap().push(ctx.now());
            }) as Program
        })
        .collect();
    Machine::new(cfg).run(Box::new(|_| {}), programs);
    let times = times.lock().unwrap();
    assert_eq!(times.len(), 4);
    assert!(
        times.iter().all(|&t| t == times[0]),
        "all threads must resume at the same instant: {times:?}"
    );
    assert!(times[0] >= 400, "resume time is the latest arrival");
}

#[test]
fn writes_before_barrier_visible_after() {
    let cfg = MachineConfig::single_socket(3);
    let shared = Arc::new(AtomicU64::new(0));
    let sums: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..3)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let sums = Arc::clone(&sums);
            Box::new(move |ctx: &mut SimCtx| {
                let base = shared.load(SeqCst);
                ctx.write(base + i as u64, (i as u64 + 1) * 10);
                ctx.barrier();
                let sum: u64 = (0..3).map(|j| ctx.read(base + j)).sum();
                sums.lock().unwrap().push(sum);
            }) as Program
        })
        .collect();
    let s2 = Arc::clone(&shared);
    Machine::new(cfg).run(
        Box::new(move |ctx| {
            let a = ctx.alloc(3);
            for j in 0..3 {
                ctx.write(a + j, 0);
            }
            s2.store(a, SeqCst);
        }),
        programs,
    );
    for s in sums.lock().unwrap().iter() {
        assert_eq!(*s, 60, "every pre-barrier write must be visible");
    }
}

/// Regression: a zero-thread run used to be one `.max()` call away from
/// an unhelpful iterator panic in the barrier-release path. It must
/// return a clean report instead.
#[test]
fn zero_thread_run_returns_clean_report() {
    for os_threads in [false, true] {
        let mut cfg = MachineConfig::single_socket(2);
        cfg.os_thread_scheduler = os_threads;
        let report = Machine::new(cfg).run(
            Box::new(|ctx| {
                let a = ctx.alloc(2);
                ctx.write(a, 7);
            }),
            Vec::new(),
        );
        assert!(report.core_end.is_empty(), "no program cores ran");
        assert_eq!(report.stats.tx_commits, 0);
    }
}

/// Regression companion: programs whose bodies do nothing (no ops, no
/// barrier) must also complete cleanly on both schedulers.
#[test]
fn all_empty_programs_return_clean_report() {
    for os_threads in [false, true] {
        let mut cfg = MachineConfig::single_socket(3);
        cfg.os_thread_scheduler = os_threads;
        let programs: Vec<Program> = (0..3)
            .map(|_| Box::new(|_: &mut SimCtx| {}) as Program)
            .collect();
        let report = Machine::new(cfg).run(Box::new(|_| {}), programs);
        assert_eq!(report.core_end.len(), 3);
    }
}

#[test]
fn consecutive_barriers_work() {
    let cfg = MachineConfig::single_socket(3);
    let order: Arc<Mutex<Vec<(usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..3)
        .map(|i| {
            let order = Arc::clone(&order);
            Box::new(move |ctx: &mut SimCtx| {
                for phase in 0..3u32 {
                    ctx.delay(10 + i as u64 * 7);
                    order.lock().unwrap().push((i, phase));
                    ctx.barrier();
                }
            }) as Program
        })
        .collect();
    Machine::new(cfg).run(Box::new(|_| {}), programs);
    let order = order.lock().unwrap();
    // Phases must be fully separated: all phase-k records precede all
    // phase-(k+1) records.
    for w in order.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "phase interleaving across barrier: {order:?}"
        );
    }
    assert_eq!(order.len(), 9);
}
