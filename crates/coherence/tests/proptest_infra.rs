//! Property tests for the engine's PR 1 infrastructure: the
//! calendar-wheel event queue (checked against a `BinaryHeap` oracle)
//! and the in-tree FxHash (determinism and collision sanity).
//!
//! The wheel is exercised through `coherence::sim::testhooks::WheelProbe`,
//! which drives the real `EventQ` exactly the way the engine does
//! (monotone clock, engine-allocated sequence tiebreaker).

use coherence::fxhash::{FxHashMap, FxHasher};
use coherence::sim::testhooks::WheelProbe;
use simrng::SimRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};

/// Reference implementation: a plain binary min-heap ordered by
/// `(time, seq)` — the specified pop order of the event queue.
#[derive(Default)]
struct HeapOracle {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
}

impl HeapOracle {
    fn push(&mut self, time: u64, payload: u64) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, payload)));
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((t, _, p))| (t, p))
    }
}

#[test]
fn wheel_matches_heap_oracle_on_random_schedules() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0x0077_e3a1 ^ seed.wrapping_mul(0x9e37_79b9));
        let mut wheel = WheelProbe::new();
        let mut oracle = HeapOracle::default();
        let mut payload = 0u64;
        for step in 0..4_000 {
            let push = wheel.is_empty() || rng.gen_bool(0.55);
            if push {
                // Mostly near-future times (wheel slots), with occasional
                // far-future outliers that must overflow to the backing
                // heap, and exact-now ties for stability coverage.
                let offset = match rng.gen_usize(10) {
                    0 => 0,
                    1..=6 => rng.gen_range_inclusive(1, 64),
                    7 | 8 => rng.gen_range_inclusive(65, 4_096),
                    _ => rng.gen_range_inclusive(100_000, 1 << 30),
                };
                payload += 1;
                wheel.push(wheel.clock() + offset, payload);
                oracle.push(wheel.clock() + offset, payload);
            } else {
                let got = wheel.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "seed {seed} step {step}: pop diverged");
            }
            assert_eq!(wheel.len(), oracle.heap.len(), "seed {seed} step {step}");
        }
        // Drain: the full remaining order must match too.
        while let Some(want) = oracle.pop() {
            assert_eq!(wheel.pop(), Some(want), "seed {seed} drain diverged");
        }
        assert!(wheel.is_empty());
    }
}

#[test]
fn wheel_is_fifo_within_a_tick() {
    // Events at the same time must pop in push order (the seq
    // tiebreaker) — the scheduler's round-robin fairness depends on it.
    let mut wheel = WheelProbe::new();
    for p in 0..100u64 {
        wheel.push(7, p);
    }
    for want in 0..100u64 {
        assert_eq!(wheel.pop(), Some((7, want)));
    }
    assert!(wheel.is_empty());
}

#[test]
fn wheel_orders_far_future_bursts() {
    // Alternate near-slot and far-heap times; popped times must be
    // non-decreasing and nothing may be lost.
    let mut wheel = WheelProbe::new();
    let mut n = 0u64;
    for k in 0..256u64 {
        wheel.push(k, n);
        n += 1;
        wheel.push(1_000_000_000 + (256 - k), n);
        n += 1;
    }
    let mut popped = 0u64;
    let mut last = 0u64;
    while let Some((t, _)) = wheel.pop() {
        assert!(t >= last, "time went backwards: {last} -> {t}");
        last = t;
        popped += 1;
    }
    assert_eq!(popped, n);
}

/// Property test aimed squarely at the overflow-heap path: almost every
/// push lands beyond the 256-slot horizon, and pops repeatedly advance
/// the clock across horizon boundaries so far events migrate into wheel
/// slots in bulk. Pop order must still match the `(time, seq)` oracle
/// exactly — including ties between a migrated far event and a direct
/// in-horizon push at the same timestamp, which is the subtle interleave
/// the migration-before-push invariant exists for.
#[test]
fn overflow_heap_migration_matches_oracle_across_horizon_sweeps() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0xfa12_07e1 ^ seed.wrapping_mul(0x9e37_79b9));
        let mut wheel = WheelProbe::new();
        let mut oracle = HeapOracle::default();
        let mut payload = 0u64;
        let mut pending_far: Vec<u64> = Vec::new();
        for step in 0..6_000 {
            let push = wheel.is_empty() || rng.gen_bool(0.5);
            if push {
                let offset = match rng.gen_usize(10) {
                    // Clustered just past the horizon: these overflow at
                    // push time but migrate almost immediately.
                    0..=4 => rng.gen_range_inclusive(256, 512),
                    // Boundary triple: last in-horizon slot, first far.
                    5 => 255,
                    6 => 256,
                    // Deeper far-future, several horizons out.
                    7 | 8 => rng.gen_range_inclusive(513, 8_192),
                    // Tie with an already-overflowed event: replaying a
                    // previously far time once it is within the horizon
                    // makes a direct bucket push share a timestamp with
                    // the migrated event — seq order must win.
                    _ => {
                        let t = pending_far
                            .iter()
                            .rev()
                            .find(|&&t| t >= wheel.clock())
                            .copied();
                        match t {
                            Some(t) => t - wheel.clock(),
                            None => rng.gen_range_inclusive(256, 512),
                        }
                    }
                };
                let time = wheel.clock() + offset;
                if offset >= 256 {
                    pending_far.push(time);
                    if pending_far.len() > 64 {
                        pending_far.remove(0);
                    }
                }
                payload += 1;
                wheel.push(time, payload);
                oracle.push(time, payload);
            } else {
                let got = wheel.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "seed {seed} step {step}: pop diverged");
            }
            assert_eq!(wheel.len(), oracle.heap.len(), "seed {seed} step {step}");
        }
        while let Some(want) = oracle.pop() {
            assert_eq!(wheel.pop(), Some(want), "seed {seed} drain diverged");
        }
        assert!(wheel.is_empty());
    }
}

/// The probe's own guard rejects past scheduling loudly.
#[test]
#[should_panic(expected = "event scheduled in the past")]
fn wheel_probe_rejects_past_scheduling() {
    let mut wheel = WheelProbe::new();
    wheel.push(100, 1);
    wheel.pop();
    wheel.push(99, 2);
}

/// Bypassing the probe guard, the raw queue's debug assertion names the
/// misuse precisely instead of silently corrupting slot order. (The
/// companion pop-side assertion — an overflow event older than the event
/// being popped — is unreachable unless this one is first defeated, so
/// this is the canonical misuse test.)
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "events must never be scheduled in the past")]
fn raw_queue_debug_asserts_on_past_scheduling() {
    let mut wheel = WheelProbe::new();
    wheel.push(300, 1);
    wheel.pop(); // clock -> 300
    wheel.push_unguarded(10, 2);
}

fn fx_hash_one<T: Hash>(v: T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn fxhash_is_deterministic_across_instances_and_runs() {
    // No per-process random state: two fresh hashers agree, and known
    // inputs hash to pinned values so the function cannot drift silently
    // between sessions (map iteration order feeds panic messages only,
    // but determinism is part of the simulator's reproducibility story).
    for v in [0u64, 1, 0x51_7c_c1_b7, u64::MAX, 0xdead_beef_0000_0001] {
        assert_eq!(fx_hash_one(v), fx_hash_one(v));
    }
    assert_eq!(fx_hash_one("GetM"), fx_hash_one("GetM"));
    assert_eq!(
        fx_hash_one((3usize, 0x40u64)),
        fx_hash_one((3usize, 0x40u64))
    );
}

#[test]
fn fxhash_collision_sanity_on_address_patterns() {
    // The engine keys maps by word addresses: consecutive, line-strided,
    // and allocator-random. Distinct u64 keys must hash distinctly (the
    // rotate-xor-multiply construction is injective on one u64 block).
    let mut keys: Vec<u64> = Vec::new();
    keys.extend(0..10_000u64); // consecutive
    keys.extend((0..10_000u64).map(|a| 0x1000 + a * 8)); // word stride
    keys.extend((0..10_000u64).map(|a| 0x8000_0000 + a * 64)); // line stride
    let mut rng = SimRng::seed_from_u64(0xf0_c011);
    keys.extend((0..10_000u64).map(|_| rng.next_u64()));
    keys.sort_unstable();
    keys.dedup();

    let mut hashes: Vec<u64> = keys.iter().map(|&k| fx_hash_one(k)).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), keys.len(), "u64 key collision");
}

#[test]
fn fxhash_map_holds_simulation_scale_working_sets() {
    // End-to-end: a map under the same access pattern as the line cache —
    // insert, overwrite, lookup, remove — with every operation verified.
    let mut m: FxHashMap<u64, u64> = FxHashMap::default();
    let mut rng = SimRng::seed_from_u64(0x1ab5);
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..50_000 {
        match rng.gen_usize(4) {
            0 | 1 => {
                let k = rng.next_u64() & 0xffff_fff8;
                if m.insert(k, k ^ 0x5a5a).is_none() {
                    live.push(k);
                }
            }
            2 => {
                if !live.is_empty() {
                    let k = live[rng.gen_usize(live.len())];
                    assert_eq!(m.get(&k), Some(&(k ^ 0x5a5a)));
                }
            }
            _ => {
                if !live.is_empty() {
                    let i = rng.gen_usize(live.len());
                    let k = live.swap_remove(i);
                    assert_eq!(m.remove(&k), Some(k ^ 0x5a5a));
                }
            }
        }
    }
    assert_eq!(m.len(), live.len());
}
