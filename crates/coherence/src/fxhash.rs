//! In-tree FxHash: the multiply-xor hasher used by rustc and Firefox.
//!
//! The engine's hot maps (cache lines, pending requests, directory
//! entries) are keyed by word addresses and small integers, where
//! SipHash's DoS resistance buys nothing and its per-lookup cost is
//! measurable. FxHash is a single multiply and xor per 8 bytes. Keys are
//! program-controlled simulation addresses, not attacker input, so the
//! weaker distribution is acceptable.
//!
//! Hash values never influence simulated results: map iteration order is
//! observable only in the invariant checker's panic message, and all
//! result-bearing iteration in the engine runs over explicitly ordered
//! structures.

use std::hash::{BuildHasherDefault, Hasher};

/// Fx's 64-bit multiplier (derived from the golden ratio).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_addresses_hash_distinctly() {
        let hashes: Vec<u64> = (0..1000u64).map(|a| hash_one(a * 8)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for a in 0..512u64 {
            m.insert(a, a * 3);
        }
        for a in 0..512u64 {
            assert_eq!(m.get(&a), Some(&(a * 3)));
        }
    }

    #[test]
    fn byte_slices_and_ints_agree_on_self() {
        // Hashing must be deterministic across calls (no random state).
        assert_eq!(hash_one(0xdead_beefu64), hash_one(0xdead_beefu64));
        assert_eq!(hash_one("line"), hash_one("line"));
    }
}
