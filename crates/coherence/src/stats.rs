//! Run statistics and trace records.

use std::collections::HashMap;

/// Counters accumulated over a simulation run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Messages delivered, by kind name.
    pub msgs: HashMap<&'static str, u64>,
    /// Transactions committed.
    pub tx_commits: u64,
    /// Transactions aborted by a data conflict.
    pub tx_aborts_conflict: u64,
    /// Conflict aborts specifically caused by a Fwd-GetS hitting a
    /// transactionally written line — the paper's *tripped writer* (§3.4).
    pub tripped_writers: u64,
    /// Transactions aborted explicitly by the program.
    pub tx_aborts_explicit: u64,
    /// Spurious (interrupt-like) aborts injected by configuration.
    pub tx_aborts_spurious: u64,
    /// Coherence messages stalled at a cache because of a pending request
    /// or an executing RMW.
    pub stalls: u64,
    /// Fwd-GetS requests stalled by the §3.4.1 microarchitectural fix.
    pub fix_stalls: u64,
    /// Memory operations executed, by kind ("read", "write", "cas", ...).
    pub ops: HashMap<&'static str, u64>,
}

impl Stats {
    pub(crate) fn count_msg(&mut self, kind: &'static str) {
        *self.msgs.entry(kind).or_insert(0) += 1;
    }

    pub(crate) fn count_op(&mut self, kind: &'static str) {
        *self.ops.entry(kind).or_insert(0) += 1;
    }

    /// Total messages of the given kind.
    pub fn msg(&self, kind: &str) -> u64 {
        self.msgs.get(kind).copied().unwrap_or(0)
    }

    /// Total operations of the given kind ("read", "write", "cas", ...).
    pub fn op(&self, kind: &str) -> u64 {
        self.ops.get(kind).copied().unwrap_or(0)
    }

    /// Total aborts of all causes.
    pub fn tx_aborts(&self) -> u64 {
        self.tx_aborts_conflict + self.tx_aborts_explicit + self.tx_aborts_spurious
    }
}

/// One entry in the (optional) event trace, sufficient to re-draw the
/// paper's Figure 2/3 message diagrams.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A message was sent at `sent` and delivered at `recv`.
    Msg {
        sent: u64,
        recv: u64,
        src: String,
        dst: String,
        kind: &'static str,
        line: u64,
    },
    /// A transaction-lifecycle event ("xbegin", "commit", "abort") on
    /// `core` at `time`.
    Tx {
        time: u64,
        core: usize,
        what: &'static str,
        detail: u32,
    },
    /// A memory operation by `core` completed at `time`.
    Op {
        time: u64,
        core: usize,
        what: &'static str,
        line: u64,
    },
}

/// Result of a full simulation run.
#[derive(Debug)]
pub struct RunReport {
    /// Simulated time at which the last thread finished, cycles.
    pub end_time: u64,
    /// Simulated finish time of each application thread, cycles.
    pub core_end: Vec<u64>,
    /// Counter snapshot.
    pub stats: Stats,
    /// Message/transaction trace, if `MachineConfig::trace` was set.
    pub trace: Vec<TraceEvent>,
}
