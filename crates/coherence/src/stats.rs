//! Run statistics and trace records.
//!
//! Counters are fixed arrays indexed by message/op kind — incrementing
//! one is an add at a compile-time-known offset, with no hashing on the
//! per-operation path — and iteration order is the declaration order
//! below, so every report renders deterministically.

/// Message kinds, in canonical (declaration/report) order. Indices match
/// [`crate::msg::Msg::kind_id`].
pub const MSG_KINDS: [&str; 9] = [
    "GetS",
    "GetM",
    "Data",
    "Inv",
    "InvAck",
    "Fwd-GetS",
    "Fwd-GetM",
    "DataOwner",
    "WbData",
];

/// Operation kinds, in canonical (declaration/report) order. Indices
/// match `OpKind::name_id`.
pub const OP_KINDS: [&str; 10] = [
    "read", "write", "cas", "faa", "swap", "delay", "xbegin", "xend", "xabort", "waittick",
];

/// Counters accumulated over a simulation run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Messages delivered, indexed by [`MSG_KINDS`].
    msgs: [u64; MSG_KINDS.len()],
    /// Transactions committed.
    pub tx_commits: u64,
    /// Transactions aborted by a data conflict.
    pub tx_aborts_conflict: u64,
    /// Conflict aborts specifically caused by a Fwd-GetS hitting a
    /// transactionally written line — the paper's *tripped writer* (§3.4).
    pub tripped_writers: u64,
    /// Transactions aborted explicitly by the program.
    pub tx_aborts_explicit: u64,
    /// Spurious (interrupt-like) aborts injected by configuration.
    pub tx_aborts_spurious: u64,
    /// Aborts from exceeding the modelled transactional capacity
    /// (`MachineConfig::tx_capacity_lines`).
    pub tx_aborts_capacity: u64,
    /// Aborts injected by a preemption/interrupt component
    /// (`ComponentSpec::Interrupt` → `txn::INTERRUPT`).
    pub tx_aborts_interrupt: u64,
    /// Interrupts fired by preemption components, whether or not the
    /// victim was in a transaction (non-transactional victims absorb the
    /// handler without an engine-visible effect).
    pub interrupts_fired: u64,
    /// Component ticks dispatched (`Event::CompTick`). Like `events`, an
    /// engine-work measure, not a protocol observable.
    pub comp_ticks: u64,
    /// Coherence messages stalled at a cache because of a pending request
    /// or an executing RMW.
    pub stalls: u64,
    /// Fwd-GetS requests stalled by the §3.4.1 microarchitectural fix.
    pub fix_stalls: u64,
    /// Operations admitted by the uncontended fast path
    /// (`MachineConfig::fast_path`): local hits decided at submission,
    /// skipping the inbox and per-op dispatch. Excluded from the
    /// determinism fingerprint — the fast path changes *how* an op
    /// retires, never *what* it does.
    pub fastpath_hits: u64,
    /// Operations submitted while the fast path was enabled that did not
    /// meet its admission conditions and took the full protocol path.
    pub fastpath_fallbacks: u64,
    /// Scheduler events processed (`Sim::step` calls that dispatched an
    /// event). A wall-clock cost measure — how much engine work a run
    /// took — not a protocol observable; excluded from the determinism
    /// fingerprint for the same reason as the fast-path counters.
    pub events: u64,
    /// Messages whose endpoints sat on the same socket (a directory leg
    /// is priced at the line's home socket — see
    /// `MachineConfig::home_policy`).
    pub hops_intra: u64,
    /// Messages that crossed the socket interconnect.
    pub hops_cross: u64,
    /// The subset of `hops_cross` with the directory on one end: a
    /// requesting or responding core that was not on the line's home
    /// socket. The NUMA cost the home-socket policies exist to shape;
    /// rendered as a Dir-track counter by the obs Chrome exporter.
    pub dir_hops_cross: u64,
    /// Total fiber-stack bytes the run reserved (spawned fibers ×
    /// `MachineConfig::fiber_stack`). A scheduler-footprint measure like
    /// `events`: 0 under the OS-thread scheduler, excluded from the
    /// determinism fingerprint.
    pub stack_bytes_total: u64,
    /// Deepest stack use, bytes, observed over all fibers via the canary
    /// paint. 0 unless `MachineConfig::measure_stacks` was set (and
    /// always 0 under the OS-thread scheduler).
    pub stack_high_water: u64,
    /// Memory operations executed, indexed by [`OP_KINDS`].
    ops: [u64; OP_KINDS.len()],
}

impl Stats {
    #[inline]
    pub(crate) fn count_msg(&mut self, kind_id: usize) {
        self.msgs[kind_id] += 1;
    }

    #[inline]
    pub(crate) fn count_op(&mut self, kind_id: usize) {
        self.ops[kind_id] += 1;
    }

    /// Total messages of the given kind (0 for unknown names).
    pub fn msg(&self, kind: &str) -> u64 {
        MSG_KINDS
            .iter()
            .position(|&k| k == kind)
            .map_or(0, |i| self.msgs[i])
    }

    /// Total operations of the given kind ("read", "write", "cas", ...;
    /// 0 for unknown names).
    pub fn op(&self, kind: &str) -> u64 {
        OP_KINDS
            .iter()
            .position(|&k| k == kind)
            .map_or(0, |i| self.ops[i])
    }

    /// Per-kind message counts, in [`MSG_KINDS`] order.
    pub fn msgs(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        MSG_KINDS.iter().zip(self.msgs).map(|(&k, n)| (k, n))
    }

    /// Per-kind operation counts, in [`OP_KINDS`] order.
    pub fn ops(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        OP_KINDS.iter().zip(self.ops).map(|(&k, n)| (k, n))
    }

    /// Total aborts of all causes.
    pub fn tx_aborts(&self) -> u64 {
        self.tx_aborts_conflict
            + self.tx_aborts_explicit
            + self.tx_aborts_spurious
            + self.tx_aborts_capacity
            + self.tx_aborts_interrupt
    }
}

/// One entry in the (optional) event trace, sufficient to re-draw the
/// paper's Figure 2/3 message diagrams.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A message was sent at `sent` and delivered at `recv`.
    Msg {
        sent: u64,
        recv: u64,
        src: String,
        dst: String,
        kind: &'static str,
        line: u64,
    },
    /// A transaction-lifecycle event ("xbegin", "commit", "abort") on
    /// `core` at `time`. `detail` (nesting depth or RTM status word) is
    /// carried at full counter width: paper-scale machines (176 cores ×
    /// long runs) overflow a `u32` once cumulative quantities ride in it.
    Tx {
        time: u64,
        core: usize,
        what: &'static str,
        detail: u64,
    },
    /// A memory operation by `core` completed at `time`.
    Op {
        time: u64,
        core: usize,
        what: &'static str,
        line: u64,
    },
    /// A component-spine action at `time`: component `comp` (`name` is
    /// its stable name) did `what` ("interrupt", "release", "bank") to
    /// application core `core`.
    Comp {
        time: u64,
        comp: usize,
        name: &'static str,
        what: &'static str,
        core: usize,
    },
}

/// Result of a full simulation run.
#[derive(Debug)]
pub struct RunReport {
    /// Simulated time at which the last thread finished, cycles.
    pub end_time: u64,
    /// Simulated finish time of each application thread, cycles.
    pub core_end: Vec<u64>,
    /// Counter snapshot.
    pub stats: Stats,
    /// Message/transaction trace, if `MachineConfig::trace` was set.
    pub trace: Vec<TraceEvent>,
}
