//! The component spine: every time-evolving actor in the machine —
//! cores, the directory, and non-core devices — is a [`Component`]
//! scheduled on the simulator's slab-backed calendar wheel.
//!
//! The shape follows the classic embedded-emulator architecture: a
//! component exposes `next_tick` (the absolute time it next wants to
//! run) and `tick` (what it does when that time arrives). The simulator
//! turns each wanted tick into an ordinary `Event::CompTick` on the
//! shared event queue, so component activity interleaves with coherence
//! messages under the same `(time, seq)` total order that makes runs
//! deterministic.
//!
//! ## Tick ordering and determinism
//!
//! Component ticks are events like any other: pushed with the machine's
//! monotonically increasing sequence number and popped in `(time, seq)`
//! order. Two components due at the same cycle therefore fire in the
//! order their ticks were *scheduled* (registration order on the first
//! round, reschedule order after), never in a data-structure-dependent
//! or platform-dependent order. A component may not touch the seeded
//! RNG — its context ([`crate::CompCtx`]) exposes only deterministic
//! machine state — so attaching a component that takes no action (a
//! [`Heartbeat`]) leaves every thread-visible value, message, and resume
//! time of a run unchanged, and attaching none at all leaves the event
//! stream byte-identical to the pre-component simulator. The built-in
//! actors below are intentionally *fused*: the core pipeline and the
//! directory are message-driven (their "ticks" are the Deliver/IssueOp
//! events the protocol already schedules), so their `next_tick` is
//! `None` and they never occupy wheel slots of their own.

use crate::config::ComponentSpec;
use crate::sim::CompCtx;

/// One time-evolving actor on the machine's discrete-event spine.
///
/// `Send` because the OS-thread scheduler moves the owning `Sim` across
/// threads between phases.
pub trait Component: Send {
    /// Short stable name, used for trace tracks and assertion messages.
    fn name(&self) -> &'static str;

    /// Absolute time of this component's next tick, or `None` if it has
    /// none (finished, or purely event-driven like the built-in cores).
    /// Called once at registration (with `now == 0`) and again after
    /// every `tick`; a returned time must be `> now` on reschedule.
    fn next_tick(&self, now: u64) -> Option<u64>;

    /// Runs the component at its scheduled time. `ctx` exposes the
    /// deterministic machine surface: clock, core states, interrupt
    /// injection, and tick-gate release.
    fn tick(&mut self, now: u64, ctx: &mut CompCtx<'_>);
}

/// Component 0: the core pipeline. Cores are event-driven — their
/// "ticks" are the IssueOp/Deliver/RmwDone/DelayDone events the
/// protocol schedules — so the component registration is fused: it
/// never requests a tick of its own, and the hot path stays exactly the
/// pre-component event dispatch.
pub struct CoreComplex;

impl Component for CoreComplex {
    fn name(&self) -> &'static str {
        "cores"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64, _ctx: &mut CompCtx<'_>) {
        unreachable!("the core complex is message-driven and never ticks");
    }
}

/// Component 1: the directory/LLC slice. Like the cores, message-driven
/// and fused into the Deliver dispatch.
pub struct DirectoryUnit;

impl Component for DirectoryUnit {
    fn name(&self) -> &'static str {
        "dir"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64, _ctx: &mut CompCtx<'_>) {
        unreachable!("the directory is message-driven and never ticks");
    }
}

/// Stand-in installed in a component's slot while its `tick` runs (the
/// component is temporarily moved out so it can borrow the simulator
/// mutably through [`CompCtx`]).
pub(crate) struct Tombstone;

impl Component for Tombstone {
    fn name(&self) -> &'static str {
        "tombstone"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        None
    }

    fn tick(&mut self, _now: u64, _ctx: &mut CompCtx<'_>) {
        unreachable!("a component ticked re-entrantly while its own tick was running");
    }
}

/// Periodic preemption/interrupt source (`ComponentSpec::Interrupt`): the
/// machine-level cause of `txn::INTERRUPT` aborts. Victim selection is
/// either a pinned core or a deterministic round-robin over the
/// application cores.
pub struct InterruptSource {
    period: u64,
    cost: u64,
    victim: Option<usize>,
    next: u64,
    rr: usize,
}

impl Component for InterruptSource {
    fn name(&self) -> &'static str {
        "interrupt"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        Some(self.next)
    }

    fn tick(&mut self, now: u64, ctx: &mut CompCtx<'_>) {
        self.next = now + self.period;
        let victim = match self.victim {
            Some(core) => core,
            None => {
                let v = self.rr % ctx.cores();
                self.rr += 1;
                v
            }
        };
        ctx.interrupt(victim, self.cost);
    }
}

/// Periodic tick gate (`ComponentSpec::TickGate`): releases one core's
/// `wait_tick()` on a fixed schedule, banking ticks the core has not
/// asked for yet. The pacing primitive behind timer-driven consumers
/// and DMA-style bulk producers (which are ordinary programs built from
/// `wait_tick()` + queue ops — see `harness::scenario`).
pub struct TickGate {
    core: usize,
    period: u64,
    /// Firings left; `None` = unlimited.
    remaining: Option<u64>,
    next: u64,
}

impl Component for TickGate {
    fn name(&self) -> &'static str {
        "tick-gate"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        match self.remaining {
            Some(0) => None,
            _ => Some(self.next),
        }
    }

    fn tick(&mut self, now: u64, ctx: &mut CompCtx<'_>) {
        self.next = now + self.period;
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        ctx.release_tick(self.core);
    }
}

/// Benign no-op actor (`ComponentSpec::Heartbeat`): occupies wheel slots
/// and dispatch cycles but takes no machine-visible action. Exists so
/// the differential suite can prove the spine itself is inert.
pub struct Heartbeat {
    period: u64,
    /// Ticks left; `None` = unlimited.
    remaining: Option<u64>,
    next: u64,
}

impl Component for Heartbeat {
    fn name(&self) -> &'static str {
        "heartbeat"
    }

    fn next_tick(&self, _now: u64) -> Option<u64> {
        match self.remaining {
            Some(0) => None,
            _ => Some(self.next),
        }
    }

    fn tick(&mut self, now: u64, _ctx: &mut CompCtx<'_>) {
        self.next = now + self.period;
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
    }
}

fn bound(count: u64) -> Option<u64> {
    if count == 0 {
        None
    } else {
        Some(count)
    }
}

/// Builds a live component from its declarative spec. `ncores` is the
/// application core count, used to validate pinned victims/paced cores.
pub(crate) fn build(spec: &ComponentSpec, ncores: usize) -> Box<dyn Component> {
    match *spec {
        ComponentSpec::Interrupt {
            period,
            start,
            cost,
            victim,
        } => {
            assert!(period > 0, "InterruptSource: period must be nonzero");
            if let Some(v) = victim {
                assert!(
                    v < ncores,
                    "InterruptSource: victim core {v} out of range (machine has {ncores} cores)"
                );
            }
            Box::new(InterruptSource {
                period,
                cost,
                victim,
                next: start,
                rr: 0,
            })
        }
        ComponentSpec::TickGate {
            core,
            period,
            start,
            count,
        } => {
            assert!(period > 0, "TickGate: period must be nonzero");
            assert!(
                core < ncores,
                "TickGate: paced core {core} out of range (machine has {ncores} cores)"
            );
            Box::new(TickGate {
                core,
                period,
                remaining: bound(count),
                next: start,
            })
        }
        ComponentSpec::Heartbeat { period, count } => {
            assert!(period > 0, "Heartbeat: period must be nonzero");
            Box::new(Heartbeat {
                period,
                remaining: bound(count),
                next: period,
            })
        }
    }
}
