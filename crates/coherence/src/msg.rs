//! Coherence protocol messages and network nodes.

/// A network endpoint: the shared directory (LLC slice) or a core's private
/// cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The directory.
    Dir,
    /// Core `i`'s private cache.
    Core(usize),
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Dir => write!(f, "Dir"),
            Node::Core(i) => write!(f, "C{i}"),
        }
    }
}

/// Protocol messages of the directory-based MSI protocol (§3.1 of the
/// paper, following the Sorin–Hill–Wood primer's naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Core → Dir: request Shared (read) permission.
    GetS { line: u64, from: usize },
    /// Core → Dir: request Modify (write) permission.
    GetM { line: u64, from: usize },
    /// Dir → Core: data response. `acks` is the number of `InvAck`s the
    /// requester must collect before its GetM completes (0 for GetS).
    /// `excl` grants the MESI Exclusive state to a sole reader.
    Data {
        line: u64,
        value: u64,
        acks: u64,
        excl: bool,
    },
    /// Dir → sharer: invalidate your Shared copy and ack to `requester`.
    Inv { line: u64, requester: usize },
    /// Sharer → requester: invalidation acknowledgement.
    InvAck { line: u64 },
    /// Dir → owner: downgrade to Shared; send data to `requester` and a
    /// writeback copy to the directory.
    FwdGetS { line: u64, requester: usize },
    /// Dir → owner: invalidate; send data (with M permission) to
    /// `requester`.
    FwdGetM { line: u64, requester: usize },
    /// Previous owner → new owner/reader: the line's data.
    DataOwner { line: u64, value: u64 },
    /// Downgraded owner → Dir: writeback of the latest value.
    WbData { line: u64, value: u64, from: usize },
}

impl Msg {
    /// The cache line this message concerns.
    pub fn line(&self) -> u64 {
        match *self {
            Msg::GetS { line, .. }
            | Msg::GetM { line, .. }
            | Msg::Data { line, .. }
            | Msg::Inv { line, .. }
            | Msg::InvAck { line }
            | Msg::FwdGetS { line, .. }
            | Msg::FwdGetM { line, .. }
            | Msg::DataOwner { line, .. }
            | Msg::WbData { line, .. } => line,
        }
    }

    /// Short name for traces and stats.
    pub fn kind(&self) -> &'static str {
        crate::stats::MSG_KINDS[self.kind_id()]
    }

    /// Dense index into [`crate::stats::MSG_KINDS`] — the stats arrays'
    /// counter slot for this message kind.
    pub(crate) fn kind_id(&self) -> usize {
        match self {
            Msg::GetS { .. } => 0,
            Msg::GetM { .. } => 1,
            Msg::Data { .. } => 2,
            Msg::Inv { .. } => 3,
            Msg::InvAck { .. } => 4,
            Msg::FwdGetS { .. } => 5,
            Msg::FwdGetM { .. } => 6,
            Msg::DataOwner { .. } => 7,
            Msg::WbData { .. } => 8,
        }
    }
}
