//! The machine runner: executes thread *programs* (plain Rust closures)
//! against the protocol engine.
//!
//! Each simulated core is backed by one OS thread. Exactly one simulated
//! thread runs at any wall-clock instant: the scheduler resumes a thread by
//! sending it the response to its last memory operation, then blocks until
//! that thread either submits its next operation or finishes. All other
//! ordering comes from the discrete-event queue, so a run is fully
//! deterministic for a given configuration and program set.
//!
//! Programs see a [`SimCtx`], which implements [`absmem::ThreadCtx`] plus
//! the raw HTM operations (`tx_begin` / `tx_end` / `tx_abort` and
//! fallible transactional loads/stores). The friendlier RTM-style
//! combinators live in the `htm` crate.

use crate::config::MachineConfig;
use crate::sim::{OpKind, OpOutcome, Sim};
use crate::stats::RunReport;
use crate::txn::{Abort, TxResult};
use simalloc::{ThreadCache, WordPool};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// A thread program: a closure run to completion on a simulated core.
pub type Program = Box<dyn FnOnce(&mut SimCtx) + Send>;

enum Req {
    Op {
        core: usize,
        at: u64,
        op: OpKind,
    },
    Alloc {
        core: usize,
        at: u64,
        words: usize,
    },
    Free {
        core: usize,
        at: u64,
        addr: u64,
        words: usize,
    },
    Barrier {
        core: usize,
        at: u64,
    },
    Finished {
        core: usize,
    },
}

#[derive(Debug, Clone, Copy)]
enum Resp {
    Val { v: u64, now: u64 },
    Aborted { status: u32, now: u64 },
}

/// The per-thread handle programs use to touch simulated memory.
pub struct SimCtx {
    core: usize,
    /// Logical thread id (dense over the *application* threads; the
    /// bootstrap core reuses id 0 but runs alone).
    tid: usize,
    local_time: u64,
    req_tx: Sender<Req>,
    resp_rx: Receiver<Resp>,
}

impl SimCtx {
    fn roundtrip(&mut self, op: OpKind) -> Resp {
        self.req_tx
            .send(Req::Op {
                core: self.core,
                at: self.local_time,
                op,
            })
            .expect("scheduler gone");
        let resp = self.resp_rx.recv().expect("scheduler gone");
        match resp {
            Resp::Val { now, .. } | Resp::Aborted { now, .. } => self.local_time = now,
        }
        resp
    }

    fn infallible(&mut self, op: OpKind) -> u64 {
        match self.roundtrip(op) {
            Resp::Val { v, .. } => v,
            Resp::Aborted { .. } => {
                panic!(
                    "abort delivered outside a transaction (use the tx_* API inside transactions)"
                )
            }
        }
    }

    fn fallible(&mut self, op: OpKind) -> TxResult<u64> {
        match self.roundtrip(op) {
            Resp::Val { v, .. } => Ok(v),
            Resp::Aborted { status, .. } => Err(Abort { status }),
        }
    }

    /// The simulated core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    // ---- raw HTM interface (used by the `htm` crate) ----

    /// Starts a (possibly nested) transaction.
    pub fn tx_begin(&mut self) -> TxResult<()> {
        self.fallible(OpKind::TxBegin).map(|_| ())
    }

    /// Commits the innermost transaction. At top level this waits for the
    /// transactional write's GetM to complete (the store-buffer drain) and
    /// can therefore abort.
    pub fn tx_end(&mut self) -> TxResult<()> {
        self.fallible(OpKind::TxEnd).map(|_| ())
    }

    /// Explicitly aborts the running transaction with `code`; never
    /// returns normally.
    pub fn tx_abort(&mut self, code: u8) -> Abort {
        match self.fallible(OpKind::TxAbort(code)) {
            Err(a) => a,
            Ok(_) => unreachable!("xabort committed"),
        }
    }

    /// Transactional load.
    pub fn tx_read(&mut self, a: u64) -> TxResult<u64> {
        self.fallible(OpKind::Read(a))
    }

    /// Transactional store.
    pub fn tx_write(&mut self, a: u64, v: u64) -> TxResult<()> {
        self.fallible(OpKind::Write(a, v)).map(|_| ())
    }

    /// In-transaction delay, interruptible by an abort (the paper's
    /// intra-transaction delay of §4.1 relies on this: a delaying
    /// transaction is aborted the moment a winner's invalidation arrives).
    pub fn tx_delay(&mut self, cycles: u64) -> TxResult<()> {
        self.fallible(OpKind::Delay(cycles)).map(|_| ())
    }

    /// True while inside a transaction? Not exposed: programs track their
    /// own nesting via the `htm` combinators.
    #[doc(hidden)]
    pub fn local_time(&self) -> u64 {
        self.local_time
    }

    /// Blocks until every live application thread has reached a barrier;
    /// all participants resume with the same (maximal) local time. Useful
    /// for phased benchmark workloads (pre-fill, then measure). Do not mix
    /// barriers with threads that finish before reaching them.
    pub fn barrier(&mut self) {
        self.req_tx
            .send(Req::Barrier {
                core: self.core,
                at: self.local_time,
            })
            .expect("scheduler gone");
        match self.resp_rx.recv().expect("scheduler gone") {
            Resp::Val { now, .. } => self.local_time = now,
            Resp::Aborted { .. } => panic!("barrier inside a transaction"),
        }
    }
}

impl absmem::ThreadCtx for SimCtx {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn read(&mut self, a: u64) -> u64 {
        self.infallible(OpKind::Read(a))
    }

    fn write(&mut self, a: u64, v: u64) {
        self.infallible(OpKind::Write(a, v));
    }

    fn cas(&mut self, a: u64, old: u64, new: u64) -> bool {
        self.infallible(OpKind::Cas(a, old, new)) == 1
    }

    fn faa(&mut self, a: u64, v: u64) -> u64 {
        self.infallible(OpKind::Faa(a, v))
    }

    fn swap(&mut self, a: u64, v: u64) -> u64 {
        self.infallible(OpKind::Swap(a, v))
    }

    fn delay(&mut self, cycles: u64) {
        self.infallible(OpKind::Delay(cycles));
    }

    fn alloc(&mut self, words: usize) -> u64 {
        self.req_tx
            .send(Req::Alloc {
                core: self.core,
                at: self.local_time,
                words,
            })
            .expect("scheduler gone");
        match self.resp_rx.recv().expect("scheduler gone") {
            Resp::Val { v, now } => {
                self.local_time = now;
                v
            }
            Resp::Aborted { .. } => panic!("alloc inside a transaction"),
        }
    }

    fn free(&mut self, a: u64, words: usize) {
        self.req_tx
            .send(Req::Free {
                core: self.core,
                at: self.local_time,
                addr: a,
                words,
            })
            .expect("scheduler gone");
        match self.resp_rx.recv().expect("scheduler gone") {
            Resp::Val { now, .. } => self.local_time = now,
            Resp::Aborted { .. } => panic!("free inside a transaction"),
        }
    }

    fn now(&self) -> u64 {
        self.local_time
    }
}

/// The simulated multicore machine.
pub struct Machine {
    cfg: MachineConfig,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine { cfg }
    }

    /// Runs `setup` to completion on the bootstrap core (socket 0), then
    /// runs all `programs` concurrently, program `i` pinned to core `i`.
    /// Returns the run report; per-program results travel through whatever
    /// shared state the caller captured in the closures.
    pub fn run(self, setup: Program, programs: Vec<Program>) -> RunReport {
        let cfg = self.cfg;
        assert!(
            programs.len() <= cfg.cores,
            "more programs ({}) than cores ({})",
            programs.len(),
            cfg.cores
        );
        let nprogs = programs.len();
        let boot_core = cfg.cores;
        let mut sim = Sim::new(cfg.clone());
        let pool = Arc::new(WordPool::new(8));
        let mut alloc_caches: Vec<ThreadCache> =
            (0..=cfg.cores).map(|_| pool.thread_cache()).collect();

        let (req_tx, req_rx) = std::sync::mpsc::channel::<Req>();
        let mut resp_txs: Vec<Option<Sender<Resp>>> = (0..=cfg.cores).map(|_| None).collect();

        std::thread::scope(|scope| {
            // Phase 1: bootstrap/setup program, alone on the machine.
            {
                let (tx, rx) = std::sync::mpsc::channel::<Resp>();
                resp_txs[boot_core] = Some(tx);
                let mut ctx = SimCtx {
                    core: boot_core,
                    tid: 0,
                    local_time: 0,
                    req_tx: req_tx.clone(),
                    resp_rx: rx,
                };
                let handle = scope.spawn(move || {
                    setup(&mut ctx);
                    ctx.req_tx
                        .send(Req::Finished { core: ctx.core })
                        .expect("scheduler gone");
                });
                let mut live = 1usize;
                pump_guarded(
                    &mut sim,
                    &req_rx,
                    &mut resp_txs,
                    &mut alloc_caches,
                    &mut live,
                );
                handle.join().expect("setup program panicked");
            }

            // Phase 2: the measured programs, all starting at the same
            // simulated instant.
            let t0 = sim.now();
            let mut handles = Vec::with_capacity(nprogs);
            for (i, prog) in programs.into_iter().enumerate() {
                let (tx, rx) = std::sync::mpsc::channel::<Resp>();
                resp_txs[i] = Some(tx);
                let mut ctx = SimCtx {
                    core: i,
                    tid: i,
                    local_time: t0,
                    req_tx: req_tx.clone(),
                    resp_rx: rx,
                };
                handles.push(scope.spawn(move || {
                    prog(&mut ctx);
                    let end = ctx.local_time;
                    ctx.req_tx
                        .send(Req::Finished { core: ctx.core })
                        .expect("scheduler gone");
                    end
                }));
            }
            let mut live = nprogs;
            pump_guarded(
                &mut sim,
                &req_rx,
                &mut resp_txs,
                &mut alloc_caches,
                &mut live,
            );
            let core_end: Vec<u64> = handles
                .into_iter()
                .map(|h| h.join().expect("program panicked"))
                .collect();
            RunReport {
                end_time: sim.now(),
                core_end,
                stats: sim.stats,
                trace: sim.trace,
            }
        })
    }
}

/// Runs [`pump`] with panic containment: if the scheduler panics (a
/// protocol invariant violation), every response channel is dropped first
/// so blocked program threads exit and `thread::scope` can join them —
/// otherwise the panic would deadlock the scope instead of surfacing.
fn pump_guarded(
    sim: &mut Sim,
    req_rx: &Receiver<Req>,
    resp_txs: &mut [Option<Sender<Resp>>],
    alloc_caches: &mut [ThreadCache],
    live: &mut usize,
) {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pump(sim, req_rx, resp_txs, alloc_caches, live)
    }));
    if let Err(payload) = r {
        for tx in resp_txs.iter_mut() {
            *tx = None;
        }
        std::panic::resume_unwind(payload);
    }
}

/// Drives the event loop until all `live` threads have finished.
fn pump(
    sim: &mut Sim,
    req_rx: &Receiver<Req>,
    resp_txs: &mut [Option<Sender<Resp>>],
    alloc_caches: &mut [ThreadCache],
    live: &mut usize,
) {
    let mut barrier: Vec<(usize, u64)> = Vec::new();
    // Collect the initial request from every live thread (they all start
    // running immediately after spawn).
    for _ in 0..*live {
        let req = req_rx.recv().expect("thread died before first request");
        admit(sim, req, req_rx, resp_txs, alloc_caches, live, &mut barrier);
    }
    while *live > 0 {
        let progressed = sim.step();
        assert!(progressed, "deadlock: live threads but no events");
        // Each resume un-blocks exactly one thread; synchronously exchange
        // the response for that thread's next request.
        let resumes: Vec<_> = sim.resumes.drain(..).collect();
        for r in resumes {
            let resp = match r.outcome {
                OpOutcome::Val(v) => Resp::Val { v, now: r.time },
                OpOutcome::Aborted(status) => Resp::Aborted {
                    status,
                    now: r.time,
                },
            };
            resp_txs[r.core]
                .as_ref()
                .expect("resume for dead core")
                .send(resp)
                .expect("thread hung up");
            let req = req_rx.recv().expect("thread died mid-run");
            admit(sim, req, req_rx, resp_txs, alloc_caches, live, &mut barrier);
        }
    }
    assert!(barrier.is_empty(), "threads stuck at a barrier at shutdown");
}

/// Feeds one thread request into the engine (or retires the thread).
/// Allocator calls are served synchronously — they never touch coherent
/// memory — so this loops, exchanging with the same (only runnable) thread
/// until it submits a memory operation or finishes.
#[allow(clippy::too_many_arguments)]
fn admit(
    sim: &mut Sim,
    first: Req,
    req_rx: &Receiver<Req>,
    resp_txs: &mut [Option<Sender<Resp>>],
    alloc_caches: &mut [ThreadCache],
    live: &mut usize,
    barrier: &mut Vec<(usize, u64)>,
) {
    let mut req = first;
    loop {
        match req {
            Req::Op { core, at, op } => {
                sim.submit_op(core, at, op);
                return;
            }
            Req::Barrier { core, at } => {
                barrier.push((core, at));
                if barrier.len() == *live {
                    // Everyone arrived: release all participants at the
                    // maximal local time and synchronously exchange each
                    // release for that thread's next request.
                    let tmax = barrier.iter().map(|&(_, t)| t).max().unwrap();
                    let waiters = std::mem::take(barrier);
                    for (c, _) in waiters {
                        resp_txs[c]
                            .as_ref()
                            .expect("barrier waiter died")
                            .send(Resp::Val { v: 0, now: tmax })
                            .expect("thread hung up");
                        let next = req_rx.recv().expect("thread died at barrier");
                        admit(sim, next, req_rx, resp_txs, alloc_caches, live, barrier);
                    }
                }
                return;
            }
            Req::Alloc { core, at, words } => {
                let addr = alloc_caches[core].alloc(words);
                let now = at + sim.cfg.alloc_cycles;
                resp_txs[core]
                    .as_ref()
                    .unwrap()
                    .send(Resp::Val { v: addr, now })
                    .expect("thread hung up");
            }
            Req::Free {
                core,
                at,
                addr,
                words,
            } => {
                alloc_caches[core].free(addr, words);
                let now = at + sim.cfg.alloc_cycles;
                resp_txs[core]
                    .as_ref()
                    .unwrap()
                    .send(Resp::Val { v: 0, now })
                    .expect("thread hung up");
            }
            Req::Finished { core } => {
                resp_txs[core] = None;
                *live -= 1;
                return;
            }
        }
        req = req_rx.recv().expect("thread died mid-run");
    }
}
