//! The machine runner: executes thread *programs* (plain Rust closures)
//! against the protocol engine.
//!
//! Exactly one simulated thread runs at any wall-clock instant, so a run
//! is fully deterministic for a given configuration and program set. Two
//! interchangeable schedulers provide that discipline; both produce
//! bit-identical `RunReport`s (enforced by the determinism tests):
//!
//! ## The fiber scheduler (default on x86_64)
//!
//! Every simulated core is a stackful coroutine ([`crate::fiber`]) and
//! the whole machine — pump, programs, allocator — lives on the one OS
//! thread that called [`Machine::run`]. A program issuing a memory
//! operation publishes a [`Req`] in its per-core channel and stack-
//! switches into the pump; the pump admits the request into the engine,
//! steps the event loop, and stack-switches into whichever core the next
//! resumption belongs to. A handoff is ~20 ns of register moves instead
//! of a ~1–2 µs futex round trip through the kernel, which is what makes
//! the simulator's hot loop run at engine speed. Panic containment is
//! free: a program panic is caught at the fiber's entry frame and
//! re-raised by the pump on the main stack.
//!
//! ## The token-passing OS-thread scheduler (fallback, and `cfg` switch)
//!
//! Used on non-x86_64 targets, or when
//! [`MachineConfig::os_thread_scheduler`] is set (the cross-scheduler
//! determinism test does this). Each simulated core is an OS thread, and
//! there is no scheduler thread: the right to touch the engine — the
//! *token* — lives with exactly one OS thread at a time. A thread
//! issuing an operation submits it directly and *drives* the event loop
//! itself; if the next resumption is its own it keeps running (zero
//! switches), otherwise it publishes the response in the target core's
//! [`Slot`] (one release store plus an unpark) and parks. The main
//! thread participates only at the edges of a phase: it collects every
//! thread's *first* request in core-index order, drives until the token
//! is handed into the pool, and sleeps until the phase ends. If the
//! engine or a program panics, a drop guard swaps every slot to `DEAD`
//! and unparks the world so `thread::scope` can join.
//!
//! Programs see a [`SimCtx`], which implements [`absmem::ThreadCtx`] plus
//! the raw HTM operations (`tx_begin` / `tx_end` / `tx_abort` and
//! fallible transactional loads/stores). The friendlier RTM-style
//! combinators live in the `htm` crate.

use crate::config::MachineConfig;
use crate::sim::{OpKind, OpOutcome, Resume, Sim};
use crate::stats::RunReport;
use crate::txn::{Abort, TxResult};
use simalloc::{ThreadCache, WordPool};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::Thread;

#[cfg(target_arch = "x86_64")]
use crate::fiber;
#[cfg(target_arch = "x86_64")]
use std::cell::{Cell, RefCell};

/// A thread program: a closure run to completion on a simulated core.
pub type Program = Box<dyn FnOnce(&mut SimCtx) + Send>;

/// A request from a program to its scheduler. Under the fiber scheduler
/// every request travels this way; under the OS-thread scheduler only
/// the *first* request of a phase does (published through the slot while
/// the main thread still holds the token) — every later request is
/// admitted into the engine directly by the issuing, token-holding
/// thread.
enum Req {
    Op { at: u64, op: OpKind },
    Alloc { at: u64, words: usize },
    Free { at: u64, addr: u64, words: usize },
    Barrier { at: u64 },
    Finished,
}

#[derive(Debug, Clone, Copy)]
enum Resp {
    Val { v: u64, now: u64 },
    Aborted { status: u32, now: u64 },
}

/// Slot is empty: the owner thread is running, parked awaiting a
/// response, or not yet started.
const S_IDLE: u32 = 0;
/// A first-of-phase request is published; the main thread consumes it.
const S_REQ: u32 = 1;
/// A response is published; the owner thread consumes it.
const S_RESP: u32 = 2;
/// Teardown (panic) or the core retired; any further publish or wait on
/// the slot panics instead of hanging.
const S_DEAD: u32 = 3;

/// One core's mailbox for the OS-thread handoff protocol.
///
/// Safety protocol: `state` is the ownership token for the `req`/`resp`
/// cells. The owner thread may write `req` only while the slot is `IDLE`
/// (before its release-CAS to `REQ`) and read `resp` only after acquiring
/// `RESP`; a responder may write `resp` only while the owner is blocked
/// (before the release-CAS to `RESP`); the collector reads `req` after
/// acquiring `REQ`. The `thread` handle is written once, before
/// `registered` is set with release ordering, and only read after
/// acquiring `registered`.
struct Slot {
    state: AtomicU32,
    req: UnsafeCell<Req>,
    /// The response, plus a "you now hold the token" flag (false only for
    /// allocator calls served during first-request collection).
    resp: UnsafeCell<(Resp, bool)>,
    /// The owner thread's park handle, for responders to unpark.
    thread: UnsafeCell<Option<Thread>>,
    registered: AtomicU32,
}

// The cells are synchronized by `state`/`registered` per the protocol
// above.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU32::new(S_IDLE),
            req: UnsafeCell::new(Req::Finished),
            resp: UnsafeCell::new((Resp::Val { v: 0, now: 0 }, false)),
            thread: UnsafeCell::new(None),
            registered: AtomicU32::new(0),
        }
    }

    /// Unparks the owner thread, if it ever registered.
    fn wake(&self) {
        if self.registered.load(Ordering::Acquire) == 1 {
            // SAFETY: `registered` was set with release ordering after the
            // handle write, and the handle is never written again.
            if let Some(th) = unsafe { (*self.thread.get()).as_ref() } {
                th.unpark();
            }
        }
    }
}

/// Scheduler state guarded by the token: only the token-holding thread
/// (or the main thread during first-request collection) touches it.
struct SchedState {
    sim: Sim,
    alloc_caches: Vec<ThreadCache>,
    live: usize,
    barrier: Vec<(usize, u64)>,
    /// Thread resumptions not yet delivered, in delivery order. Barrier
    /// releases are queued here too — at the front, preserving the order
    /// the original scheduler-thread implementation released them in.
    pending: VecDeque<Resume>,
}

/// Everything shared between the main thread and the program threads of
/// the OS-thread scheduler.
struct Engine {
    slots: Vec<Slot>,
    /// The main thread's park handle.
    main: Thread,
    /// Set (then `main` unparked) when the last live thread retires.
    done: AtomicU32,
    /// Iterations to spin on a state word before parking. Zero on a
    /// single-CPU host, where spinning only steals cycles from the one
    /// thread that could make progress.
    spin: u32,
    st: UnsafeCell<SchedState>,
}

// `st` is guarded by the token protocol; the rest is atomics and park
// handles.
unsafe impl Sync for Engine {}

impl Engine {
    /// Marks every slot dead and wakes everyone, including the main
    /// thread. Called during panic teardown; idempotent.
    fn kill(&self) {
        for slot in &self.slots {
            slot.state.swap(S_DEAD, Ordering::AcqRel);
            slot.wake();
        }
        self.done.store(1, Ordering::Release);
        self.main.unpark();
    }
}

/// Drop guard armed on every thread that can hold the token: if the
/// engine (or user code) panics, tear the handshake down so every other
/// thread unblocks and the scope can join.
struct PanicGuard(Arc<Engine>);

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.kill();
        }
    }
}

/// What `drive` did with the token.
enum DriveOut {
    /// The next resumption was the driving core's own: it keeps the token.
    Own(Resp),
    /// The token was handed to another thread (or the phase ended).
    Handoff,
}

fn resp_of(r: &Resume) -> Resp {
    match r.outcome {
        OpOutcome::Val(v) => Resp::Val { v, now: r.time },
        OpOutcome::Aborted(status) => Resp::Aborted {
            status,
            now: r.time,
        },
    }
}

/// Everyone arrived: queue a release for each waiter at the maximal local
/// time, ahead of any not-yet-delivered resumptions (the order the
/// original scheduler-thread implementation released them in).
fn release_barrier(barrier: &mut Vec<(usize, u64)>, pending: &mut VecDeque<Resume>) {
    // A release with no waiters (a zero-thread or all-empty phase) is a
    // no-op — there is nobody to wake, and `.max()` on the empty set
    // would panic with an unhelpful iterator error.
    let Some(tmax) = barrier.iter().map(|&(_, t)| t).max() else {
        debug_assert!(barrier.is_empty());
        return;
    };
    for (i, (c, _)) in barrier.drain(..).enumerate() {
        pending.insert(
            i,
            Resume {
                core: c,
                time: tmax,
                outcome: OpOutcome::Val(0),
            },
        );
    }
}

/// Publishes `resp` in `core`'s slot and wakes it: one release CAS plus
/// an unpark. `token` tells the woken thread whether it now drives.
fn respond(eng: &Engine, core: usize, resp: Resp, token: bool) {
    let slot = &eng.slots[core];
    // SAFETY: the target thread is blocked awaiting this response, so the
    // responder owns the cells.
    unsafe {
        *slot.resp.get() = (resp, token);
    }
    if slot
        .state
        .compare_exchange(S_IDLE, S_RESP, Ordering::Release, Ordering::Relaxed)
        .is_err()
    {
        // Teardown raced us; the target was already woken by `kill`.
        return;
    }
    slot.wake();
}

/// Steps the engine until a resumption is delivered (or the phase ends).
/// Must be called holding the token; `me` is the driving core.
fn drive(eng: &Engine, me: usize) -> DriveOut {
    // SAFETY: the caller holds the token.
    let st = unsafe { &mut *eng.st.get() };
    loop {
        if let Some(r) = st.pending.pop_front() {
            let resp = resp_of(&r);
            if r.core == me {
                return DriveOut::Own(resp);
            }
            respond(eng, r.core, resp, true);
            return DriveOut::Handoff;
        }
        if st.live == 0 {
            eng.done.store(1, Ordering::Release);
            eng.main.unpark();
            return DriveOut::Handoff;
        }
        let progressed = st.sim.step();
        assert!(
            progressed,
            "deadlock: live threads but no events;{}",
            st.sim.stuck_report()
        );
        st.pending.extend(st.sim.resumes.drain(..));
    }
}

/// The OS-thread scheduler's per-thread half: token state plus the
/// shared engine.
struct ThreadBackend {
    /// Whether this thread currently holds the token. False only until
    /// the first response of a phase arrives.
    has_token: bool,
    eng: Arc<Engine>,
}

impl ThreadBackend {
    /// Records this thread's park handle in its slot. Must run on the
    /// owning thread, before any publish.
    fn register(&self, core: usize) {
        let slot = &self.eng.slots[core];
        // SAFETY: nothing reads the handle until `registered` is set.
        unsafe {
            *slot.thread.get() = Some(std::thread::current());
        }
        slot.registered.store(1, Ordering::Release);
    }

    /// Publishes a first-of-phase request for the main thread to collect.
    fn publish(&self, core: usize, req: Req) {
        let slot = &self.eng.slots[core];
        // SAFETY: the slot is IDLE and owned by this thread.
        unsafe {
            *slot.req.get() = req;
        }
        if slot
            .state
            .compare_exchange(S_IDLE, S_REQ, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            panic!("scheduler gone");
        }
        self.eng.main.unpark();
    }

    /// Blocks (spin, then park) until someone responds, and consumes the
    /// response. Updates `has_token` from the flag riding along.
    fn await_resp(&mut self, core: usize) -> Resp {
        let slot = &self.eng.slots[core];
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                S_RESP => break,
                S_DEAD => panic!("scheduler gone"),
                _ => {
                    if spins < self.eng.spin {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::park();
                    }
                }
            }
        }
        // SAFETY: we acquired RESP, so the response write is visible and
        // this thread owns the cells.
        let (resp, token) = unsafe { *slot.resp.get() };
        if slot
            .state
            .compare_exchange(S_RESP, S_IDLE, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // The teardown guard swapped us to DEAD mid-handshake.
            panic!("scheduler gone");
        }
        self.has_token = token;
        resp
    }

    /// Drives the engine after admitting a request, then either keeps
    /// running (own resumption) or parks until resumed.
    fn drive_then_wait(&mut self, core: usize) -> Resp {
        match drive(&self.eng, core) {
            DriveOut::Own(resp) => resp,
            DriveOut::Handoff => {
                self.has_token = false;
                self.await_resp(core)
            }
        }
    }

    /// Admits `req` and blocks until its response. The token-holding
    /// fast path touches the engine directly (allocator calls are served
    /// inline with no handoff at all); otherwise the request goes
    /// through the slot for the collector to admit.
    fn request(&mut self, core: usize, req: Req) -> Resp {
        if !self.has_token {
            self.publish(core, req);
            return self.await_resp(core);
        }
        // SAFETY: holding the token.
        let st = unsafe { &mut *self.eng.st.get() };
        match req {
            Req::Op { at, op } => {
                st.sim.submit_op(core, at, op);
                self.drive_then_wait(core)
            }
            Req::Barrier { at } => {
                st.barrier.push((core, at));
                if st.barrier.len() == st.live {
                    release_barrier(&mut st.barrier, &mut st.pending);
                }
                self.drive_then_wait(core)
            }
            Req::Alloc { at, words } => {
                // Allocator calls never touch coherent memory: serve
                // inline, no handoff.
                let v = st.alloc_caches[core].alloc(words);
                Resp::Val {
                    v,
                    now: at + st.sim.cfg.alloc_cycles,
                }
            }
            Req::Free { at, addr, words } => {
                st.alloc_caches[core].free(addr, words);
                Resp::Val {
                    v: 0,
                    now: at + st.sim.cfg.alloc_cycles,
                }
            }
            Req::Finished => unreachable!("retirement goes through finish()"),
        }
    }

    /// Retires this thread at the end of its program.
    fn finish(&mut self, core: usize) {
        if !self.has_token {
            // Never resumed this phase; tell the collector.
            self.publish(core, Req::Finished);
            return;
        }
        // SAFETY: holding the token.
        let st = unsafe { &mut *self.eng.st.get() };
        st.live -= 1;
        // Retire the slot so a stray later publish fails loudly.
        self.eng.slots[core].state.store(S_DEAD, Ordering::Release);
        // Pass the token on (or signal the phase end inside `drive`).
        match drive(&self.eng, core) {
            DriveOut::Handoff => {}
            DriveOut::Own(_) => unreachable!("resumption for a finished core"),
        }
    }
}

/// Per-core exchange cell between a program fiber and the fiber pump.
/// Everything lives on one OS thread, so plain `Cell`s suffice; the
/// saved-context fields are the two halves of a [`fiber::switch`] pair.
#[cfg(target_arch = "x86_64")]
struct Chan {
    /// Request published by the fiber before switching to the pump.
    req: Cell<Option<Req>>,
    /// Response published by the pump before switching into the fiber.
    resp: Cell<Resp>,
    /// The pump's suspended context while the fiber runs.
    sched_rsp: Cell<*mut u8>,
    /// The fiber's suspended context while the pump runs (initially the
    /// fiber's entry context).
    fiber_rsp: Cell<*mut u8>,
    /// Payload of a panicking program, for the pump to re-raise on the
    /// main stack.
    panic: RefCell<Option<Box<dyn std::any::Any + Send>>>,
    /// The program's final simulated time, recorded at retirement.
    end_time: Cell<u64>,
}

#[cfg(target_arch = "x86_64")]
impl Chan {
    fn new() -> Self {
        Chan {
            req: Cell::new(None),
            resp: Cell::new(Resp::Val { v: 0, now: 0 }),
            sched_rsp: Cell::new(std::ptr::null_mut()),
            fiber_rsp: Cell::new(std::ptr::null_mut()),
            panic: RefCell::new(None),
            end_time: Cell::new(0),
        }
    }
}

/// Fiber-side half of the exchange: publish `req`, switch to the pump,
/// wake up with the response.
#[cfg(target_arch = "x86_64")]
fn fiber_request(ch: *const Chan, req: Req) -> Resp {
    // SAFETY: the Chan is owned by the pump and outlives the fiber; only
    // one side runs at a time (same OS thread).
    let ch = unsafe { &*ch };
    ch.req.set(Some(req));
    // SAFETY: `sched_rsp` holds the pump's context, suspended exactly
    // when it last switched into this fiber.
    unsafe { fiber::switch(&ch.fiber_rsp, ch.sched_rsp.get()) };
    ch.resp.get()
}

/// The fiber scheduler: pump, engine, and every program stack, all on
/// the calling OS thread.
#[cfg(target_arch = "x86_64")]
struct FiberPump {
    sim: Sim,
    alloc_caches: Vec<ThreadCache>,
    // Boxed so each Chan's address is stable regardless of Vec moves:
    // fibers hold raw `*const Chan` pointers across suspensions.
    #[allow(clippy::vec_box)]
    chans: Vec<Box<Chan>>,
    fibers: Vec<Option<fiber::Fiber>>,
    live: usize,
    barrier: Vec<(usize, u64)>,
    /// Same delivery-order queue as [`SchedState::pending`].
    pending: VecDeque<Resume>,
}

#[cfg(target_arch = "x86_64")]
impl FiberPump {
    /// Creates `core`'s fiber around `prog`. The wrapper contains
    /// panics, records the final simulated time, and retires the fiber
    /// by publishing `Finished` — it never returns.
    fn spawn(&mut self, core: usize, tid: usize, t0: u64, prog: Program) {
        let ch_ptr: *const Chan = &*self.chans[core];
        let entry: Box<dyn FnOnce()> = Box::new(move || {
            let mut ctx = SimCtx {
                core,
                tid,
                local_time: t0,
                backend: Backend::Fibers(ch_ptr),
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prog(&mut ctx)));
            // SAFETY: single OS thread; the pump is suspended.
            let ch = unsafe { &*ch_ptr };
            if let Err(payload) = result {
                *ch.panic.borrow_mut() = Some(payload);
            }
            ch.end_time.set(ctx.local_time);
            ch.req.set(Some(Req::Finished));
            loop {
                // SAFETY: the pump context is valid; it never resumes a
                // retired fiber, so this parks the stack permanently.
                unsafe { fiber::switch(&ch.fiber_rsp, ch.sched_rsp.get()) };
            }
        });
        let (mut fb, entry_ctx) = fiber::Fiber::new(self.sim.cfg.fiber_stack, entry);
        if self.sim.cfg.measure_stacks {
            fb.paint();
        }
        self.chans[core].fiber_rsp.set(entry_ctx);
        self.fibers[core] = Some(fb);
    }

    /// Switches into `core`'s fiber and returns the request it publishes
    /// when it next suspends. Re-raises a program panic on the pump's
    /// stack.
    fn xchg(&mut self, core: usize) -> Req {
        let ch = &self.chans[core];
        // SAFETY: `fiber_rsp` holds the fiber's suspended (or entry)
        // context; everything stays on this OS thread.
        unsafe { fiber::switch(&ch.sched_rsp, ch.fiber_rsp.get()) };
        let fb = self.fibers[core].as_ref().expect("fiber not spawned");
        assert!(fb.canary_ok(), "fiber stack overflow on core {core}");
        if let Some(payload) = self.chans[core].panic.borrow_mut().take() {
            // Suspended sibling fibers are dropped without unwinding;
            // their stacks leak whatever they own, which is fine for a
            // run that is being torn down.
            std::panic::resume_unwind(payload);
        }
        self.chans[core]
            .req
            .take()
            .expect("fiber suspended without publishing a request")
    }

    /// Delivers `resp` to `core` and returns its next request.
    fn resume(&mut self, core: usize, resp: Resp) -> Req {
        self.chans[core].resp.set(resp);
        self.xchg(core)
    }

    /// Admits a request into the engine, serving allocator calls inline
    /// (they never touch coherent memory) until the core submits a
    /// memory operation, blocks at a barrier, or retires. Mirrors the
    /// OS-thread scheduler's `collect_first`/`request` admission orders
    /// exactly — that equivalence is what keeps the two schedulers
    /// bit-identical.
    fn admit(&mut self, core: usize, first: Req) {
        let mut req = first;
        loop {
            match req {
                Req::Op { at, op } => {
                    self.sim.submit_op(core, at, op);
                    return;
                }
                Req::Barrier { at } => {
                    self.barrier.push((core, at));
                    if self.barrier.len() == self.live {
                        release_barrier(&mut self.barrier, &mut self.pending);
                    }
                    return;
                }
                Req::Alloc { at, words } => {
                    let v = self.alloc_caches[core].alloc(words);
                    let now = at + self.sim.cfg.alloc_cycles;
                    req = self.resume(core, Resp::Val { v, now });
                }
                Req::Free { at, addr, words } => {
                    self.alloc_caches[core].free(addr, words);
                    let now = at + self.sim.cfg.alloc_cycles;
                    req = self.resume(core, Resp::Val { v: 0, now });
                }
                Req::Finished => {
                    self.live -= 1;
                    return;
                }
            }
        }
    }

    /// Runs one phase: start each core's fiber in core-index order, then
    /// pump the event loop, switching into cores as their resumptions
    /// fall out, until every live core has retired.
    fn run_phase(&mut self, initial: std::ops::Range<usize>) {
        for core in initial {
            let req = self.xchg(core);
            self.admit(core, req);
        }
        loop {
            if let Some(r) = self.pending.pop_front() {
                let req = self.resume(r.core, resp_of(&r));
                self.admit(r.core, req);
                continue;
            }
            if self.live == 0 {
                return;
            }
            let progressed = self.sim.step();
            assert!(
                progressed,
                "deadlock: live threads but no events;{}",
                self.sim.stuck_report()
            );
            self.pending.extend(self.sim.resumes.drain(..));
        }
    }
}

/// Which scheduler a [`SimCtx`] talks to.
enum Backend {
    /// OS-thread scheduler: slot handshake plus token passing.
    Threads(ThreadBackend),
    /// Fiber scheduler: a request is a stack switch into the pump. The
    /// pointer is to the pump-owned [`Chan`]; fiber-mode contexts never
    /// leave the pump's OS thread.
    #[cfg(target_arch = "x86_64")]
    Fibers(*const Chan),
}

/// The per-thread handle programs use to touch simulated memory.
pub struct SimCtx {
    core: usize,
    /// Logical thread id (dense over the *application* threads; the
    /// bootstrap core reuses id 0 but runs alone).
    tid: usize,
    local_time: u64,
    backend: Backend,
}

impl SimCtx {
    /// Sends `req` to the scheduler and blocks this simulated thread
    /// until the response arrives.
    fn request(&mut self, req: Req) -> Resp {
        match &mut self.backend {
            Backend::Threads(t) => t.request(self.core, req),
            #[cfg(target_arch = "x86_64")]
            Backend::Fibers(ch) => fiber_request(*ch, req),
        }
    }

    fn roundtrip(&mut self, op: OpKind) -> Resp {
        let resp = self.request(Req::Op {
            at: self.local_time,
            op,
        });
        match resp {
            Resp::Val { now, .. } | Resp::Aborted { now, .. } => self.local_time = now,
        }
        resp
    }

    fn infallible(&mut self, op: OpKind) -> u64 {
        match self.roundtrip(op) {
            Resp::Val { v, .. } => v,
            Resp::Aborted { .. } => {
                panic!(
                    "abort delivered outside a transaction (use the tx_* API inside transactions)"
                )
            }
        }
    }

    fn fallible(&mut self, op: OpKind) -> TxResult<u64> {
        match self.roundtrip(op) {
            Resp::Val { v, .. } => Ok(v),
            Resp::Aborted { status, .. } => Err(Abort { status }),
        }
    }

    /// The simulated core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    // ---- raw HTM interface (used by the `htm` crate) ----

    /// Starts a (possibly nested) transaction.
    pub fn tx_begin(&mut self) -> TxResult<()> {
        self.fallible(OpKind::TxBegin).map(|_| ())
    }

    /// Commits the innermost transaction. At top level this waits for the
    /// transactional write's GetM to complete (the store-buffer drain) and
    /// can therefore abort.
    pub fn tx_end(&mut self) -> TxResult<()> {
        self.fallible(OpKind::TxEnd).map(|_| ())
    }

    /// Explicitly aborts the running transaction with `code`; never
    /// returns normally.
    pub fn tx_abort(&mut self, code: u8) -> Abort {
        match self.fallible(OpKind::TxAbort(code)) {
            Err(a) => a,
            Ok(_) => unreachable!("xabort committed"),
        }
    }

    /// Transactional load.
    pub fn tx_read(&mut self, a: u64) -> TxResult<u64> {
        self.fallible(OpKind::Read(a))
    }

    /// Transactional store.
    pub fn tx_write(&mut self, a: u64, v: u64) -> TxResult<()> {
        self.fallible(OpKind::Write(a, v)).map(|_| ())
    }

    /// In-transaction delay, interruptible by an abort (the paper's
    /// intra-transaction delay of §4.1 relies on this: a delaying
    /// transaction is aborted the moment a winner's invalidation arrives).
    pub fn tx_delay(&mut self, cycles: u64) -> TxResult<()> {
        self.fallible(OpKind::Delay(cycles)).map(|_| ())
    }

    /// Blocks until a `TickGate` component (see
    /// `MachineConfig::components`) releases this core's next tick, or
    /// consumes a banked release immediately. The pacing primitive for
    /// timer-driven consumers and DMA-style bulk producers. Not allowed
    /// inside a transaction; a run that waits with no gate firings left
    /// fails the deadlock assertion with a hint rather than hanging.
    pub fn wait_tick(&mut self) {
        self.infallible(OpKind::WaitTick);
    }

    /// True while inside a transaction? Not exposed: programs track their
    /// own nesting via the `htm` combinators.
    #[doc(hidden)]
    pub fn local_time(&self) -> u64 {
        self.local_time
    }

    /// Blocks until every live application thread has reached a barrier;
    /// all participants resume with the same (maximal) local time. Useful
    /// for phased benchmark workloads (pre-fill, then measure). Do not mix
    /// barriers with threads that finish before reaching them.
    pub fn barrier(&mut self) {
        match self.request(Req::Barrier {
            at: self.local_time,
        }) {
            Resp::Val { now, .. } => self.local_time = now,
            Resp::Aborted { .. } => panic!("barrier inside a transaction"),
        }
    }
}

impl absmem::ThreadCtx for SimCtx {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn read(&mut self, a: u64) -> u64 {
        self.infallible(OpKind::Read(a))
    }

    fn write(&mut self, a: u64, v: u64) {
        self.infallible(OpKind::Write(a, v));
    }

    fn cas(&mut self, a: u64, old: u64, new: u64) -> bool {
        self.infallible(OpKind::Cas(a, old, new)) == 1
    }

    fn faa(&mut self, a: u64, v: u64) -> u64 {
        self.infallible(OpKind::Faa(a, v))
    }

    fn swap(&mut self, a: u64, v: u64) -> u64 {
        self.infallible(OpKind::Swap(a, v))
    }

    fn delay(&mut self, cycles: u64) {
        self.infallible(OpKind::Delay(cycles));
    }

    fn alloc(&mut self, words: usize) -> u64 {
        match self.request(Req::Alloc {
            at: self.local_time,
            words,
        }) {
            Resp::Val { v, now } => {
                self.local_time = now;
                v
            }
            Resp::Aborted { .. } => panic!("alloc inside a transaction"),
        }
    }

    fn free(&mut self, a: u64, words: usize) {
        match self.request(Req::Free {
            at: self.local_time,
            addr: a,
            words,
        }) {
            Resp::Val { now, .. } => self.local_time = now,
            Resp::Aborted { .. } => panic!("free inside a transaction"),
        }
    }

    fn now(&self) -> u64 {
        self.local_time
    }

    fn barrier(&mut self) {
        SimCtx::barrier(self)
    }

    fn wait_tick(&mut self) {
        SimCtx::wait_tick(self)
    }
}

/// The simulated multicore machine.
///
/// Owns the simulated-memory allocator (pool plus per-core thread
/// caches), so repeated [`Machine::run`] calls on one machine reuse the
/// allocator state instead of rebuilding it per phase. The configuration
/// is behind an `Arc` and shared with the engine rather than cloned.
pub struct Machine {
    cfg: Arc<MachineConfig>,
    #[allow(dead_code)]
    pool: Arc<WordPool>,
    alloc_caches: Vec<ThreadCache>,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let cfg = Arc::new(cfg);
        let pool = Arc::new(WordPool::new(8));
        // +1 for the bootstrap core used by the setup phase.
        let alloc_caches: Vec<ThreadCache> = (0..=cfg.cores).map(|_| pool.thread_cache()).collect();
        Machine {
            cfg,
            pool,
            alloc_caches,
        }
    }

    /// Runs `setup` to completion on the bootstrap core (socket 0), then
    /// runs all `programs` concurrently, program `i` pinned to core `i`.
    /// Returns the run report; per-program results travel through whatever
    /// shared state the caller captured in the closures.
    pub fn run(&mut self, setup: Program, programs: Vec<Program>) -> RunReport {
        assert!(
            programs.len() <= self.cfg.cores,
            "more programs ({}) than cores ({})",
            programs.len(),
            self.cfg.cores
        );
        #[cfg(target_arch = "x86_64")]
        if !self.cfg.os_thread_scheduler {
            return self.run_fibers(setup, programs);
        }
        self.run_threads(setup, programs)
    }

    /// The fiber scheduler: everything on the calling thread.
    #[cfg(target_arch = "x86_64")]
    fn run_fibers(&mut self, setup: Program, programs: Vec<Program>) -> RunReport {
        let nprogs = programs.len();
        let boot_core = self.cfg.cores;
        let mut pump = FiberPump {
            sim: Sim::new(Arc::clone(&self.cfg)),
            alloc_caches: std::mem::take(&mut self.alloc_caches),
            chans: (0..=self.cfg.cores)
                .map(|_| Box::new(Chan::new()))
                .collect(),
            fibers: (0..=self.cfg.cores).map(|_| None).collect(),
            live: 0,
            barrier: Vec::new(),
            pending: VecDeque::new(),
        };

        // Phase 1: bootstrap/setup program, alone on the machine.
        pump.live = 1;
        pump.spawn(boot_core, 0, 0, setup);
        pump.run_phase(boot_core..boot_core + 1);

        // Phase 2: the measured programs, all starting at the same
        // simulated instant.
        let t0 = pump.sim.now();
        pump.live = nprogs;
        for (i, prog) in programs.into_iter().enumerate() {
            pump.spawn(i, i, t0, prog);
        }
        if nprogs > 0 {
            pump.run_phase(0..nprogs);
        }
        assert!(
            pump.barrier.is_empty(),
            "threads stuck at a barrier at shutdown"
        );

        // Reclaim the allocator caches for the next run.
        self.alloc_caches = std::mem::take(&mut pump.alloc_caches);

        // Scheduler-footprint accounting: total stack reservation, plus
        // the canary high-water mark when the stacks were painted. Like
        // `Stats::events` these describe the engine, not the protocol,
        // and stay out of every determinism fingerprint.
        let spawned = pump.fibers.iter().flatten().count() as u64;
        pump.sim.stats.stack_bytes_total = spawned * self.cfg.fiber_stack as u64;
        if self.cfg.measure_stacks {
            pump.sim.stats.stack_high_water = pump
                .fibers
                .iter()
                .flatten()
                .filter_map(|f| f.high_water())
                .max()
                .unwrap_or(0) as u64;
        }
        RunReport {
            end_time: pump.sim.now(),
            core_end: (0..nprogs).map(|i| pump.chans[i].end_time.get()).collect(),
            stats: std::mem::take(&mut pump.sim.stats),
            trace: std::mem::take(&mut pump.sim.trace),
        }
    }

    /// The OS-thread scheduler: one thread per simulated core, slot
    /// handshake, token passing.
    fn run_threads(&mut self, setup: Program, programs: Vec<Program>) -> RunReport {
        let cfg = Arc::clone(&self.cfg);
        let nprogs = programs.len();
        let boot_core = cfg.cores;
        let eng = Arc::new(Engine {
            slots: (0..=cfg.cores).map(|_| Slot::new()).collect(),
            main: std::thread::current(),
            done: AtomicU32::new(0),
            spin: match std::thread::available_parallelism() {
                Ok(n) if n.get() > 1 => 200,
                _ => 0,
            },
            st: UnsafeCell::new(SchedState {
                sim: Sim::new(Arc::clone(&cfg)),
                alloc_caches: std::mem::take(&mut self.alloc_caches),
                live: 0,
                barrier: Vec::new(),
                pending: VecDeque::new(),
            }),
        });

        let report = std::thread::scope(|scope| {
            let _guard = PanicGuard(Arc::clone(&eng));

            // Phase 1: bootstrap/setup program, alone on the machine.
            {
                // SAFETY: no other thread exists yet.
                unsafe { (*eng.st.get()).live = 1 };
                let eng_ctx = Arc::clone(&eng);
                let eng_guard = Arc::clone(&eng);
                let handle = scope.spawn(move || {
                    let _guard = PanicGuard(eng_guard);
                    let mut ctx = SimCtx {
                        core: boot_core,
                        tid: 0,
                        local_time: 0,
                        backend: Backend::Threads(ThreadBackend {
                            has_token: false,
                            eng: eng_ctx,
                        }),
                    };
                    thread_backend(&ctx).register(boot_core);
                    setup(&mut ctx);
                    thread_backend_mut(&mut ctx).finish(boot_core);
                });
                run_phase(&eng, boot_core..boot_core + 1);
                handle.join().expect("setup program panicked");
            }

            // Phase 2: the measured programs, all starting at the same
            // simulated instant.
            // SAFETY: phase-1 threads are joined; main is alone again.
            let t0 = unsafe {
                let st = &mut *eng.st.get();
                st.live = nprogs;
                st.sim.now()
            };
            eng.done.store(0, Ordering::Relaxed);
            let mut handles = Vec::with_capacity(nprogs);
            for (i, prog) in programs.into_iter().enumerate() {
                let eng_ctx = Arc::clone(&eng);
                let eng_guard = Arc::clone(&eng);
                handles.push(scope.spawn(move || {
                    let _guard = PanicGuard(eng_guard);
                    let mut ctx = SimCtx {
                        core: i,
                        tid: i,
                        local_time: t0,
                        backend: Backend::Threads(ThreadBackend {
                            has_token: false,
                            eng: eng_ctx,
                        }),
                    };
                    thread_backend(&ctx).register(i);
                    prog(&mut ctx);
                    let end = ctx.local_time;
                    thread_backend_mut(&mut ctx).finish(i);
                    end
                }));
            }
            if nprogs > 0 {
                run_phase(&eng, 0..nprogs);
            }
            let core_end: Vec<u64> = handles
                .into_iter()
                .map(|h| h.join().expect("program panicked"))
                .collect();

            // SAFETY: every program thread is joined; main is alone.
            let st = unsafe { &mut *eng.st.get() };
            assert!(
                st.barrier.is_empty(),
                "threads stuck at a barrier at shutdown"
            );
            RunReport {
                end_time: st.sim.now(),
                core_end,
                stats: std::mem::take(&mut st.sim.stats),
                trace: std::mem::take(&mut st.sim.trace),
            }
        });

        // Reclaim the allocator caches for the next run.
        // SAFETY: all program threads are joined; main is alone.
        self.alloc_caches = std::mem::take(unsafe { &mut (*eng.st.get()).alloc_caches });
        report
    }
}

/// Projects the OS-thread backend out of a context known to use it.
fn thread_backend(ctx: &SimCtx) -> &ThreadBackend {
    match &ctx.backend {
        Backend::Threads(t) => t,
        #[cfg(target_arch = "x86_64")]
        Backend::Fibers(_) => unreachable!("fiber context in the OS-thread scheduler"),
    }
}

fn thread_backend_mut(ctx: &mut SimCtx) -> &mut ThreadBackend {
    match &mut ctx.backend {
        Backend::Threads(t) => t,
        #[cfg(target_arch = "x86_64")]
        Backend::Fibers(_) => unreachable!("fiber context in the OS-thread scheduler"),
    }
}

/// Runs one OS-thread-scheduler phase on the main thread: collect each
/// core's first request in core-index order, drive until the token is
/// handed into the pool, then sleep until the phase ends.
fn run_phase(eng: &Engine, initial: std::ops::Range<usize>) {
    for core in initial {
        collect_first(eng, core);
    }
    let handed_off = loop {
        // SAFETY: main holds the token until the respond below.
        let st = unsafe { &mut *eng.st.get() };
        if let Some(r) = st.pending.pop_front() {
            let resp = resp_of(&r);
            respond(eng, r.core, resp, true);
            break true;
        }
        if st.live == 0 {
            break false;
        }
        let progressed = st.sim.step();
        assert!(
            progressed,
            "deadlock: live threads but no events;{}",
            st.sim.stuck_report()
        );
        st.pending.extend(st.sim.resumes.drain(..));
    };
    if handed_off {
        while eng.done.load(Ordering::Acquire) == 0 {
            std::thread::park();
        }
    }
}

/// Collects `core`'s first request(s), serving allocator calls inline
/// until it submits a memory operation, blocks at a barrier, or finishes.
/// Main holds the token throughout.
fn collect_first(eng: &Engine, core: usize) {
    loop {
        let slot = &eng.slots[core];
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                S_REQ => break,
                S_DEAD => panic!("thread died before first request"),
                _ => {
                    if spins < eng.spin {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        // A park token set by an unrelated core's publish
                        // just makes this loop re-check; the publish we
                        // wait for always leaves a token behind, so the
                        // wakeup cannot be missed.
                        std::thread::park();
                    }
                }
            }
        }
        // SAFETY: we acquired REQ, so the request write is visible and
        // main owns the cells; `st` is token-guarded and main holds it.
        let req = unsafe { std::mem::replace(&mut *slot.req.get(), Req::Finished) };
        let st = unsafe { &mut *eng.st.get() };
        match req {
            Req::Op { at, op } => {
                // Return the slot to IDLE before the engine can respond.
                slot.state.store(S_IDLE, Ordering::Release);
                st.sim.submit_op(core, at, op);
                return;
            }
            Req::Barrier { at } => {
                slot.state.store(S_IDLE, Ordering::Release);
                st.barrier.push((core, at));
                if st.barrier.len() == st.live {
                    release_barrier(&mut st.barrier, &mut st.pending);
                }
                return;
            }
            Req::Alloc { at, words } => {
                let addr = st.alloc_caches[core].alloc(words);
                let now = at + st.sim.cfg.alloc_cycles;
                slot.state.store(S_IDLE, Ordering::Release);
                respond(eng, core, Resp::Val { v: addr, now }, false);
                // The thread resumes user code without the token; wait for
                // its next slot-published request.
            }
            Req::Free { at, addr, words } => {
                st.alloc_caches[core].free(addr, words);
                let now = at + st.sim.cfg.alloc_cycles;
                slot.state.store(S_IDLE, Ordering::Release);
                respond(eng, core, Resp::Val { v: 0, now }, false);
            }
            Req::Finished => {
                st.live -= 1;
                slot.state.store(S_DEAD, Ordering::Release);
                return;
            }
        }
    }
}
