//! The protocol engine: directory, private caches, HTM conflict handling,
//! and the discrete-event core.
//!
//! Everything here runs on the scheduler thread; application threads only
//! see [`crate::machine::SimCtx`]. The engine models the dynamics the paper
//! analyzes in §3:
//!
//! * contended atomic RMWs serialize through an owner-to-owner Fwd-GetM
//!   handoff chain, giving the ≈(C+1)/2-message-delay average latency of
//!   §3.2;
//! * HTM transactions mark lines transactional and abort on receipt of a
//!   conflicting coherence message (requester-wins), so the back-to-back
//!   invalidations of a single winning GetM abort all read-phase
//!   transactions *concurrently* (§3.3);
//! * a Fwd-GetS that reaches a core whose transactional write is still
//!   waiting for invalidation acks aborts it — the tripped writer (§3.4) —
//!   unless the §3.4.1 microarchitectural fix is enabled, in which case the
//!   request is stalled until the commit.
//!
//! ### Commit atomicity
//!
//! On real hardware the transactional store retires into the store buffer
//! immediately and `_xend` blocks until the GetM completes, so the commit
//! is atomic with request completion (§3.4.1). In this engine the *write*
//! operation blocks the thread until ownership instead, which opens a
//! few-cycle simulated window between write completion and the `xend`
//! request. To keep the paper's "the first GetM winner commits" behaviour
//! exact, Fwd requests arriving for a transactionally written line whose
//! ownership is already held are stalled until commit/abort rather than
//! aborting the transaction; the true tripped-writer abort is the Fwd-GetS
//! that arrives while the GetM is still pending.
//!
//! ### State layout and the uncontended fast path
//!
//! Line addresses are interned into a dense [`LineId`] arena; everything
//! keyed per line — cache state/value/transaction flags, the directory —
//! is an arena-indexed array rather than a hash map, so the per-operation
//! hit check is a couple of indexed loads and a 176-core machine's state
//! stays cache-resident. On top of that layout, `submit_op` decides
//! uncontended local hits at submission: the state mutation happens
//! immediately (or is delegated for RMWs) and a single stand-in event —
//! no directory messages, no inbox traversal, no per-op dispatch —
//! retires the op at exactly the time and event-sequence position the
//! full protocol would have used. The admission conditions (see
//! [`Sim::try_fast_path`]) are chosen so this is provably bit-exact with
//! the full protocol, which remains available as the semantic reference
//! via `MachineConfig::fast_path = false`.

use crate::component::{self, Component};
use crate::config::{ComponentSpec, HomePolicy, MachineConfig};
use crate::fxhash::FxHashMap;
use crate::msg::{Msg, Node};
use crate::stats::{Stats, TraceEvent};
use crate::txn::{self};
use simrng::SimRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Dense index of an interned line address. Word-granular simulated
/// memory recycles addresses through `simalloc`, so the arena stays small
/// even over long runs and dense per-line arrays stay cache-resident.
type LineId = u32;

/// The address ⇄ id interner shared by the directory and every cache.
#[derive(Debug)]
struct LineArena {
    ids: FxHashMap<u64, LineId>,
    addrs: Vec<u64>,
    /// One-entry lookup memo. Workloads hammer a handful of lines (a
    /// shared counter, a queue's head/tail), so consecutive lookups
    /// usually repeat the previous address; the memo answers them with a
    /// compare instead of a hash probe. `u64::MAX` is never a line
    /// address (word-granular addresses come from `simalloc`), so it
    /// serves as the empty sentinel.
    last: (u64, LineId),
}

impl Default for LineArena {
    fn default() -> Self {
        LineArena {
            ids: FxHashMap::default(),
            addrs: Vec::new(),
            last: (u64::MAX, 0),
        }
    }
}

impl LineArena {
    /// Id of `addr`, allocating one on first sight.
    #[inline]
    fn intern(&mut self, addr: u64) -> LineId {
        if self.last.0 == addr {
            return self.last.1;
        }
        let id = if let Some(&id) = self.ids.get(&addr) {
            id
        } else {
            let id = self.addrs.len() as LineId;
            self.addrs.push(addr);
            self.ids.insert(addr, id);
            id
        };
        self.last = (addr, id);
        id
    }

    /// Id of `addr` if it has ever been touched.
    #[inline]
    fn get(&mut self, addr: u64) -> Option<LineId> {
        if self.last.0 == addr {
            return Some(self.last.1);
        }
        let id = self.ids.get(&addr).copied();
        if let Some(id) = id {
            self.last = (addr, id);
        }
        id
    }

    /// Number of distinct lines ever touched.
    fn len(&self) -> usize {
        self.addrs.len()
    }
}

/// A small set of line ids (transaction read/write sets). The paper's
/// transactions touch a handful of lines, so a linear-scan vector beats
/// any tree or table — and unlike a hash set it allocates nothing after
/// the first few inserts and iterates in deterministic (insertion) order.
#[derive(Debug, Default)]
struct LineSet {
    lines: Vec<LineId>,
}

impl LineSet {
    #[inline]
    fn contains(&self, line: LineId) -> bool {
        self.lines.contains(&line)
    }

    #[inline]
    fn insert(&mut self, line: LineId) {
        if !self.lines.contains(&line) {
            self.lines.push(line);
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.lines.len()
    }

    fn iter(&self) -> impl Iterator<Item = &LineId> {
        self.lines.iter()
    }

    fn clear(&mut self) {
        self.lines.clear();
    }
}

/// A sorted set of core indices (directory sharer lists). Kept sorted so
/// invalidations fan out in ascending core order — the same order the
/// previous `BTreeSet` representation produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SharerSet {
    cores: Vec<usize>,
}

impl SharerSet {
    fn one(core: usize) -> Self {
        SharerSet { cores: vec![core] }
    }

    fn two(a: usize, b: usize) -> Self {
        let mut cores = if a < b { vec![a, b] } else { vec![b, a] };
        cores.dedup();
        SharerSet { cores }
    }

    fn insert(&mut self, core: usize) {
        if let Err(pos) = self.cores.binary_search(&core) {
            self.cores.insert(pos, core);
        }
    }

    fn iter(&self) -> impl Iterator<Item = &usize> {
        self.cores.iter()
    }
}

/// Stable state of a line in a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CState {
    Invalid = 0,
    Shared = 1,
    /// MESI Exclusive: sole clean copy; silent upgrade to Modified on
    /// write (only granted when `MachineConfig::mesi_exclusive` is set).
    Exclusive = 2,
    Modified = 3,
}

impl CState {
    /// Can the holder write without a coherence transaction?
    fn writable(self) -> bool {
        matches!(self, CState::Exclusive | CState::Modified)
    }
}

/// Per-line flag byte layout (see [`Cache::flags`]): the two state bits
/// plus the transactional read/write marks.
const F_STATE: u8 = 0b0011;
/// Line is in the running transaction's read set.
const F_TR: u8 = 0b0100;
/// Line is in the running transaction's write set with the write applied
/// (`values` holds the transactional, uncommitted datum; `cleans` the
/// pre-transaction one).
const F_TW: u8 = 0b1000;

#[inline]
fn decode_state(flags: u8) -> CState {
    match flags & F_STATE {
        0 => CState::Invalid,
        1 => CState::Shared,
        2 => CState::Exclusive,
        _ => CState::Modified,
    }
}

/// What the blocked thread wants done when its coherence request completes.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    Read,
    Write(u64),
    Cas {
        old: u64,
        new: u64,
    },
    Faa(u64),
    Swap(u64),
    /// A transactional write: applied only if the transaction is still
    /// live when ownership arrives.
    TxWrite(u64),
}

/// An outstanding coherence request. A core has at most one request its
/// thread is *blocked on*, plus any number of *headless* requests left
/// behind by aborted transactions (§3.3: the cache still takes ownership,
/// asynchronously, while the core moves on). Few enough at any instant
/// that a linear-scan vector beats a hash map.
#[derive(Debug)]
struct PendingReq {
    line: LineId,
    is_getm: bool,
    have_data: bool,
    value: u64,
    acks_expected: Option<u64>,
    acks_got: u64,
    /// The directory granted Exclusive on this (GetS) response.
    got_excl: bool,
    /// `None` once the issuing transaction aborted: the request finishes
    /// headless (the cache still takes ownership — §3.3's pending-GetM
    /// effect — but no thread is resumed).
    waiter: Option<Waiter>,
}

/// Running-transaction bookkeeping.
#[derive(Debug, Default)]
struct Txn {
    depth: u32,
    read_set: LineSet,
    write_set: LineSet,
}

/// Where a core's thread currently is, from the engine's point of view.
/// Exactly one response is owed to the thread whenever the state is not
/// `Idle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    /// No outstanding operation (finished, or response already queued).
    Idle,
    /// The thread submitted an op whose `IssueOp` event has not fired yet.
    Inbox,
    /// `begin_op` is on the stack for this core.
    Current,
    /// Blocked in a `delay()`.
    Delaying,
    /// Blocked on the pending coherence request.
    PendingWait,
    /// An RMW is executing (`RmwDone` scheduled).
    RmwExec,
    /// Blocked in `wait_tick()` until a `TickGate` component releases
    /// this core. Not permitted inside a transaction.
    TickWait,
}

/// One core's private cache controller plus HTM state. Per-line state is
/// structure-of-arrays, dense over the line arena: the flag byte, the
/// current value, and the pre-transaction value live in three parallel
/// vectors grown lazily to the highest line this cache has touched.
#[derive(Debug)]
struct Cache {
    /// Per-line flag byte, indexed by [`LineId`]: bits 0–1 the
    /// [`CState`], bit 2 `F_TR`, bit 3 `F_TW`. Lines beyond the vector
    /// are Invalid with no marks.
    flags: Vec<u8>,
    /// Per-line current value (transactional, uncommitted datum while
    /// `F_TW` is set).
    values: Vec<u64>,
    /// Per-line pre-transaction value to restore on abort (valid while
    /// `F_TW` is set).
    cleans: Vec<u64>,
    /// Outstanding coherence requests: at most one the thread waits on
    /// (waiter set / deferred op), plus headless ones. Linear scan.
    pending: Vec<PendingReq>,
    /// A thread operation deferred because a (headless) request for its
    /// line is already in flight; re-dispatched at that request's
    /// completion (the MSHR-merge a real core performs).
    deferred: Option<OpKind>,
    deferred_line: LineId,
    /// Coherence requests stalled behind a pending request / executing RMW
    /// / committing transaction. Appended in arrival order, so the vector
    /// order *is* stamp order; releases replay unblocked messages in that
    /// order, matching the arrival-ordered queue this replaces.
    stalled: Vec<(u64, LineId, Msg)>,
    /// Arrival counter feeding the stamps in `stalled`.
    stall_stamp: u64,
    /// An RMW is executing (between data arrival and `RmwDone`): incoming
    /// Fwd requests must wait (§3.2).
    rmw_busy: bool,
    /// Line the executing RMW targets (valid while `rmw_busy`).
    rmw_line: LineId,
    txn: Option<Txn>,
    /// Retired transaction bookkeeping kept for reuse, so `xbegin` after
    /// the first never allocates read/write-set storage.
    txn_spare: Option<Txn>,
    /// Abort detected while the thread's next op sat in the inbox; reported
    /// when that op issues.
    pending_abort: Option<u32>,
    /// Tick-gate releases that arrived while this core was *not* blocked
    /// in `wait_tick()`; the next `wait_tick()` consumes one immediately.
    /// Banking absorbs gate/consumer phase drift without losing ticks.
    ticks_banked: u64,
    /// Generation counter for cancellable wakeups (delays, RMW end).
    gen: u64,
    op_state: OpState,
    socket: usize,
}

impl Cache {
    fn new(socket: usize) -> Self {
        Cache {
            flags: Vec::new(),
            values: Vec::new(),
            cleans: Vec::new(),
            pending: Vec::new(),
            deferred: None,
            deferred_line: 0,
            stalled: Vec::new(),
            stall_stamp: 0,
            rmw_busy: false,
            rmw_line: 0,
            txn: None,
            txn_spare: None,
            pending_abort: None,
            ticks_banked: 0,
            gen: 0,
            op_state: OpState::Idle,
            socket,
        }
    }

    /// Grows the per-line arrays to cover `line`.
    #[inline]
    fn ensure(&mut self, line: LineId) {
        let need = line as usize + 1;
        if self.flags.len() < need {
            self.flags.resize(need, 0);
            self.values.resize(need, 0);
            self.cleans.resize(need, 0);
        }
    }

    #[inline]
    fn state(&self, line: LineId) -> CState {
        decode_state(self.flags.get(line as usize).copied().unwrap_or(0))
    }

    #[inline]
    fn set_state(&mut self, line: LineId, s: CState) {
        self.ensure(line);
        let f = &mut self.flags[line as usize];
        *f = (*f & !F_STATE) | s as u8;
    }

    #[inline]
    fn value(&self, line: LineId) -> u64 {
        self.values.get(line as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn flag(&self, line: LineId, bit: u8) -> bool {
        self.flags.get(line as usize).copied().unwrap_or(0) & bit != 0
    }

    #[inline]
    fn set_flag(&mut self, line: LineId, bit: u8, on: bool) {
        self.ensure(line);
        let f = &mut self.flags[line as usize];
        if on {
            *f |= bit;
        } else {
            *f &= !bit;
        }
    }

    /// The line of the request the thread is currently blocked on, if any.
    fn thread_pending_line(&self) -> Option<LineId> {
        self.pending
            .iter()
            .find(|p| p.waiter.is_some())
            .map(|p| p.line)
    }

    #[inline]
    fn pending_on(&self, line: LineId) -> bool {
        self.pending.iter().any(|p| p.line == line)
    }

    #[inline]
    fn pending_get_mut(&mut self, line: LineId) -> Option<&mut PendingReq> {
        self.pending.iter_mut().find(|p| p.line == line)
    }

    /// Removes and returns the pending request for `line`, preserving the
    /// order of the rest (order is observable through `thread_pending_line`
    /// and the abort path's first-waiter scan).
    fn pending_remove(&mut self, line: LineId) -> Option<PendingReq> {
        let pos = self.pending.iter().position(|p| p.line == line)?;
        Some(self.pending.remove(pos))
    }

    fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn txn_reads(&self, line: LineId) -> bool {
        self.txn.as_ref().is_some_and(|t| t.read_set.contains(line))
    }

    fn txn_writes(&self, line: LineId) -> bool {
        self.txn
            .as_ref()
            .is_some_and(|t| t.write_set.contains(line))
    }

    /// Files `msg` in the stalled queue, stamped with the per-cache
    /// arrival counter.
    fn stall(&mut self, line: LineId, msg: Msg) {
        self.stall_stamp += 1;
        let stamp = self.stall_stamp;
        self.stalled.push((stamp, line, msg));
    }
}

/// Directory state for one line.
#[derive(Debug, Clone)]
enum DirState {
    Invalid,
    Shared(SharerSet),
    /// Sole clean-or-dirty owner under MESI-E; the directory cannot tell
    /// E from M after a silent upgrade, so it forwards requests exactly
    /// as for Modified.
    Exclusive(usize),
    Modified(usize),
    /// Transient: a Fwd-GetS was sent to the previous owner and the
    /// directory is waiting for its writeback before serving further
    /// requests for this line.
    AwaitWb(SharerSet),
}

#[derive(Debug)]
struct DirEntry {
    state: DirState,
    mem: u64,
    /// Requests that arrived during a transient state, replayed in order.
    queued: VecDeque<(usize, Msg)>,
}

impl Default for DirEntry {
    fn default() -> Self {
        DirEntry {
            state: DirState::Invalid,
            mem: 0,
            queued: VecDeque::new(),
        }
    }
}

/// The directory (shared LLC slice): a dense array over the line arena.
#[derive(Debug, Default)]
struct Directory {
    entries: Vec<DirEntry>,
}

impl Directory {
    fn entry(&mut self, line: LineId) -> &mut DirEntry {
        let need = line as usize + 1;
        if self.entries.len() < need {
            self.entries.resize_with(need, DirEntry::default);
        }
        &mut self.entries[line as usize]
    }
}

/// Scheduler events.
#[derive(Debug)]
enum Event {
    /// A message arrives at `to`.
    Deliver { to: Node, msg: Msg },
    /// Core `core`'s thread issues its next operation.
    IssueOp { core: usize },
    /// An RMW (or plain store) finishes executing on `core`.
    RmwDone { core: usize, gen: u64 },
    /// A `delay()` elapses on `core` (cancellable by abort).
    DelayDone { core: usize, gen: u64 },
    /// Fast-path hit (read, or transactional write on an owned line):
    /// the result was computed and applied at submission; this event
    /// stands in for the `IssueOp` and resumes the thread with the
    /// configured hit latency. See [`Sim::try_fast_path`].
    FastHit { core: usize, result: u64 },
    /// Fast-path RMW/store on an owned line: stands in for the `IssueOp`
    /// and enters `start_rmw` directly — the line is already interned
    /// and known writable, so the inbox, `begin_op` checks, and the
    /// store dispatch are skipped. From here on the op runs the ordinary
    /// RMW window (`RmwDone`, stall handling) unchanged.
    FastRmw {
        core: usize,
        line: LineId,
        waiter: Waiter,
    },
    /// Component `comp`'s scheduled tick is due (see
    /// [`crate::component`]). Never pushed when no components are
    /// configured, so the component-free event stream is unchanged.
    CompTick { comp: u32 },
}

struct HeapItem {
    time: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar-wheel event queue, ordered by `(time, seq)`.
///
/// Event times cluster within a few hundred cycles of the clock (hop
/// latencies, RMW windows), so a binary heap's `O(log n)` compares and
/// element moves are wasted work. The wheel keeps the near future — times
/// in `[clock, clock + WHEEL)` — in a circular array of per-time FIFO
/// buckets: push is an append plus a bitmap bit, pop is a bitmap scan.
/// Bucket vectors are pooled, so the steady state allocates nothing.
/// Times at or beyond the horizon (long `delay()`s) overflow into a
/// binary heap and migrate into the wheel as the clock advances.
///
/// Delivery is batched per wheel tick: within the horizon, each slot
/// holds exactly one time value, and the slot of the *current* clock can
/// only hold events at exactly the clock — which are by construction the
/// queue minimum. `pop` therefore drains the current tick's bucket with
/// direct indexed pops, paying the bitmap scan (and the overflow-
/// migration check) once per distinct timestamp rather than once per
/// event.
///
/// Order preservation: within the horizon each bucket holds exactly one
/// time value (times are unique mod `WHEEL` there), and appends happen in
/// `seq` order, so bucket FIFO order is `(time, seq)` order. An overflow
/// event migrates before any in-horizon push at the same time can occur
/// (a push at `t` requires `t < clock + WHEEL`, and migration runs
/// whenever the clock advances), so mixed buckets stay seq-sorted too.
struct EventQ {
    /// Per-bucket FIFO list heads/tails into `nodes`; `NIL` = empty.
    heads: Box<[u32; WHEEL as usize]>,
    tails: Box<[u32; WHEEL as usize]>,
    /// Slab of list nodes. Freed nodes chain through `free` and are
    /// reused, so the steady state allocates nothing and the hot nodes
    /// stay in a few cache lines.
    nodes: Vec<EventNode>,
    free: u32,
    /// One bit per wheel bucket: bucket non-empty.
    occupied: [u64; (WHEEL / 64) as usize],
    far: BinaryHeap<HeapItem>,
    len: usize,
}

/// A wheel-bucket list node. It stores *only* the event: within the
/// horizon a slot holds exactly one time value (recomputed from the slot
/// index on pop), and FIFO position already encodes `seq` order, so
/// neither needs to be materialized — nodes stay small and the slab hot.
struct EventNode {
    ev: Event,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Wheel size in buckets. Must exceed every in-flight latency the
/// protocol generates on its own (hops, RMW/commit windows); only long
/// program `delay()`s should overflow. Kept small on purpose: the whole
/// wheel (slots, bitmap, and the steady-state slab) then fits in L1/L2,
/// and the pop-time bitmap scan touches at most four words.
const WHEEL: u64 = 256;

impl EventQ {
    fn new() -> Self {
        EventQ {
            heads: Box::new([NIL; WHEEL as usize]),
            tails: Box::new([NIL; WHEEL as usize]),
            nodes: Vec::new(),
            free: NIL,
            occupied: [0u64; (WHEEL / 64) as usize],
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mark(&mut self, slot: u64) {
        self.occupied[(slot / 64 % (WHEEL / 64)) as usize] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn unmark(&mut self, slot: u64) {
        self.occupied[(slot / 64 % (WHEEL / 64)) as usize] &= !(1u64 << (slot % 64));
    }

    /// Appends to `slot`'s FIFO, preserving push (= `seq`) order.
    #[inline]
    fn bucket_push(&mut self, slot: u64, ev: Event) {
        let n = if self.free != NIL {
            let n = self.free;
            let node = &mut self.nodes[n as usize];
            self.free = node.next;
            node.ev = ev;
            node.next = NIL;
            n
        } else {
            let n = self.nodes.len() as u32;
            self.nodes.push(EventNode { ev, next: NIL });
            n
        };
        let tail = self.tails[(slot % WHEEL) as usize];
        if tail == NIL {
            self.heads[(slot % WHEEL) as usize] = n;
            self.mark(slot);
        } else {
            self.nodes[tail as usize].next = n;
        }
        self.tails[(slot % WHEEL) as usize] = n;
    }

    /// Unlinks `slot`'s FIFO head, returning the node to the freelist.
    #[inline]
    fn bucket_pop(&mut self, slot: u64) -> Option<Event> {
        let n = self.heads[(slot % WHEEL) as usize];
        if n == NIL {
            return None;
        }
        let node = &mut self.nodes[n as usize];
        let item = std::mem::replace(&mut node.ev, Event::IssueOp { core: 0 });
        let next = node.next;
        node.next = self.free;
        self.free = n;
        self.heads[(slot % WHEEL) as usize] = next;
        if next == NIL {
            self.tails[(slot % WHEEL) as usize] = NIL;
            self.unmark(slot);
        }
        Some(item)
    }

    #[inline]
    fn push(&mut self, clock: u64, time: u64, seq: u64, ev: Event) {
        // A past-time push would underflow `time - clock` below and land
        // the event in a wheel slot up to WHEEL cycles in the future (or
        // the overflow heap), silently corrupting the (time, seq) order.
        // Fail loudly instead.
        debug_assert!(
            time >= clock,
            "EventQ::push: event time {time} is before the clock {clock} \
             (events must never be scheduled in the past)"
        );
        self.len += 1;
        if time - clock < WHEEL {
            let _ = seq; // implicit in FIFO position within the horizon
            self.bucket_push(time % WHEEL, ev);
        } else {
            self.far.push(HeapItem { time, seq, ev });
        }
    }

    /// The unique time an occupied wheel `slot` can hold: the one value in
    /// `[clock, clock + WHEEL)` congruent to `slot` mod `WHEEL`.
    #[inline]
    fn slot_time(clock: u64, slot: u64) -> u64 {
        clock + (slot.wrapping_sub(clock) % WHEEL)
    }

    /// Time of the earliest event, without removing it. `clock` is the
    /// simulator's current time; no event is ever scheduled in the past.
    fn next_time(&self, clock: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match self.scan(clock) {
            Some(slot) => Some(Self::slot_time(clock, slot)),
            None => Some(self.far.peek().expect("len counted a missing event").time),
        }
    }

    /// Removes and returns the earliest event. `clock` is the simulator's
    /// current time; no event is ever scheduled in the past.
    fn pop(&mut self, clock: u64) -> Option<(u64, Event)> {
        if self.len == 0 {
            return None;
        }
        // Same-tick fast pop: the current clock's slot can only hold
        // events at exactly `clock` (time ≡ slot mod WHEEL, and pushes
        // land within the horizon), which are the queue minimum. The
        // clock does not advance, so the overflow heap cannot have
        // entered the horizon — skip the scan and the migration check.
        if let Some(ev) = self.bucket_pop(clock % WHEEL) {
            self.len -= 1;
            return Some((clock, ev));
        }
        self.len -= 1;
        let (time, ev) = match self.scan(clock) {
            Some(slot) => {
                let ev = self.bucket_pop(slot).expect("occupied bit without items");
                (Self::slot_time(clock, slot), ev)
            }
            None => {
                // Wheel empty: the overflow heap holds the minimum.
                let item = self.far.pop().expect("len counted a missing event");
                (item.time, item.ev)
            }
        };
        // The clock is about to advance to `time`: pull newly in-horizon
        // overflow events into the wheel before anything can push at
        // those times.
        while let Some(top) = self.far.peek() {
            // Every overflow event was beyond the horizon of the clock at
            // its push, so it can never be older than the event being
            // popped; if this ever fails, a past-time push slipped
            // through and the `top.time - time` below would underflow.
            debug_assert!(
                top.time >= time,
                "EventQ::pop: overflow-heap event at {} is older than the popped event at {time} \
                 (a past-horizon push corrupted the queue order)",
                top.time
            );
            if top.time - time >= WHEEL {
                break;
            }
            let item = self.far.pop().unwrap();
            self.bucket_push(item.time % WHEEL, item.ev);
        }
        Some((time, ev))
    }

    /// Finds the occupied bucket with the smallest time ≥ `clock`, i.e.
    /// the first occupied bucket in circular order from `clock`'s slot.
    fn scan(&self, clock: u64) -> Option<u64> {
        let start = clock % WHEEL;
        let words = self.occupied.len() as u64;
        let first_word = start / 64;
        // Mask off bits below `start` in its word, then walk the bitmap
        // circularly; total work is a few dozen word reads at most.
        let head = self.occupied[first_word as usize] & (!0u64 << (start % 64));
        if head != 0 {
            return Some(first_word * 64 + head.trailing_zeros() as u64);
        }
        for i in 1..=words {
            let w = (first_word + i) % words;
            let bits = self.occupied[w as usize];
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as u64;
                // The wrapped tail of the start word: bits below `start`
                // belong to times ~WHEEL ahead, still valid candidates
                // only after the full circle — which this loop's `i ==
                // words` iteration (same word again) handles naturally.
                return Some(slot);
            }
        }
        None
    }
}

/// A memory operation as issued by a thread.
#[derive(Debug, Clone, Copy)]
pub enum OpKind {
    Read(u64),
    Write(u64, u64),
    Cas(u64, u64, u64),
    Faa(u64, u64),
    Swap(u64, u64),
    Delay(u64),
    TxBegin,
    TxEnd,
    TxAbort(u8),
    /// Block until a `TickGate` component releases this core (or consume
    /// a banked release immediately). Not permitted inside a transaction.
    WaitTick,
}

impl OpKind {
    /// Dense index into [`crate::stats::OP_KINDS`].
    fn name_id(&self) -> usize {
        match self {
            OpKind::Read(..) => 0,
            OpKind::Write(..) => 1,
            OpKind::Cas(..) => 2,
            OpKind::Faa(..) => 3,
            OpKind::Swap(..) => 4,
            OpKind::Delay(..) => 5,
            OpKind::TxBegin => 6,
            OpKind::TxEnd => 7,
            OpKind::TxAbort(..) => 8,
            OpKind::WaitTick => 9,
        }
    }
}

/// What the engine reports back to a blocked thread.
#[derive(Debug, Clone, Copy)]
pub enum OpOutcome {
    /// Operation completed with this value (CAS reports 1/0; commit 1).
    Val(u64),
    /// The enclosing transaction aborted with this status word.
    Aborted(u32),
}

/// A completed thread resumption: deliver `outcome` to `core`, whose local
/// clock becomes `time`.
#[derive(Debug)]
pub struct Resume {
    pub core: usize,
    pub time: u64,
    pub outcome: OpOutcome,
}

/// The deterministic machine surface a [`crate::component::Component`]
/// sees during its tick. Deliberately narrow: no RNG, no direct cache or
/// directory mutation — everything a component can do is expressible as
/// the existing abort/resume machinery, so attaching components never
/// perturbs state they did not explicitly act on.
pub struct CompCtx<'a> {
    sim: &'a mut Sim,
    /// The ticking component's spine index (for trace attribution).
    comp: usize,
    /// The ticking component's stable name.
    name: &'static str,
}

impl CompCtx<'_> {
    /// Current simulated time, cycles.
    pub fn now(&self) -> u64 {
        self.sim.clock
    }

    /// Number of application cores (excluding the bootstrap core).
    pub fn cores(&self) -> usize {
        self.sim.cfg.cores
    }

    /// True if `core`'s thread is inside a hardware transaction.
    pub fn in_txn(&self, core: usize) -> bool {
        self.sim.caches[core].in_txn()
    }

    /// Fires an interrupt at `core`. A victim inside a transaction takes
    /// a `txn::INTERRUPT` abort and resumes `cost` cycles later (the
    /// handler runs before the abort is delivered); a victim outside one
    /// absorbs the handler with no engine-visible effect (its timing is
    /// dominated by whatever protocol event it is blocked on). Returns
    /// whether a transaction was actually aborted.
    pub fn interrupt(&mut self, core: usize, cost: u64) -> bool {
        assert!(
            core < self.sim.cfg.cores,
            "component {:?} interrupted core {core}, but the machine has {} cores",
            self.name,
            self.sim.cfg.cores
        );
        self.sim.stats.interrupts_fired += 1;
        self.sim.trace_comp(self.comp, self.name, "interrupt", core);
        if !self.sim.caches[core].in_txn() {
            return false;
        }
        self.sim.stats.tx_aborts_interrupt += 1;
        let cost = cost.max(1);
        self.sim.abort_txn_at(core, txn::INTERRUPT, cost);
        true
    }

    /// Releases `core`'s `wait_tick()`: resumes the thread if it is
    /// blocked in one, otherwise banks the tick for the next call.
    /// Returns whether a thread was released (vs. banked).
    pub fn release_tick(&mut self, core: usize) -> bool {
        assert!(
            core < self.sim.cfg.cores,
            "component {:?} released core {core}, but the machine has {} cores",
            self.name,
            self.sim.cfg.cores
        );
        if self.sim.caches[core].op_state == OpState::TickWait {
            self.sim.trace_comp(self.comp, self.name, "release", core);
            let now = self.sim.clock;
            self.sim.resume_at(core, now, OpOutcome::Val(0));
            true
        } else {
            self.sim.trace_comp(self.comp, self.name, "bank", core);
            self.sim.caches[core].ticks_banked += 1;
            false
        }
    }
}

/// The protocol engine. Owned and driven by [`crate::machine`].
pub struct Sim {
    pub cfg: Arc<MachineConfig>,
    clock: u64,
    seq: u64,
    events: EventQ,
    lines: LineArena,
    dir: Directory,
    caches: Vec<Cache>,
    /// Operation each core's thread has issued and not yet begun.
    op_inbox: Vec<Option<OpKind>>,
    /// Thread resumptions produced by event processing; drained by the
    /// machine layer after each `step`.
    pub resumes: Vec<Resume>,
    pub stats: Stats,
    pub trace: Vec<TraceEvent>,
    rng: SimRng,
    check_countdown: u32,
    /// Earliest time each directory slice can accept its next request,
    /// indexed by home socket. Under `HomePolicy::Fixed` every line maps
    /// to the `home_socket` slot, which is exactly the old single-slice
    /// occupancy; the distributed policies give each socket's slice its
    /// own pipeline, as on real parts.
    dir_free_at: Vec<u64>,
    /// Number of sockets the topology spans (≥ `home_socket + 1` so the
    /// fixed policy always has its slot).
    nsockets: usize,
    /// First-touch home assignments (`HomePolicy::FirstTouch` only):
    /// line address → socket of the first core whose request for it hit
    /// the interconnect. A separate map rather than the line arena so
    /// the policy cannot perturb intern order.
    first_touch: FxHashMap<u64, usize>,
    /// Earliest time each cache can serve its next incoming request.
    cache_free_at: Vec<u64>,
    /// Number of `Deliver`-to-core events currently in the wheel, per
    /// core. A core with zero in-flight messages and an issue time `t <
    /// clock + hop_min` provably receives nothing before `t` — the
    /// fast-path non-interference gate.
    inflight_to: Vec<u32>,
    /// Minimum one-way hop latency, precomputed for the fast-path gate.
    hop_min: u64,
    /// Reusable buffer for released stalled messages.
    stall_scratch: Vec<(u64, LineId, Msg)>,
    /// Reusable buffer for directory-queued request replay.
    wb_scratch: VecDeque<(usize, Msg)>,
    /// The component spine (see [`crate::component`]): index 0 is the
    /// fused core complex, index 1 the directory, then one live actor
    /// per `MachineConfig::components` spec. Ticks arrive as
    /// `Event::CompTick` in ordinary `(time, seq)` order.
    comps: Vec<Box<dyn Component>>,
    /// True when any configured component can abort a transaction
    /// asynchronously (an interrupt source). Gates the fast path for
    /// transactional ops: with an async abort possible between
    /// submission and issue, they must take the slow path so the abort
    /// is observed at issue (and fast-path on/off stays bit-exact).
    has_async_abort: bool,
}

impl Sim {
    pub fn new(cfg: Arc<MachineConfig>) -> Self {
        // +1 for the bootstrap core used by the setup phase.
        let ncaches = cfg.cores + 1;
        let caches = (0..ncaches).map(|c| Cache::new(cfg.socket_of(c))).collect();
        // The component spine. Cores and the directory are registered
        // first — they are the built-in, message-driven components whose
        // ticks are fused into the Deliver/IssueOp dispatch, so they
        // request no ticks of their own. Configured actors follow in
        // declaration order, which (with the shared seq counter) fixes
        // the firing order of same-cycle ticks.
        let mut comps: Vec<Box<dyn Component>> = vec![
            Box::new(component::CoreComplex),
            Box::new(component::DirectoryUnit),
        ];
        for spec in &cfg.components {
            comps.push(component::build(spec, cfg.cores));
        }
        let has_async_abort = cfg
            .components
            .iter()
            .any(|s| matches!(s, ComponentSpec::Interrupt { .. }));
        let nsockets = cfg.sockets().max(cfg.home_socket + 1);
        let mut sim = Sim {
            rng: SimRng::seed_from_u64(cfg.seed),
            clock: 0,
            seq: 0,
            events: EventQ::new(),
            lines: LineArena::default(),
            dir: Directory::default(),
            caches,
            op_inbox: vec![None; ncaches],
            resumes: Vec::new(),
            stats: Stats::default(),
            trace: Vec::new(),
            check_countdown: 0,
            dir_free_at: vec![0; nsockets],
            nsockets,
            first_touch: FxHashMap::default(),
            cache_free_at: vec![0; ncaches],
            inflight_to: vec![0; ncaches],
            hop_min: cfg.hop_intra.min(cfg.hop_cross),
            stall_scratch: Vec::new(),
            wb_scratch: VecDeque::new(),
            comps,
            has_async_abort,
            cfg,
        };
        // Schedule every component's first tick. With no configured
        // components this pushes nothing (the built-ins never tick), so
        // the seq stream — and every determinism golden — is untouched.
        for i in 0..sim.comps.len() {
            if let Some(t) = sim.comps[i].next_tick(0) {
                sim.push(t, Event::CompTick { comp: i as u32 });
            }
        }
        sim
    }

    /// Current simulated time, cycles.
    pub fn now(&self) -> u64 {
        self.clock
    }

    fn push(&mut self, time: u64, ev: Event) {
        debug_assert!(time >= self.clock, "event scheduled in the past");
        if let Event::Deliver {
            to: Node::Core(c), ..
        } = ev
        {
            self.inflight_to[c] += 1;
        }
        self.seq += 1;
        self.events.push(self.clock, time, self.seq, ev);
    }

    /// Home socket of the directory slice serving `addr`. `toucher` is
    /// the core on the other end of the directory leg — the assignee
    /// under the first-touch policy (the first directory-bound message
    /// for any line is its requester's GetS/GetM, so the entry a later
    /// Dir→core reply looks up always exists by then).
    fn home_socket_of(&mut self, addr: u64, toucher: usize) -> usize {
        match self.cfg.home_policy {
            HomePolicy::Fixed => self.cfg.home_socket,
            HomePolicy::Interleave => {
                (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.nsockets
            }
            HomePolicy::FirstTouch => {
                let s = self.caches[toucher].socket;
                *self.first_touch.entry(addr).or_insert(s)
            }
        }
    }

    fn send(&mut self, src: Node, dst: Node, msg: Msg) {
        let sent = self.clock;
        // A directory leg is priced at the line's home socket; the
        // core↔core legs (Fwd data transfers) never consult the home.
        let core_of = |n: Node| match n {
            Node::Core(c) => Some(c),
            Node::Dir => None,
        };
        let toucher = core_of(src).or(core_of(dst)).unwrap_or(0);
        let socket_of = |sim: &mut Self, n: Node| match n {
            Node::Core(c) => sim.caches[c].socket,
            Node::Dir => sim.home_socket_of(msg.line(), toucher),
        };
        let s_src = socket_of(self, src);
        let s_dst = socket_of(self, dst);
        if s_src == s_dst {
            self.stats.hops_intra += 1;
        } else {
            self.stats.hops_cross += 1;
            if matches!(src, Node::Dir) || matches!(dst, Node::Dir) {
                self.stats.dir_hops_cross += 1;
            }
        }
        let recv = sent + self.cfg.hop(s_src, s_dst);
        if self.cfg.trace {
            self.trace.push(TraceEvent::Msg {
                sent,
                recv,
                src: src.to_string(),
                dst: dst.to_string(),
                kind: msg.kind(),
                line: msg.line(),
            });
        }
        self.stats.count_msg(msg.kind_id());
        self.push(recv, Event::Deliver { to: dst, msg });
    }

    fn trace_tx(&mut self, core: usize, what: &'static str, detail: u64) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::Tx {
                time: self.clock,
                core,
                what,
                detail,
            });
        }
    }

    fn resume_at(&mut self, core: usize, time: u64, outcome: OpOutcome) {
        debug_assert_ne!(self.caches[core].op_state, OpState::Idle);
        self.caches[core].op_state = OpState::Idle;
        self.resumes.push(Resume {
            core,
            time,
            outcome,
        });
    }

    /// Hands the engine a thread's next operation, issued at the thread's
    /// local time `at`. When the fast path admits the operation (see
    /// [`Sim::try_fast_path`]) its outcome is decided here, at
    /// submission, and a stand-in event delivers it at the issue time.
    pub fn submit_op(&mut self, core: usize, at: u64, op: OpKind) {
        assert!(
            self.op_inbox[core].is_none(),
            "core {core} already has an op"
        );
        assert_eq!(self.caches[core].op_state, OpState::Idle);
        let mut t = at.max(self.clock) + self.cfg.op_cycles;
        // A thread's local time may lag the event clock (the clock keeps
        // advancing while the thread runs user code), so `at < now()` is
        // legitimate — but the *issue* must never land in the simulator's
        // past. The clamp above guarantees it; assert the guarantee so a
        // future fast-path change cannot silently schedule backwards.
        debug_assert!(t >= self.clock, "operation issued into the past");
        // Scheduler-choice perturbation: stretch the issue latency so a
        // different ready core wins the next engine slot. Only IssueOp
        // times are perturbed — in-flight protocol messages keep their
        // modelled latencies, so the protocol stays well-formed and both
        // schedulers consume the RNG in the same (submit) order. Drawn
        // before the fast-path attempt so the RNG stream is one draw per
        // submission regardless of which path the op takes.
        if self.cfg.sched_perturb > 0 {
            t += self.rng.gen_range_inclusive(0, self.cfg.sched_perturb);
        }
        if self.cfg.fast_path {
            if self.try_fast_path(core, at, t, op) {
                return;
            }
            self.stats.fastpath_fallbacks += 1;
        }
        self.caches[core].op_state = OpState::Inbox;
        self.op_inbox[core] = Some(op);
        self.push(t, Event::IssueOp { core });
    }

    /// Attempts to retire `op` through the fast path: a local hit whose
    /// outcome is decided *at submission*, skipping the inbox, the
    /// `begin_op` checks, the line re-intern, and the store dispatch the
    /// slow path runs per operation. Hits (reads; transactional writes on
    /// owned lines) have their effects applied immediately and are
    /// finished off by a single trivial [`Event::FastHit`]; owned
    /// RMWs/stores go through [`Event::FastRmw`], which enters the
    /// ordinary `start_rmw` window at the issue time. Returns false
    /// (having changed nothing) if any admission condition fails; the
    /// caller then takes the full path. `t` is the already-perturbed
    /// issue time.
    ///
    /// The conditions are chosen so the fast path is *bit-exact* with the
    /// slow path (DESIGN.md §12 gives the full argument):
    ///
    /// * the core is quiescent — no pending requests, no stalled
    ///   messages, no RMW window, no deferred op, no pending abort;
    /// * the op is a pure local hit (S/E/M read; E/M write or RMW outside
    ///   a transaction; transactional read, or transactional write with
    ///   ownership held) that sends no messages on the slow path;
    /// * no coherence message can reach this core before the issue time
    ///   `t`: none is in flight to it (`inflight_to == 0`), and any
    ///   message *created* after this submission is processed at some
    ///   event time `≥ clock` and so arrives `≥ clock + hop_min > t`.
    ///   Before `t`, then, nothing can invalidate the decision taken at
    ///   submission; at or after `t`, the slow path has applied the same
    ///   mutations, so arrivals observe identical state either way.
    ///
    /// Event-order parity is structural, not conditional: the stand-in
    /// event is pushed at the very point the slow path pushes `IssueOp`
    /// (so it carries the same `(time, seq)` key), and `FastRmw` pushes
    /// `RmwDone` from inside `start_rmw` at `t` exactly as the slow path
    /// does — every interleaving with other events, stalls, and resumes
    /// is preserved. A hit's effects land at submission instead of at
    /// `t`; the difference is unobservable because nothing arrives in
    /// between.
    fn try_fast_path(&mut self, core: usize, at: u64, t: u64, op: OpKind) -> bool {
        let Some(addr) = op_line(&op) else {
            // Delays draw jitter from the RNG; transaction begin/end/abort
            // commit, trace, and may draw the spurious-abort RNG. All take
            // the slow path.
            return false;
        };
        // Non-interference gate first — it is two loads and rejects most
        // contended submissions before the per-core scans and the line
        // lookup below: nothing in flight to this core, and the issue
        // time close enough that nothing new can arrive before it.
        if self.inflight_to[core] != 0 || t >= self.clock + self.hop_min {
            return false;
        }
        {
            let c = &self.caches[core];
            if !c.pending.is_empty()
                || !c.stalled.is_empty()
                || c.rmw_busy
                || c.pending_abort.is_some()
                || c.deferred.is_some()
            {
                return false;
            }
        }
        // A line never touched by anyone is Invalid everywhere: a miss.
        let Some(line) = self.lines.get(addr) else {
            return false;
        };
        let (state, in_txn) = {
            let c = &self.caches[core];
            (c.state(line), c.in_txn())
        };
        // An interrupt component can abort this transaction *between*
        // submission and the issue time `t` — the one asynchronous event
        // the non-interference gate cannot exclude, because it arrives by
        // component tick rather than coherence message. Transactional ops
        // then must take the slow path, where `begin_op` observes the
        // pended abort at issue (and fast-path on/off stays bit-exact
        // under interrupt components).
        if in_txn && self.has_async_abort {
            return false;
        }
        let cap = self.cfg.tx_capacity_lines;
        // `None` = hit shape (effects applied now, one `FastHit` event);
        // `Some(waiter)` = RMW shape (a `FastRmw` event enters the
        // ordinary `start_rmw` window at `t`).
        let rmw_waiter: Option<Waiter> = match op {
            OpKind::Read(_) => {
                if state == CState::Invalid {
                    return false;
                }
                if in_txn && cap > 0 {
                    let tx = self.caches[core].txn.as_ref().unwrap();
                    let grow = usize::from(!tx.read_set.contains(line));
                    if tx.read_set.len() + tx.write_set.len() + grow > cap {
                        return false; // would capacity-abort: slow path
                    }
                }
                None
            }
            OpKind::Write(..) if in_txn => {
                if !state.writable() {
                    return false;
                }
                if cap > 0 {
                    let tx = self.caches[core].txn.as_ref().unwrap();
                    let grow = usize::from(!tx.write_set.contains(line));
                    if tx.read_set.len() + tx.write_set.len() + grow > cap {
                        return false;
                    }
                }
                None
            }
            OpKind::Write(_, v) => {
                if !state.writable() {
                    return false;
                }
                Some(Waiter::Write(v))
            }
            OpKind::Cas(_, old, new) => {
                // RMW inside a transaction is unsupported (slow path
                // panics); outside one it needs ownership.
                if in_txn || !state.writable() {
                    return false;
                }
                Some(Waiter::Cas { old, new })
            }
            OpKind::Faa(_, v) => {
                if in_txn || !state.writable() {
                    return false;
                }
                Some(Waiter::Faa(v))
            }
            OpKind::Swap(_, v) => {
                if in_txn || !state.writable() {
                    return false;
                }
                Some(Waiter::Swap(v))
            }
            _ => return false,
        };
        debug_assert!(t >= at && t >= self.clock, "fast-path issue in the past");

        // Admitted. The slow path counts the op when it issues; counting
        // at submission instead leaves the totals identical.
        self.stats.count_op(op.name_id());
        self.stats.fastpath_hits += 1;
        self.caches[core].op_state = OpState::Inbox;
        if let Some(waiter) = rmw_waiter {
            self.push(t, Event::FastRmw { core, line, waiter });
            return true;
        }
        // Hit shape: apply the op's effects now (nothing observes this
        // core before `t`) and precompute the result.
        let c = &mut self.caches[core];
        let result = match op {
            OpKind::Read(_) => {
                if in_txn {
                    c.set_flag(line, F_TR, true);
                    c.txn.as_mut().unwrap().read_set.insert(line);
                }
                c.value(line)
            }
            OpKind::Write(_, v) => {
                debug_assert!(in_txn);
                c.txn.as_mut().unwrap().write_set.insert(line);
                c.set_state(line, CState::Modified);
                if !c.flag(line, F_TW) {
                    c.cleans[line as usize] = c.values[line as usize];
                    c.set_flag(line, F_TW, true);
                }
                c.values[line as usize] = v;
                0
            }
            _ => unreachable!("ineligible op admitted to the fast path"),
        };
        self.push(t, Event::FastHit { core, result });
        true
    }

    /// True if any event remains.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Diagnostic for the machine layer's deadlock assertion: names every
    /// core still owing a response when the event queue runs dry, with a
    /// hint for the common misconfiguration (a `wait_tick()` with no
    /// `TickGate` firings left to release it).
    pub fn stuck_report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (c, cache) in self.caches.iter().enumerate() {
            if cache.op_state != OpState::Idle {
                let _ = write!(s, " core {c} is {:?};", cache.op_state);
            }
        }
        if s.contains("TickWait") {
            s.push_str(
                " a TickWait core blocks in wait_tick() until a TickGate component \
                 releases it — configure one with enough firings (period/count)",
            );
        }
        s
    }

    /// Processes the next event; returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, ev)) = self.events.pop(self.clock) else {
            return false;
        };
        debug_assert!(time >= self.clock);
        self.clock = time;
        self.stats.events += 1;
        match ev {
            Event::Deliver { to, msg } => match to {
                Node::Dir => self.dir_handle(msg),
                Node::Core(c) => {
                    self.inflight_to[c] -= 1;
                    self.cache_handle(c, msg);
                }
            },
            Event::IssueOp { core } => {
                let op = self.op_inbox[core].take().expect("no op in inbox");
                debug_assert_eq!(self.caches[core].op_state, OpState::Inbox);
                self.caches[core].op_state = OpState::Current;
                self.begin_op(core, op);
            }
            Event::RmwDone { core, gen } => {
                if self.caches[core].gen == gen {
                    self.rmw_done(core);
                }
            }
            Event::DelayDone { core, gen } => {
                if self.caches[core].gen == gen {
                    debug_assert_eq!(self.caches[core].op_state, OpState::Delaying);
                    self.resume_at(core, self.clock, OpOutcome::Val(0));
                }
            }
            Event::FastHit { core, result } => {
                debug_assert_eq!(self.caches[core].op_state, OpState::Inbox);
                self.caches[core].op_state = OpState::Current;
                // A component interrupt can abort the enclosing
                // transaction while the stand-in event is pending (the
                // admission gate keeps transactional ops off the fast
                // path when that is possible, but deliver the abort
                // rather than a stale value if it ever happens —
                // mirroring `begin_op`).
                if let Some(status) = self.caches[core].pending_abort.take() {
                    self.resume_at(core, self.clock, OpOutcome::Aborted(status));
                } else {
                    let done = self.clock + self.cfg.hit_cycles;
                    self.resume_at(core, done, OpOutcome::Val(result));
                }
            }
            Event::FastRmw { core, line, waiter } => {
                debug_assert_eq!(self.caches[core].op_state, OpState::Inbox);
                // RMW shapes are only admitted outside transactions, and
                // a core blocked on its own op cannot enter one — so no
                // abort can be pending here.
                debug_assert!(
                    self.caches[core].pending_abort.is_none(),
                    "abort pended against a non-transactional fast-path RMW"
                );
                self.caches[core].op_state = OpState::Current;
                // M, or E silently upgraded by the store (MESI-E) —
                // mirrors the owned branch of `op_store`.
                self.caches[core].set_state(line, CState::Modified);
                self.start_rmw(core, line, waiter);
            }
            Event::CompTick { comp } => self.comp_tick(comp as usize),
        }
        if self.cfg.check_invariants {
            if self.check_countdown == 0 {
                self.check_invariants();
                self.check_countdown = 63;
            } else {
                self.check_countdown -= 1;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Component spine
    // ------------------------------------------------------------------

    /// Dispatches one component tick: runs `tick` at the current clock
    /// and reschedules from `next_tick`. The component is moved out of
    /// its slot for the duration of the call (a tombstone stands in) so
    /// it can mutate the simulator through [`CompCtx`].
    fn comp_tick(&mut self, i: usize) {
        self.stats.comp_ticks += 1;
        let mut c = std::mem::replace(
            &mut self.comps[i],
            Box::new(component::Tombstone) as Box<dyn Component>,
        );
        let now = self.clock;
        c.tick(
            now,
            &mut CompCtx {
                sim: self,
                comp: i,
                name: c.name(),
            },
        );
        if let Some(t) = c.next_tick(now) {
            debug_assert!(
                t > now,
                "component {:?} rescheduled its tick into the past or present \
                 (next {t} <= now {now}); ticks must strictly advance",
                c.name()
            );
            self.push(t, Event::CompTick { comp: i as u32 });
        }
        self.comps[i] = c;
    }

    fn trace_comp(&mut self, comp: usize, name: &'static str, what: &'static str, core: usize) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::Comp {
                time: self.clock,
                comp,
                name,
                what,
                core,
            });
        }
    }

    // ------------------------------------------------------------------
    // Thread-operation entry points
    // ------------------------------------------------------------------

    fn begin_op(&mut self, core: usize, op: OpKind) {
        self.stats.count_op(op.name_id());
        // A transaction aborted while the thread was computing locally is
        // reported at its next operation.
        if let Some(status) = self.caches[core].pending_abort.take() {
            self.resume_at(core, self.clock, OpOutcome::Aborted(status));
            return;
        }
        // MSHR merge: a memory operation on a line with an in-flight
        // (headless) request waits for that request rather than issuing a
        // second one.
        if let Some(addr) = op_line(&op) {
            let line = self.lines.intern(addr);
            let cache = &mut self.caches[core];
            if cache.pending_on(line) {
                debug_assert!(
                    cache
                        .pending
                        .iter()
                        .find(|p| p.line == line)
                        .unwrap()
                        .waiter
                        .is_none(),
                    "thread already blocked on this line"
                );
                cache.deferred = Some(op);
                cache.deferred_line = line;
                cache.op_state = OpState::PendingWait;
                return;
            }
        }
        self.begin_op_dispatch(core, op);
    }

    /// Second half of [`begin_op`]: the operation dispatch, also entered
    /// directly when a deferred op is re-issued at request completion.
    fn begin_op_dispatch(&mut self, core: usize, op: OpKind) {
        match op {
            OpKind::Read(addr) => self.op_read(core, addr),
            OpKind::Write(addr, v) => self.op_store(core, addr, Waiter::Write(v)),
            OpKind::Cas(addr, old, new) => self.op_store(core, addr, Waiter::Cas { old, new }),
            OpKind::Faa(addr, v) => self.op_store(core, addr, Waiter::Faa(v)),
            OpKind::Swap(addr, v) => self.op_store(core, addr, Waiter::Swap(v)),
            OpKind::Delay(cycles) => {
                // Apply the configured timing noise (see
                // `MachineConfig::delay_jitter_pct`): real cores never
                // sleep for exactly N cycles, and the spread is what lets
                // one TxCAS winner abort the others mid-delay (§4.1).
                let jitter = if self.cfg.delay_jitter_pct > 0 && cycles > 4 {
                    let span = cycles * self.cfg.delay_jitter_pct / 100;
                    if span > 0 {
                        self.rng.gen_range_inclusive(0, span)
                    } else {
                        0
                    }
                } else {
                    0
                };
                let gen = {
                    let c = &mut self.caches[core];
                    c.gen += 1;
                    c.op_state = OpState::Delaying;
                    c.gen
                };
                self.push(self.clock + cycles + jitter, Event::DelayDone { core, gen });
            }
            OpKind::TxBegin => self.op_txbegin(core),
            OpKind::TxEnd => self.op_txend(core),
            OpKind::TxAbort(code) => {
                assert!(self.caches[core].txn.is_some(), "xabort outside txn");
                self.abort_txn(core, txn::explicit(code));
            }
            OpKind::WaitTick => {
                assert!(
                    !self.caches[core].in_txn(),
                    "wait_tick() inside a transaction: a tick release is an external \
                     resume and cannot be part of a transaction's atomic window"
                );
                let c = &mut self.caches[core];
                if c.ticks_banked > 0 {
                    c.ticks_banked -= 1;
                    self.resume_at(core, self.clock, OpOutcome::Val(0));
                } else {
                    c.op_state = OpState::TickWait;
                }
            }
        }
    }

    fn op_read(&mut self, core: usize, addr: u64) {
        let line = self.lines.intern(addr);
        let in_txn = self.caches[core].in_txn();
        let hit = {
            let cache = &mut self.caches[core];
            if cache.state(line) != CState::Invalid {
                if in_txn {
                    cache.set_flag(line, F_TR, true);
                }
                Some(cache.value(line))
            } else {
                None
            }
        };
        if in_txn {
            self.caches[core]
                .txn
                .as_mut()
                .unwrap()
                .read_set
                .insert(line);
            if self.txn_over_capacity(core) {
                self.abort_txn(core, txn::CAPACITY);
                return;
            }
        }
        if let Some(v) = hit {
            let done = self.clock + self.cfg.hit_cycles;
            self.resume_at(core, done, OpOutcome::Val(v));
            return;
        }
        let cache = &mut self.caches[core];
        debug_assert!(!cache.pending_on(line), "duplicate request for line");
        cache.pending.push(PendingReq {
            line,
            is_getm: false,
            have_data: false,
            value: 0,
            acks_expected: None,
            acks_got: 0,
            got_excl: false,
            waiter: Some(Waiter::Read),
        });
        cache.op_state = OpState::PendingWait;
        self.send(
            Node::Core(core),
            Node::Dir,
            Msg::GetS {
                line: addr,
                from: core,
            },
        );
    }

    /// All write-permission operations: plain store, CAS/FAA/SWAP, and
    /// transactional writes.
    fn op_store(&mut self, core: usize, addr: u64, waiter: Waiter) {
        let line = self.lines.intern(addr);
        let in_txn = self.caches[core].in_txn();
        if in_txn {
            // Inside a transaction the only permitted store is the
            // transactional plain write; the paper's algorithms never RMW
            // inside a transaction.
            let v = match waiter {
                Waiter::Write(v) => v,
                _ => panic!("atomic RMW inside a transaction is not supported"),
            };
            self.caches[core]
                .txn
                .as_mut()
                .unwrap()
                .write_set
                .insert(line);
            if self.txn_over_capacity(core) {
                self.abort_txn(core, txn::CAPACITY);
                return;
            }
            if self.caches[core].state(line).writable() {
                // Ownership already held (M, or E with a silent upgrade):
                // buffer the write transactionally.
                let cache = &mut self.caches[core];
                cache.set_state(line, CState::Modified);
                if !cache.flag(line, F_TW) {
                    cache.cleans[line as usize] = cache.values[line as usize];
                    cache.set_flag(line, F_TW, true);
                }
                cache.values[line as usize] = v;
                let done = self.clock + self.cfg.hit_cycles;
                self.resume_at(core, done, OpOutcome::Val(0));
                return;
            }
            let cache = &mut self.caches[core];
            debug_assert!(!cache.pending_on(line), "duplicate request for line");
            cache.pending.push(PendingReq {
                line,
                is_getm: true,
                have_data: false,
                value: 0,
                acks_expected: None,
                acks_got: 0,
                got_excl: false,
                waiter: Some(Waiter::TxWrite(v)),
            });
            cache.op_state = OpState::PendingWait;
            self.send(
                Node::Core(core),
                Node::Dir,
                Msg::GetM {
                    line: addr,
                    from: core,
                },
            );
            return;
        }

        if self.caches[core].state(line).writable() {
            // M, or E silently upgraded by the store (MESI-E).
            self.caches[core].set_state(line, CState::Modified);
            self.start_rmw(core, line, waiter);
            return;
        }
        let cache = &mut self.caches[core];
        debug_assert!(!cache.pending_on(line), "duplicate request for line");
        cache.pending.push(PendingReq {
            line,
            is_getm: true,
            have_data: false,
            value: 0,
            acks_expected: None,
            acks_got: 0,
            got_excl: false,
            waiter: Some(waiter),
        });
        cache.op_state = OpState::PendingWait;
        self.send(
            Node::Core(core),
            Node::Dir,
            Msg::GetM {
                line: addr,
                from: core,
            },
        );
    }

    /// Begins executing an RMW/store on an owned line; incoming Fwd
    /// requests stall until `rmw_done` (§3.2: the core defers coherence
    /// messages that would revoke ownership until the RMW completes).
    fn start_rmw(&mut self, core: usize, line: LineId, waiter: Waiter) {
        let cost = match waiter {
            Waiter::Write(_) => self.cfg.hit_cycles,
            _ => self.cfg.rmw_cycles,
        };
        let cache = &mut self.caches[core];
        debug_assert!(cache.state(line).writable());
        cache.rmw_busy = true;
        cache.rmw_line = line;
        cache.gen += 1;
        let gen = cache.gen;
        let value = cache.value(line);
        debug_assert!(
            !cache.pending_on(line),
            "RMW on a line with an in-flight request"
        );
        cache.pending.push(PendingReq {
            line,
            is_getm: true,
            have_data: true,
            value,
            acks_expected: Some(0),
            acks_got: 0,
            got_excl: false,
            waiter: Some(waiter),
        });
        cache.op_state = OpState::RmwExec;
        self.push(self.clock + cost, Event::RmwDone { core, gen });
    }

    /// The RMW execution window ended: apply the operation, resume the
    /// thread, and serve stalled requests.
    fn rmw_done(&mut self, core: usize) {
        let result = {
            let cache = &mut self.caches[core];
            cache.rmw_busy = false;
            let line = cache.rmw_line;
            let p = cache
                .pending_remove(line)
                .expect("rmw_done without pending");
            debug_assert_eq!(p.line, line);
            let cur = cache.value(line);
            let (result, newval) = match p.waiter.expect("rmw_done without waiter") {
                Waiter::Read => (cur, cur),
                Waiter::Write(v) => (0, v),
                Waiter::Cas { old, new } => {
                    if cur == old {
                        (1, new)
                    } else {
                        (0, cur)
                    }
                }
                Waiter::Faa(v) => (cur, cur.wrapping_add(v)),
                Waiter::Swap(v) => (cur, v),
                Waiter::TxWrite(_) => unreachable!("tx writes do not use rmw_done"),
            };
            cache.ensure(line);
            cache.values[line as usize] = newval;
            result
        };
        self.resume_at(core, self.clock, OpOutcome::Val(result));
        self.drain_stalled(core);
    }

    /// True if `core`'s running transaction has outgrown the modelled
    /// transactional capacity (`tx_capacity_lines` distinct read-set plus
    /// write-set entries; 0 = unbounded).
    fn txn_over_capacity(&self, core: usize) -> bool {
        let limit = self.cfg.tx_capacity_lines;
        if limit == 0 {
            return false;
        }
        self.caches[core]
            .txn
            .as_ref()
            .is_some_and(|t| t.read_set.len() + t.write_set.len() > limit)
    }

    fn op_txbegin(&mut self, core: usize) {
        let cache = &mut self.caches[core];
        match &mut cache.txn {
            None => {
                // Reuse the previous transaction's (cleared) set storage.
                let mut t = cache.txn_spare.take().unwrap_or_default();
                t.depth = 1;
                cache.txn = Some(t);
            }
            Some(t) => t.depth += 1, // flat nesting
        }
        let depth = cache.txn.as_ref().unwrap().depth;
        self.trace_tx(core, "xbegin", depth as u64);
        let done = self.clock + self.cfg.xbegin_cycles;
        self.resume_at(core, done, OpOutcome::Val(0));
    }

    fn op_txend(&mut self, core: usize) {
        let cache = &mut self.caches[core];
        let t = cache.txn.as_mut().expect("xend outside txn");
        if t.depth > 1 {
            // Closing a nested transaction commits nothing by itself.
            t.depth -= 1;
            let done = self.clock + self.cfg.xend_cycles;
            self.resume_at(core, done, OpOutcome::Val(0));
            return;
        }
        // A transactional write blocks until ownership, so the thread has
        // no request pending here (headless orphans may).
        debug_assert!(
            cache.thread_pending_line().is_none(),
            "xend with a thread-owned pending request"
        );
        self.commit_txn(core);
    }

    fn commit_txn(&mut self, core: usize) {
        if self.cfg.spurious_abort_prob > 0.0 && self.rng.gen_bool(self.cfg.spurious_abort_prob) {
            self.stats.tx_aborts_spurious += 1;
            self.abort_txn(core, txn::SPURIOUS);
            return;
        }
        let cache = &mut self.caches[core];
        let mut t = cache.txn.take().expect("commit without txn");
        for &line in t.read_set.iter().chain(t.write_set.iter()) {
            if (line as usize) < cache.flags.len() {
                cache.flags[line as usize] &= !(F_TR | F_TW);
            }
        }
        t.read_set.clear();
        t.write_set.clear();
        cache.txn_spare = Some(t);
        self.stats.tx_commits += 1;
        self.trace_tx(core, "commit", 0);
        let done = self.clock + self.cfg.xend_cycles;
        self.resume_at(core, done, OpOutcome::Val(1));
        self.drain_stalled(core);
    }

    /// Aborts `core`'s running transaction with the given status bits
    /// (RETRY/NESTED are added here).
    fn abort_txn(&mut self, core: usize, status: u32) {
        self.abort_txn_at(core, status, 0);
    }

    /// [`abort_txn`] with `extra` cycles added to the victim's resume
    /// time — the interrupt path uses it to charge the handler cost
    /// before the abort is delivered. An abort pended against an inbox
    /// op is reported at issue as usual (the handler overlaps the time
    /// the op was queued anyway).
    fn abort_txn_at(&mut self, core: usize, status: u32, extra: u64) {
        let Some(mut t) = self.caches[core].txn.take() else {
            return;
        };
        let mut status = status | txn::RETRY;
        if t.depth >= 2 {
            status |= txn::NESTED;
        }
        {
            let cache = &mut self.caches[core];
            // Roll back transactional writes applied to owned lines.
            for &line in t.write_set.iter() {
                let i = line as usize;
                if i < cache.flags.len() && cache.flags[i] & F_TW != 0 {
                    cache.values[i] = cache.cleans[i];
                    cache.flags[i] &= !F_TW;
                }
            }
            for &line in t.read_set.iter() {
                let i = line as usize;
                if i < cache.flags.len() {
                    cache.flags[i] &= !F_TR;
                }
            }
            t.read_set.clear();
            t.write_set.clear();
            cache.txn_spare = Some(t);
        }
        if txn::is_explicit(status) {
            self.stats.tx_aborts_explicit += 1;
        } else if txn::is_conflict(status) {
            self.stats.tx_aborts_conflict += 1;
        } else if txn::is_capacity(status) {
            self.stats.tx_aborts_capacity += 1;
        }
        self.trace_tx(core, "abort", status as u64);

        // Restore the thread at the checkpoint: exactly one response is
        // owed whenever op_state != Idle.
        let resume = self.clock + extra;
        let cache = &mut self.caches[core];
        match cache.op_state {
            OpState::Current => {
                // The abort was triggered from within the thread's own op
                // (xabort, or spurious at xend).
                self.resume_at(core, resume, OpOutcome::Aborted(status));
            }
            OpState::Delaying => {
                cache.gen += 1; // cancel the DelayDone wake-up
                self.resume_at(core, resume, OpOutcome::Aborted(status));
            }
            OpState::PendingWait => {
                // Cancel the waiter (or the deferred op); any in-flight
                // request continues headless.
                if cache.deferred.take().is_none() {
                    let p = cache
                        .pending
                        .iter_mut()
                        .find(|p| p.waiter.is_some())
                        .expect("PendingWait without pending or deferred");
                    p.waiter = None;
                }
                self.resume_at(core, resume, OpOutcome::Aborted(status));
            }
            OpState::Inbox => {
                // Report when the op issues.
                cache.pending_abort = Some(status);
            }
            OpState::RmwExec => unreachable!("RMW inside transaction"),
            OpState::TickWait => {
                unreachable!("wait_tick() inside a transaction (rejected at dispatch)")
            }
            OpState::Idle => unreachable!("abort with no outstanding thread op"),
        }
        self.drain_stalled(core);
    }

    // ------------------------------------------------------------------
    // Directory
    // ------------------------------------------------------------------

    fn dir_handle(&mut self, msg: Msg) {
        let from = match msg {
            Msg::GetS { from, .. } | Msg::GetM { from, .. } | Msg::WbData { from, .. } => from,
            other => panic!("directory cannot handle {other:?}"),
        };
        // Directory occupancy: each home socket's slice retires at most
        // one request per `dir_occupancy` cycles; simultaneous arrivals
        // are naturally staggered, exactly like a real LLC slice. Under
        // the fixed policy every line shares the `home_socket` slice.
        if self.cfg.dir_occupancy > 0 {
            let home = self.home_socket_of(msg.line(), from);
            if self.clock < self.dir_free_at[home] {
                let at = self.dir_free_at[home];
                self.push(at, Event::Deliver { to: Node::Dir, msg });
                return;
            }
            self.dir_free_at[home] = self.clock + self.cfg.dir_occupancy;
        }
        let line = self.lines.intern(msg.line());
        let e = self.dir.entry(line);
        // Queue behind a transient state (except the writeback that
        // resolves it).
        if matches!(e.state, DirState::AwaitWb(_)) && !matches!(msg, Msg::WbData { .. }) {
            e.queued.push_back((from, msg));
            return;
        }
        self.dir_dispatch(from, line, msg);
    }

    fn dir_dispatch(&mut self, from: usize, line: LineId, msg: Msg) {
        let addr = msg.line();
        match msg {
            Msg::GetS { .. } => {
                let e = self.dir.entry(line);
                // Move the state out instead of cloning it; every arm
                // writes the successor state back.
                match std::mem::replace(&mut e.state, DirState::Invalid) {
                    DirState::Invalid => {
                        let v = e.mem;
                        if self.cfg.mesi_exclusive {
                            // Sole reader: grant Exclusive (MESI-E).
                            e.state = DirState::Exclusive(from);
                            self.send(
                                Node::Dir,
                                Node::Core(from),
                                Msg::Data {
                                    line: addr,
                                    value: v,
                                    acks: 0,
                                    excl: true,
                                },
                            );
                        } else {
                            e.state = DirState::Shared(SharerSet::one(from));
                            self.send(
                                Node::Dir,
                                Node::Core(from),
                                Msg::Data {
                                    line: addr,
                                    value: v,
                                    acks: 0,
                                    excl: false,
                                },
                            );
                        }
                    }
                    DirState::Shared(mut s) => {
                        let v = e.mem;
                        s.insert(from);
                        e.state = DirState::Shared(s);
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line: addr,
                                value: v,
                                acks: 0,
                                excl: false,
                            },
                        );
                    }
                    DirState::Exclusive(owner) | DirState::Modified(owner) => {
                        assert_ne!(owner, from, "owner re-requesting GetS");
                        e.state = DirState::AwaitWb(SharerSet::two(owner, from));
                        self.send(
                            Node::Dir,
                            Node::Core(owner),
                            Msg::FwdGetS {
                                line: addr,
                                requester: from,
                            },
                        );
                    }
                    DirState::AwaitWb(_) => unreachable!("queued in dir_handle"),
                }
            }
            Msg::GetM { .. } => {
                let e = self.dir.entry(line);
                match std::mem::replace(&mut e.state, DirState::Invalid) {
                    DirState::Invalid => {
                        let v = e.mem;
                        e.state = DirState::Modified(from);
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line: addr,
                                value: v,
                                acks: 0,
                                excl: false,
                            },
                        );
                    }
                    DirState::Shared(s) => {
                        let v = e.mem;
                        e.state = DirState::Modified(from);
                        let acks = s.iter().filter(|&&c| c != from).count() as u64;
                        // The data response and all invalidations leave
                        // back-to-back: the concurrency that makes HTM CAS
                        // failures scale (§3.3). `s` is owned here (moved
                        // out of the entry), so the fan-out iterates it
                        // directly — no per-call `others` Vec.
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line: addr,
                                value: v,
                                acks,
                                excl: false,
                            },
                        );
                        for &c in s.iter() {
                            if c != from {
                                self.send(
                                    Node::Dir,
                                    Node::Core(c),
                                    Msg::Inv {
                                        line: addr,
                                        requester: from,
                                    },
                                );
                            }
                        }
                    }
                    DirState::Exclusive(owner) | DirState::Modified(owner) => {
                        assert_ne!(owner, from, "owner re-requesting GetM");
                        e.state = DirState::Modified(from);
                        self.send(
                            Node::Dir,
                            Node::Core(owner),
                            Msg::FwdGetM {
                                line: addr,
                                requester: from,
                            },
                        );
                    }
                    DirState::AwaitWb(_) => unreachable!("queued in dir_handle"),
                }
            }
            Msg::WbData { value, .. } => {
                let e = self.dir.entry(line);
                let DirState::AwaitWb(sharers) = std::mem::replace(&mut e.state, DirState::Invalid)
                else {
                    panic!("unexpected WbData");
                };
                e.mem = value;
                e.state = DirState::Shared(sharers);
                // Replay requests that queued behind the writeback. Swap
                // the bucket into a reusable scratch deque; the replayed
                // messages are GetS/GetM only (WbData is never queued), so
                // a replay can re-queue behind a fresh AwaitWb but never
                // re-enter this arm while the scratch is in use.
                debug_assert!(self.wb_scratch.is_empty());
                std::mem::swap(&mut self.wb_scratch, &mut e.queued);
                while let Some((_, m)) = self.wb_scratch.pop_front() {
                    self.dir_handle(m);
                }
            }
            other => panic!("directory cannot handle {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Cache message handling
    // ------------------------------------------------------------------

    fn cache_handle(&mut self, core: usize, msg: Msg) {
        // Controller occupancy for *serving requests*: a cache retires at
        // most one incoming Fwd/Inv per `cache_occupancy` cycles. Response
        // messages (Data/InvAck) are pipelined and bypass the limit.
        if self.cfg.cache_occupancy > 0
            && matches!(
                msg,
                Msg::Inv { .. } | Msg::FwdGetS { .. } | Msg::FwdGetM { .. }
            )
        {
            let free_at = self.cache_free_at[core];
            if self.clock < free_at {
                self.push(
                    free_at,
                    Event::Deliver {
                        to: Node::Core(core),
                        msg,
                    },
                );
                return;
            }
            self.cache_free_at[core] = self.clock + self.cfg.cache_occupancy;
        }
        let line = self.lines.intern(msg.line());
        match msg {
            Msg::Data {
                value, acks, excl, ..
            } => self.on_data(core, line, value, acks, excl),
            Msg::DataOwner { value, .. } => self.on_data(core, line, value, 0, false),
            Msg::InvAck { .. } => {
                let p = self.caches[core]
                    .pending_get_mut(line)
                    .expect("stray InvAck");
                p.acks_got += 1;
                self.try_complete_pending(core, line);
            }
            Msg::Inv { requester, .. } => self.on_inv(core, line, msg.line(), requester),
            Msg::FwdGetS { requester, .. } => self.on_fwd_gets(core, line, requester),
            Msg::FwdGetM { requester, .. } => self.on_fwd_getm(core, line, requester),
            other => panic!("cache cannot handle {other:?}"),
        }
    }

    fn on_data(&mut self, core: usize, line: LineId, value: u64, acks: u64, excl: bool) {
        let p = self.caches[core].pending_get_mut(line).expect("stray Data");
        p.have_data = true;
        p.value = value;
        p.got_excl = excl;
        // DataOwner carries no ack expectation; Data from the directory
        // does. Both paths may deliver acks before data, so only overwrite
        // if unset (the directory message is authoritative).
        if p.acks_expected.is_none() {
            p.acks_expected = Some(acks);
        }
        self.try_complete_pending(core, line);
    }

    fn try_complete_pending(&mut self, core: usize, line: LineId) {
        let done = {
            let cache = &self.caches[core];
            match cache.pending.iter().find(|p| p.line == line) {
                Some(p) => p.have_data && p.acks_expected.is_some_and(|a| p.acks_got >= a),
                None => false,
            }
        };
        if !done {
            return;
        }
        let p = self.caches[core].pending_remove(line).unwrap();
        {
            let cache = &mut self.caches[core];
            cache.ensure(line);
            let s = if p.is_getm {
                CState::Modified
            } else if p.got_excl {
                CState::Exclusive
            } else {
                CState::Shared
            };
            cache.flags[line as usize] = s as u8; // also clears tr/tw
            cache.values[line as usize] = p.value;
        }

        match p.waiter {
            None => {
                // Headless: the transaction that issued this GetM aborted
                // (§3.3: pending GetM requests of failed TxCASs are handled
                // asynchronously by the cache controller). Take ownership
                // with the received data and serve whoever stalled; if the
                // thread meanwhile issued an op for this very line (MSHR
                // merge), re-dispatch it now.
                self.drain_stalled(core);
                let cache = &mut self.caches[core];
                if cache.deferred.is_some() && cache.deferred_line == line {
                    let op = cache.deferred.take().unwrap();
                    cache.op_state = OpState::Current;
                    self.begin_op_dispatch(core, op);
                }
            }
            Some(Waiter::Read) => {
                if self.caches[core].in_txn() {
                    self.caches[core].set_flag(line, F_TR, true);
                }
                self.resume_at(core, self.clock, OpOutcome::Val(p.value));
                self.drain_stalled(core);
            }
            Some(Waiter::TxWrite(v)) => {
                // Ownership acquired for a transactional write. Apply the
                // buffered store; requester-wins conflicts that arrived
                // during the wait already aborted us (waiter would be
                // None). Stalled Fwd requests stay stalled until
                // commit/abort — see the commit-atomicity note above.
                debug_assert!(self.caches[core].in_txn());
                let cache = &mut self.caches[core];
                cache.cleans[line as usize] = cache.values[line as usize];
                cache.values[line as usize] = v;
                cache.set_flag(line, F_TW, true);
                self.resume_at(core, self.clock, OpOutcome::Val(0));
            }
            Some(w) => {
                // A non-transactional RMW/store: execute it now (the §3.2
                // read-modify-write window).
                let cost = match w {
                    Waiter::Write(_) => self.cfg.hit_cycles,
                    _ => self.cfg.rmw_cycles,
                };
                let cache = &mut self.caches[core];
                cache.pending.push(PendingReq {
                    waiter: Some(w),
                    ..p
                });
                cache.rmw_busy = true;
                cache.rmw_line = line;
                cache.gen += 1;
                let gen = cache.gen;
                cache.op_state = OpState::RmwExec;
                self.push(self.clock + cost, Event::RmwDone { core, gen });
            }
        }
    }

    fn on_inv(&mut self, core: usize, line: LineId, addr: u64, requester: usize) {
        // Invalidations are never stalled (that would deadlock the
        // requester counting acks). This is exactly why HTM failures are
        // concurrent: every read-phase sharer processes its Inv — and
        // aborts — in parallel (§3.3, Figure 2b).
        let conflict = {
            let cache = &mut self.caches[core];
            let conflict = cache.txn_reads(line) || cache.txn_writes(line);
            if (line as usize) < cache.flags.len() {
                cache.set_state(line, CState::Invalid);
            }
            conflict
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::InvAck { line: addr },
        );
        if conflict {
            self.abort_txn(core, txn::CONFLICT);
        }
    }

    fn on_fwd_gets(&mut self, core: usize, line: LineId, requester: usize) {
        let (pending_here, txn_wrote, owns) = {
            let cache = &self.caches[core];
            (
                cache.pending_on(line),
                cache.txn_writes(line),
                cache.state(line).writable(),
            )
        };
        let addr = self.lines.addrs[line as usize];

        if txn_wrote && pending_here {
            // The remote read hit the window in which our transactional
            // write waits for its GetM to complete: the tripped writer
            // (§3.4, Figure 3).
            if self.cfg.microarch_fix {
                // §3.4.1: the core is effectively blocked at _xend with a
                // single pending GetM; stall the read until commit.
                self.stats.fix_stalls += 1;
                self.stats.stalls += 1;
                self.caches[core].stall(
                    line,
                    Msg::FwdGetS {
                        line: addr,
                        requester,
                    },
                );
                return;
            }
            self.stats.tripped_writers += 1;
            self.abort_txn(core, txn::CONFLICT);
            // We still become owner when the GetM completes (headless);
            // serve the read then.
            self.stats.stalls += 1;
            self.caches[core].stall(
                line,
                Msg::FwdGetS {
                    line: addr,
                    requester,
                },
            );
            return;
        }
        if txn_wrote && owns {
            // Commit window (ownership held, xend imminent): stall — see
            // the commit-atomicity note in the module docs.
            self.stats.stalls += 1;
            self.caches[core].stall(
                line,
                Msg::FwdGetS {
                    line: addr,
                    requester,
                },
            );
            return;
        }
        if pending_here || self.caches[core].rmw_busy {
            self.stats.stalls += 1;
            self.caches[core].stall(
                line,
                Msg::FwdGetS {
                    line: addr,
                    requester,
                },
            );
            return;
        }
        // A remote read of a line we own but only transactionally *read*
        // (or do not have in any transaction) is not a conflict.
        self.serve_fwd_gets(core, line, requester);
    }

    fn serve_fwd_gets(&mut self, core: usize, line: LineId, requester: usize) {
        let addr = self.lines.addrs[line as usize];
        let v = {
            let cache = &mut self.caches[core];
            assert!(cache.state(line).writable(), "Fwd-GetS to non-owner");
            debug_assert!(
                !cache.flag(line, F_TW),
                "serving a transactionally written line"
            );
            cache.set_state(line, CState::Shared);
            cache.value(line)
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::DataOwner {
                line: addr,
                value: v,
            },
        );
        self.send(
            Node::Core(core),
            Node::Dir,
            Msg::WbData {
                line: addr,
                value: v,
                from: core,
            },
        );
    }

    fn on_fwd_getm(&mut self, core: usize, line: LineId, requester: usize) {
        let (pending_here, txn_wrote, txn_read) = {
            let cache = &self.caches[core];
            (
                cache.pending_on(line),
                cache.txn_writes(line),
                cache.txn_reads(line),
            )
        };
        if pending_here || self.caches[core].rmw_busy || txn_wrote {
            // Stall until our own request / RMW window / commit completes
            // (Figure 2a's C2; for transactions this preserves the §3.3
            // winner, whose commit is atomic with GetM completion).
            let addr = self.lines.addrs[line as usize];
            self.stats.stalls += 1;
            self.caches[core].stall(
                line,
                Msg::FwdGetM {
                    line: addr,
                    requester,
                },
            );
            return;
        }
        if txn_read {
            // We own a line the running transaction read; the remote
            // writer wins.
            self.abort_txn(core, txn::CONFLICT);
        }
        self.serve_fwd_getm(core, line, requester);
    }

    fn serve_fwd_getm(&mut self, core: usize, line: LineId, requester: usize) {
        let addr = self.lines.addrs[line as usize];
        let v = {
            let cache = &mut self.caches[core];
            assert!(cache.state(line).writable(), "Fwd-GetM to non-owner");
            debug_assert!(
                !cache.flag(line, F_TW),
                "handing off a transactionally written line"
            );
            cache.set_state(line, CState::Invalid);
            cache.value(line)
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::DataOwner {
                line: addr,
                value: v,
            },
        );
    }

    /// Re-examines stalled messages after a condition that stalled them
    /// (per-line pending request, RMW window, transactional write) clears.
    /// Unblocked messages are re-delivered through the regular handlers —
    /// so every conflict/stall condition is re-evaluated from scratch —
    /// at the current simulated time.
    fn drain_stalled(&mut self, core: usize) {
        if self.caches[core].rmw_busy || self.caches[core].stalled.is_empty() {
            return; // the atomic window blocks the whole cache
        }
        // The stalled vector is append-ordered, so a stable partition
        // releases unblocked messages in arrival-stamp order — exactly
        // the order the old whole-queue scan produced.
        let mut freed = std::mem::take(&mut self.stall_scratch);
        debug_assert!(freed.is_empty());
        {
            let cache = &mut self.caches[core];
            let pending = &cache.pending;
            let txn = &cache.txn;
            cache.stalled.retain(|&(stamp, line, msg)| {
                let blocked = pending.iter().any(|p| p.line == line)
                    || txn.as_ref().is_some_and(|t| t.write_set.contains(line));
                if blocked {
                    true
                } else {
                    freed.push((stamp, line, msg));
                    false
                }
            });
        }
        for &(_, _, msg) in &freed {
            self.push(
                self.clock,
                Event::Deliver {
                    to: Node::Core(core),
                    msg,
                },
            );
        }
        freed.clear();
        self.stall_scratch = freed;
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Single-writer/multi-reader: at most one cache in M per line.
    fn check_invariants(&self) {
        let mut owners: Vec<Option<usize>> = vec![None; self.lines.len()];
        for (i, c) in self.caches.iter().enumerate() {
            for (line, &f) in c.flags.iter().enumerate() {
                if decode_state(f).writable() {
                    if let Some(prev) = owners[line].replace(i) {
                        let addr = self.lines.addrs[line];
                        panic!("line {addr:#x}: two M/E holders: C{prev} and C{i}");
                    }
                }
            }
        }
    }
}

/// Test-only access to private engine structures, so the integration
/// property suite in `tests/` can exercise them directly. Not part of the
/// public API.
#[doc(hidden)]
pub mod testhooks {
    use super::{Event, EventQ};

    /// A handle over the calendar-wheel event queue that pushes and pops
    /// opaque `(time, payload)` pairs, mirroring exactly how the engine
    /// drives it (monotone clock, engine-allocated `seq` tiebreaker).
    pub struct WheelProbe {
        q: EventQ,
        clock: u64,
        seq: u64,
    }

    impl Default for WheelProbe {
        fn default() -> Self {
            Self::new()
        }
    }

    impl WheelProbe {
        pub fn new() -> Self {
            WheelProbe {
                q: EventQ::new(),
                clock: 0,
                seq: 0,
            }
        }

        pub fn len(&self) -> usize {
            self.q.len
        }

        pub fn is_empty(&self) -> bool {
            self.q.is_empty()
        }

        /// Current clock (time of the last popped event).
        pub fn clock(&self) -> u64 {
            self.clock
        }

        /// Time of the earliest queued event, if any.
        pub fn peek_time(&self) -> Option<u64> {
            self.q.next_time(self.clock)
        }

        /// Schedules `payload` at `time` (must be `>= clock()`).
        pub fn push(&mut self, time: u64, payload: u64) {
            assert!(time >= self.clock, "event scheduled in the past");
            self.seq += 1;
            self.q.push(
                self.clock,
                time,
                self.seq,
                Event::IssueOp {
                    core: payload as usize,
                },
            );
        }

        /// Schedules `payload` at `time` WITHOUT the probe's past-time
        /// guard, so tests can confirm the raw queue's own debug
        /// assertion catches past-scheduling misuse with a clear message.
        pub fn push_unguarded(&mut self, time: u64, payload: u64) {
            self.seq += 1;
            self.q.push(
                self.clock,
                time,
                self.seq,
                Event::IssueOp {
                    core: payload as usize,
                },
            );
        }

        /// Pops the earliest event, advancing the clock to its time.
        pub fn pop(&mut self) -> Option<(u64, u64)> {
            let (time, ev) = self.q.pop(self.clock)?;
            self.clock = time;
            let Event::IssueOp { core } = ev else {
                unreachable!("probe only pushes IssueOp events");
            };
            Some((time, core as u64))
        }
    }
}

/// The target line of a memory operation, if it has one.
fn op_line(op: &OpKind) -> Option<u64> {
    match *op {
        OpKind::Read(line)
        | OpKind::Write(line, _)
        | OpKind::Cas(line, _, _)
        | OpKind::Faa(line, _)
        | OpKind::Swap(line, _) => Some(line),
        OpKind::Delay(_)
        | OpKind::TxBegin
        | OpKind::TxEnd
        | OpKind::TxAbort(_)
        | OpKind::WaitTick => None,
    }
}
