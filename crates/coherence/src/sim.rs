//! The protocol engine: directory, private caches, HTM conflict handling,
//! and the discrete-event core.
//!
//! Everything here runs on the scheduler thread; application threads only
//! see [`crate::machine::SimCtx`]. The engine models the dynamics the paper
//! analyzes in §3:
//!
//! * contended atomic RMWs serialize through an owner-to-owner Fwd-GetM
//!   handoff chain, giving the ≈(C+1)/2-message-delay average latency of
//!   §3.2;
//! * HTM transactions mark lines transactional and abort on receipt of a
//!   conflicting coherence message (requester-wins), so the back-to-back
//!   invalidations of a single winning GetM abort all read-phase
//!   transactions *concurrently* (§3.3);
//! * a Fwd-GetS that reaches a core whose transactional write is still
//!   waiting for invalidation acks aborts it — the tripped writer (§3.4) —
//!   unless the §3.4.1 microarchitectural fix is enabled, in which case the
//!   request is stalled until the commit.
//!
//! ### Commit atomicity
//!
//! On real hardware the transactional store retires into the store buffer
//! immediately and `_xend` blocks until the GetM completes, so the commit
//! is atomic with request completion (§3.4.1). In this engine the *write*
//! operation blocks the thread until ownership instead, which opens a
//! few-cycle simulated window between write completion and the `xend`
//! request. To keep the paper's "the first GetM winner commits" behaviour
//! exact, Fwd requests arriving for a transactionally written line whose
//! ownership is already held are stalled until commit/abort rather than
//! aborting the transaction; the true tripped-writer abort is the Fwd-GetS
//! that arrives while the GetM is still pending.

use crate::config::MachineConfig;
use crate::fxhash::FxHashMap;
use crate::msg::{Msg, Node};
use crate::stats::{Stats, TraceEvent};
use crate::txn::{self};
use simrng::SimRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// A small set of line addresses (transaction read/write sets). The
/// paper's transactions touch a handful of lines, so a linear-scan vector
/// beats any tree or table — and unlike a hash set it allocates nothing
/// after the first few inserts and iterates in deterministic (insertion)
/// order.
#[derive(Debug, Default)]
struct LineSet {
    lines: Vec<u64>,
}

impl LineSet {
    #[inline]
    fn contains(&self, line: u64) -> bool {
        self.lines.contains(&line)
    }

    #[inline]
    fn insert(&mut self, line: u64) {
        if !self.lines.contains(&line) {
            self.lines.push(line);
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.lines.len()
    }

    fn iter(&self) -> impl Iterator<Item = &u64> {
        self.lines.iter()
    }

    fn clear(&mut self) {
        self.lines.clear();
    }
}

/// A sorted set of core indices (directory sharer lists). Kept sorted so
/// invalidations fan out in ascending core order — the same order the
/// previous `BTreeSet` representation produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SharerSet {
    cores: Vec<usize>,
}

impl SharerSet {
    fn one(core: usize) -> Self {
        SharerSet { cores: vec![core] }
    }

    fn two(a: usize, b: usize) -> Self {
        let mut cores = if a < b { vec![a, b] } else { vec![b, a] };
        cores.dedup();
        SharerSet { cores }
    }

    fn insert(&mut self, core: usize) {
        if let Err(pos) = self.cores.binary_search(&core) {
            self.cores.insert(pos, core);
        }
    }

    fn iter(&self) -> impl Iterator<Item = &usize> {
        self.cores.iter()
    }
}

/// Stable state of a line in a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CState {
    Invalid,
    Shared,
    /// MESI Exclusive: sole clean copy; silent upgrade to Modified on
    /// write (only granted when `MachineConfig::mesi_exclusive` is set).
    Exclusive,
    Modified,
}

impl CState {
    /// Can the holder write without a coherence transaction?
    fn writable(self) -> bool {
        matches!(self, CState::Exclusive | CState::Modified)
    }
}

/// A line resident in a private cache. Capacity is not modelled: the
/// working sets of the paper's benchmarks (a few contended words per
/// operation) never approach L1 capacity, and HTM capacity aborts are
/// represented by the configurable spurious-abort rate instead.
#[derive(Debug, Clone)]
struct CacheLine {
    state: CState,
    value: u64,
    /// Line is in the running transaction's read set.
    tr: bool,
    /// Line is in the running transaction's write set with the write
    /// applied (value holds the transactional, uncommitted datum).
    tw: bool,
    /// Pre-transaction value to restore if the transaction aborts after
    /// the write was applied.
    clean: u64,
}

/// What the blocked thread wants done when its coherence request completes.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    Read,
    Write(u64),
    Cas {
        old: u64,
        new: u64,
    },
    Faa(u64),
    Swap(u64),
    /// A transactional write: applied only if the transaction is still
    /// live when ownership arrives.
    TxWrite(u64),
}

/// An outstanding coherence request. A core has at most one request its
/// thread is *blocked on*, plus any number of *headless* requests left
/// behind by aborted transactions (§3.3: the cache still takes ownership,
/// asynchronously, while the core moves on).
#[derive(Debug)]
struct PendingReq {
    line: u64,
    is_getm: bool,
    have_data: bool,
    value: u64,
    acks_expected: Option<u64>,
    acks_got: u64,
    /// The directory granted Exclusive on this (GetS) response.
    got_excl: bool,
    /// `None` once the issuing transaction aborted: the request finishes
    /// headless (the cache still takes ownership — §3.3's pending-GetM
    /// effect — but no thread is resumed).
    waiter: Option<Waiter>,
}

/// Running-transaction bookkeeping.
#[derive(Debug, Default)]
struct Txn {
    depth: u32,
    read_set: LineSet,
    write_set: LineSet,
}

/// Where a core's thread currently is, from the engine's point of view.
/// Exactly one response is owed to the thread whenever the state is not
/// `Idle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    /// No outstanding operation (finished, or response already queued).
    Idle,
    /// The thread submitted an op whose `IssueOp` event has not fired yet.
    Inbox,
    /// `begin_op` is on the stack for this core.
    Current,
    /// Blocked in a `delay()`.
    Delaying,
    /// Blocked on the pending coherence request.
    PendingWait,
    /// An RMW is executing (`RmwDone` scheduled).
    RmwExec,
}

/// One core's private cache controller plus HTM state.
#[derive(Debug)]
struct Cache {
    lines: FxHashMap<u64, CacheLine>,
    /// Outstanding coherence requests, keyed by line: at most one the
    /// thread waits on (waiter set / deferred op), plus headless ones.
    pending: FxHashMap<u64, PendingReq>,
    /// A thread operation deferred because a (headless) request for its
    /// line is already in flight; re-dispatched at that request's
    /// completion (the MSHR-merge a real core performs).
    deferred: Option<OpKind>,
    deferred_line: u64,
    /// Coherence requests stalled behind a pending request / executing RMW
    /// / committing transaction, indexed by line so release checks are one
    /// lookup instead of a whole-queue scan. Each message carries its
    /// arrival stamp; releases replay in global stamp order, matching the
    /// arrival-ordered queue this replaces.
    stalled: FxHashMap<u64, VecDeque<(u64, Msg)>>,
    /// Messages across all `stalled` buckets.
    stalled_count: usize,
    /// Arrival counter feeding the stamps in `stalled`.
    stall_stamp: u64,
    /// An RMW is executing (between data arrival and `RmwDone`): incoming
    /// Fwd requests must wait (§3.2).
    rmw_busy: bool,
    /// Line the executing RMW targets (valid while `rmw_busy`).
    rmw_line: u64,
    txn: Option<Txn>,
    /// Retired transaction bookkeeping kept for reuse, so `xbegin` after
    /// the first never allocates read/write-set storage.
    txn_spare: Option<Txn>,
    /// Abort detected while the thread's next op sat in the inbox; reported
    /// when that op issues.
    pending_abort: Option<u32>,
    /// Generation counter for cancellable wakeups (delays, RMW end).
    gen: u64,
    op_state: OpState,
    socket: usize,
}

impl Cache {
    fn new(socket: usize) -> Self {
        Cache {
            lines: FxHashMap::default(),
            pending: FxHashMap::default(),
            deferred: None,
            deferred_line: 0,
            stalled: FxHashMap::default(),
            stalled_count: 0,
            stall_stamp: 0,
            rmw_busy: false,
            rmw_line: 0,
            txn: None,
            txn_spare: None,
            pending_abort: None,
            gen: 0,
            op_state: OpState::Idle,
            socket,
        }
    }

    /// The line of the request the thread is currently blocked on, if any.
    fn thread_pending_line(&self) -> Option<u64> {
        self.pending
            .values()
            .find(|p| p.waiter.is_some())
            .map(|p| p.line)
    }

    fn line(&mut self, line: u64) -> &mut CacheLine {
        self.lines.entry(line).or_insert_with(|| CacheLine {
            state: CState::Invalid,
            value: 0,
            tr: false,
            tw: false,
            clean: 0,
        })
    }

    fn state(&self, line: u64) -> CState {
        self.lines
            .get(&line)
            .map(|l| l.state)
            .unwrap_or(CState::Invalid)
    }

    fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn txn_reads(&self, line: u64) -> bool {
        self.txn.as_ref().is_some_and(|t| t.read_set.contains(line))
    }

    fn txn_writes(&self, line: u64) -> bool {
        self.txn
            .as_ref()
            .is_some_and(|t| t.write_set.contains(line))
    }

    /// Files `msg` under its line in the stalled index, stamped with the
    /// per-cache arrival counter.
    fn stall(&mut self, msg: Msg) {
        self.stall_stamp += 1;
        let stamp = self.stall_stamp;
        self.stalled
            .entry(msg.line())
            .or_default()
            .push_back((stamp, msg));
        self.stalled_count += 1;
    }
}

/// Directory state for one line.
#[derive(Debug, Clone)]
enum DirState {
    Invalid,
    Shared(SharerSet),
    /// Sole clean-or-dirty owner under MESI-E; the directory cannot tell
    /// E from M after a silent upgrade, so it forwards requests exactly
    /// as for Modified.
    Exclusive(usize),
    Modified(usize),
    /// Transient: a Fwd-GetS was sent to the previous owner and the
    /// directory is waiting for its writeback before serving further
    /// requests for this line.
    AwaitWb(SharerSet),
}

#[derive(Debug)]
struct DirEntry {
    state: DirState,
    mem: u64,
    /// Requests that arrived during a transient state, replayed in order.
    queued: VecDeque<(usize, Msg)>,
}

/// The directory (shared LLC slice).
#[derive(Debug, Default)]
struct Directory {
    entries: FxHashMap<u64, DirEntry>,
}

impl Directory {
    fn entry(&mut self, line: u64) -> &mut DirEntry {
        self.entries.entry(line).or_insert_with(|| DirEntry {
            state: DirState::Invalid,
            mem: 0,
            queued: VecDeque::new(),
        })
    }
}

/// Scheduler events.
#[derive(Debug)]
enum Event {
    /// A message arrives at `to`.
    Deliver { to: Node, msg: Msg },
    /// Core `core`'s thread issues its next operation.
    IssueOp { core: usize },
    /// An RMW (or plain store) finishes executing on `core`.
    RmwDone { core: usize, gen: u64 },
    /// A `delay()` elapses on `core` (cancellable by abort).
    DelayDone { core: usize, gen: u64 },
}

struct HeapItem {
    time: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar-wheel event queue, ordered by `(time, seq)`.
///
/// Event times cluster within a few hundred cycles of the clock (hop
/// latencies, RMW windows), so a binary heap's `O(log n)` compares and
/// element moves are wasted work. The wheel keeps the near future — times
/// in `[clock, clock + WHEEL)` — in a circular array of per-time FIFO
/// buckets: push is an append plus a bitmap bit, pop is a bitmap scan.
/// Bucket vectors are pooled, so the steady state allocates nothing.
/// Times at or beyond the horizon (long `delay()`s) overflow into a
/// binary heap and migrate into the wheel as the clock advances.
///
/// Order preservation: within the horizon each bucket holds exactly one
/// time value (times are unique mod `WHEEL` there), and appends happen in
/// `seq` order, so bucket FIFO order is `(time, seq)` order. An overflow
/// event migrates before any in-horizon push at the same time can occur
/// (a push at `t` requires `t < clock + WHEEL`, and migration runs
/// whenever the clock advances), so mixed buckets stay seq-sorted too.
struct EventQ {
    wheel: Vec<VecDeque<(u64, u64, Event)>>,
    /// One bit per wheel bucket: bucket non-empty.
    occupied: Vec<u64>,
    far: BinaryHeap<HeapItem>,
    len: usize,
}

/// Wheel size in buckets. Must exceed every in-flight latency the
/// protocol generates on its own (hops, RMW/commit windows); only long
/// program `delay()`s should overflow.
const WHEEL: u64 = 4096;

impl EventQ {
    fn new() -> Self {
        EventQ {
            wheel: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occupied: vec![0u64; (WHEEL / 64) as usize],
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mark(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn push(&mut self, clock: u64, time: u64, seq: u64, ev: Event) {
        self.len += 1;
        if time - clock < WHEEL {
            let slot = time % WHEEL;
            self.wheel[slot as usize].push_back((time, seq, ev));
            self.mark(slot);
        } else {
            self.far.push(HeapItem { time, seq, ev });
        }
    }

    /// Removes and returns the earliest event. `clock` is the simulator's
    /// current time; no event is ever scheduled in the past.
    fn pop(&mut self, clock: u64) -> Option<(u64, u64, Event)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let (time, seq, ev) = match self.scan(clock) {
            Some(slot) => {
                let bucket = &mut self.wheel[slot as usize];
                let item = bucket.pop_front().expect("occupied bit without items");
                if bucket.is_empty() {
                    self.occupied[(slot / 64) as usize] &= !(1u64 << (slot % 64));
                }
                item
            }
            None => {
                // Wheel empty: the overflow heap holds the minimum.
                let item = self.far.pop().expect("len counted a missing event");
                (item.time, item.seq, item.ev)
            }
        };
        // The clock is about to advance to `time`: pull newly in-horizon
        // overflow events into the wheel before anything can push at
        // those times.
        while let Some(top) = self.far.peek() {
            if top.time - time >= WHEEL {
                break;
            }
            let item = self.far.pop().unwrap();
            let slot = item.time % WHEEL;
            self.wheel[slot as usize].push_back((item.time, item.seq, item.ev));
            self.mark(slot);
        }
        Some((time, seq, ev))
    }

    /// Finds the occupied bucket with the smallest time ≥ `clock`, i.e.
    /// the first occupied bucket in circular order from `clock`'s slot.
    fn scan(&self, clock: u64) -> Option<u64> {
        let start = clock % WHEEL;
        let words = self.occupied.len() as u64;
        let first_word = start / 64;
        // Mask off bits below `start` in its word, then walk the bitmap
        // circularly; total work is a few dozen word reads at most.
        let head = self.occupied[first_word as usize] & (!0u64 << (start % 64));
        if head != 0 {
            return Some(first_word * 64 + head.trailing_zeros() as u64);
        }
        for i in 1..=words {
            let w = (first_word + i) % words;
            let bits = self.occupied[w as usize];
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as u64;
                // The wrapped tail of the start word: bits below `start`
                // belong to times ~WHEEL ahead, still valid candidates
                // only after the full circle — which this loop's `i ==
                // words` iteration (same word again) handles naturally.
                return Some(slot);
            }
        }
        None
    }
}

/// A memory operation as issued by a thread.
#[derive(Debug, Clone, Copy)]
pub enum OpKind {
    Read(u64),
    Write(u64, u64),
    Cas(u64, u64, u64),
    Faa(u64, u64),
    Swap(u64, u64),
    Delay(u64),
    TxBegin,
    TxEnd,
    TxAbort(u8),
}

impl OpKind {
    /// Dense index into [`crate::stats::OP_KINDS`].
    fn name_id(&self) -> usize {
        match self {
            OpKind::Read(..) => 0,
            OpKind::Write(..) => 1,
            OpKind::Cas(..) => 2,
            OpKind::Faa(..) => 3,
            OpKind::Swap(..) => 4,
            OpKind::Delay(..) => 5,
            OpKind::TxBegin => 6,
            OpKind::TxEnd => 7,
            OpKind::TxAbort(..) => 8,
        }
    }
}

/// What the engine reports back to a blocked thread.
#[derive(Debug, Clone, Copy)]
pub enum OpOutcome {
    /// Operation completed with this value (CAS reports 1/0; commit 1).
    Val(u64),
    /// The enclosing transaction aborted with this status word.
    Aborted(u32),
}

/// A completed thread resumption: deliver `outcome` to `core`, whose local
/// clock becomes `time`.
#[derive(Debug)]
pub struct Resume {
    pub core: usize,
    pub time: u64,
    pub outcome: OpOutcome,
}

/// The protocol engine. Owned and driven by [`crate::machine`].
pub struct Sim {
    pub cfg: Arc<MachineConfig>,
    clock: u64,
    seq: u64,
    events: EventQ,
    dir: Directory,
    caches: Vec<Cache>,
    /// Operation each core's thread has issued and not yet begun.
    op_inbox: Vec<Option<OpKind>>,
    /// Thread resumptions produced by event processing; drained by the
    /// machine layer after each `step`.
    pub resumes: Vec<Resume>,
    pub stats: Stats,
    pub trace: Vec<TraceEvent>,
    rng: SimRng,
    check_countdown: u32,
    /// Earliest time the directory can accept its next request.
    dir_free_at: u64,
    /// Earliest time each cache can serve its next incoming request.
    cache_free_at: Vec<u64>,
    /// Reusable buffer for released stalled messages.
    stall_scratch: Vec<(u64, Msg)>,
    /// Reusable buffer for directory-queued request replay.
    wb_scratch: VecDeque<(usize, Msg)>,
}

impl Sim {
    pub fn new(cfg: Arc<MachineConfig>) -> Self {
        // +1 for the bootstrap core used by the setup phase.
        let ncaches = cfg.cores + 1;
        let caches = (0..ncaches).map(|c| Cache::new(cfg.socket_of(c))).collect();
        Sim {
            rng: SimRng::seed_from_u64(cfg.seed),
            clock: 0,
            seq: 0,
            events: EventQ::new(),
            dir: Directory::default(),
            caches,
            op_inbox: vec![None; ncaches],
            resumes: Vec::new(),
            stats: Stats::default(),
            trace: Vec::new(),
            check_countdown: 0,
            dir_free_at: 0,
            cache_free_at: vec![0; ncaches],
            stall_scratch: Vec::new(),
            wb_scratch: VecDeque::new(),
            cfg,
        }
    }

    /// Current simulated time, cycles.
    pub fn now(&self) -> u64 {
        self.clock
    }

    fn push(&mut self, time: u64, ev: Event) {
        debug_assert!(time >= self.clock, "event scheduled in the past");
        self.seq += 1;
        self.events.push(self.clock, time, self.seq, ev);
    }

    /// Point-to-point one-way latency between two nodes.
    fn latency(&self, src: Node, dst: Node) -> u64 {
        let s = |n: Node| match n {
            Node::Dir => self.cfg.home_socket,
            Node::Core(c) => self.caches[c].socket,
        };
        self.cfg.hop(s(src), s(dst))
    }

    fn send(&mut self, src: Node, dst: Node, msg: Msg) {
        let sent = self.clock;
        let recv = sent + self.latency(src, dst);
        if self.cfg.trace {
            self.trace.push(TraceEvent::Msg {
                sent,
                recv,
                src: src.to_string(),
                dst: dst.to_string(),
                kind: msg.kind(),
                line: msg.line(),
            });
        }
        self.stats.count_msg(msg.kind_id());
        self.push(recv, Event::Deliver { to: dst, msg });
    }

    fn trace_tx(&mut self, core: usize, what: &'static str, detail: u32) {
        if self.cfg.trace {
            self.trace.push(TraceEvent::Tx {
                time: self.clock,
                core,
                what,
                detail,
            });
        }
    }

    fn resume_at(&mut self, core: usize, time: u64, outcome: OpOutcome) {
        debug_assert_ne!(self.caches[core].op_state, OpState::Idle);
        self.caches[core].op_state = OpState::Idle;
        self.resumes.push(Resume {
            core,
            time,
            outcome,
        });
    }

    /// Hands the engine a thread's next operation, issued at the thread's
    /// local time `at`.
    pub fn submit_op(&mut self, core: usize, at: u64, op: OpKind) {
        assert!(
            self.op_inbox[core].is_none(),
            "core {core} already has an op"
        );
        assert_eq!(self.caches[core].op_state, OpState::Idle);
        self.caches[core].op_state = OpState::Inbox;
        self.op_inbox[core] = Some(op);
        let mut t = at.max(self.clock) + self.cfg.op_cycles;
        // Scheduler-choice perturbation: stretch the issue latency so a
        // different ready core wins the next engine slot. Only IssueOp
        // times are perturbed — in-flight protocol messages keep their
        // modelled latencies, so the protocol stays well-formed and both
        // schedulers consume the RNG in the same (submit) order.
        if self.cfg.sched_perturb > 0 {
            t += self.rng.gen_range_inclusive(0, self.cfg.sched_perturb);
        }
        self.push(t, Event::IssueOp { core });
    }

    /// True if any event remains.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Processes the next event; returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((time, _seq, ev)) = self.events.pop(self.clock) else {
            return false;
        };
        debug_assert!(time >= self.clock);
        self.clock = time;
        match ev {
            Event::Deliver { to, msg } => match to {
                Node::Dir => self.dir_handle(msg),
                Node::Core(c) => self.cache_handle(c, msg),
            },
            Event::IssueOp { core } => {
                let op = self.op_inbox[core].take().expect("no op in inbox");
                debug_assert_eq!(self.caches[core].op_state, OpState::Inbox);
                self.caches[core].op_state = OpState::Current;
                self.begin_op(core, op);
            }
            Event::RmwDone { core, gen } => {
                if self.caches[core].gen == gen {
                    self.rmw_done(core);
                }
            }
            Event::DelayDone { core, gen } => {
                if self.caches[core].gen == gen {
                    debug_assert_eq!(self.caches[core].op_state, OpState::Delaying);
                    self.resume_at(core, self.clock, OpOutcome::Val(0));
                }
            }
        }
        if self.cfg.check_invariants {
            if self.check_countdown == 0 {
                self.check_invariants();
                self.check_countdown = 63;
            } else {
                self.check_countdown -= 1;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Thread-operation entry points
    // ------------------------------------------------------------------

    fn begin_op(&mut self, core: usize, op: OpKind) {
        self.stats.count_op(op.name_id());
        // A transaction aborted while the thread was computing locally is
        // reported at its next operation.
        if let Some(status) = self.caches[core].pending_abort.take() {
            self.resume_at(core, self.clock, OpOutcome::Aborted(status));
            return;
        }
        // MSHR merge: a memory operation on a line with an in-flight
        // (headless) request waits for that request rather than issuing a
        // second one.
        if let Some(line) = op_line(&op) {
            let cache = &mut self.caches[core];
            if cache.pending.contains_key(&line) {
                debug_assert!(
                    cache.pending[&line].waiter.is_none(),
                    "thread already blocked on this line"
                );
                cache.deferred = Some(op);
                cache.deferred_line = line;
                cache.op_state = OpState::PendingWait;
                return;
            }
        }
        self.begin_op_dispatch(core, op);
    }

    /// Second half of [`begin_op`]: the operation dispatch, also entered
    /// directly when a deferred op is re-issued at request completion.
    fn begin_op_dispatch(&mut self, core: usize, op: OpKind) {
        match op {
            OpKind::Read(line) => self.op_read(core, line),
            OpKind::Write(line, v) => self.op_store(core, line, Waiter::Write(v)),
            OpKind::Cas(line, old, new) => self.op_store(core, line, Waiter::Cas { old, new }),
            OpKind::Faa(line, v) => self.op_store(core, line, Waiter::Faa(v)),
            OpKind::Swap(line, v) => self.op_store(core, line, Waiter::Swap(v)),
            OpKind::Delay(cycles) => {
                // Apply the configured timing noise (see
                // `MachineConfig::delay_jitter_pct`): real cores never
                // sleep for exactly N cycles, and the spread is what lets
                // one TxCAS winner abort the others mid-delay (§4.1).
                let jitter = if self.cfg.delay_jitter_pct > 0 && cycles > 4 {
                    let span = cycles * self.cfg.delay_jitter_pct / 100;
                    if span > 0 {
                        self.rng.gen_range_inclusive(0, span)
                    } else {
                        0
                    }
                } else {
                    0
                };
                let gen = {
                    let c = &mut self.caches[core];
                    c.gen += 1;
                    c.op_state = OpState::Delaying;
                    c.gen
                };
                self.push(self.clock + cycles + jitter, Event::DelayDone { core, gen });
            }
            OpKind::TxBegin => self.op_txbegin(core),
            OpKind::TxEnd => self.op_txend(core),
            OpKind::TxAbort(code) => {
                assert!(self.caches[core].txn.is_some(), "xabort outside txn");
                self.abort_txn(core, txn::explicit(code));
            }
        }
    }

    fn op_read(&mut self, core: usize, line: u64) {
        let in_txn = self.caches[core].in_txn();
        let hit = {
            let cache = &mut self.caches[core];
            let l = cache.line(line);
            if l.state != CState::Invalid {
                if in_txn {
                    l.tr = true;
                }
                Some(l.value)
            } else {
                None
            }
        };
        if in_txn {
            self.caches[core]
                .txn
                .as_mut()
                .unwrap()
                .read_set
                .insert(line);
            if self.txn_over_capacity(core) {
                self.abort_txn(core, txn::CAPACITY);
                return;
            }
        }
        if let Some(v) = hit {
            let done = self.clock + self.cfg.hit_cycles;
            self.resume_at(core, done, OpOutcome::Val(v));
            return;
        }
        let cache = &mut self.caches[core];
        let prev = cache.pending.insert(
            line,
            PendingReq {
                line,
                is_getm: false,
                have_data: false,
                value: 0,
                acks_expected: None,
                acks_got: 0,
                got_excl: false,
                waiter: Some(Waiter::Read),
            },
        );
        debug_assert!(prev.is_none(), "duplicate request for line");
        cache.op_state = OpState::PendingWait;
        self.send(Node::Core(core), Node::Dir, Msg::GetS { line, from: core });
    }

    /// All write-permission operations: plain store, CAS/FAA/SWAP, and
    /// transactional writes.
    fn op_store(&mut self, core: usize, line: u64, waiter: Waiter) {
        let in_txn = self.caches[core].in_txn();
        if in_txn {
            // Inside a transaction the only permitted store is the
            // transactional plain write; the paper's algorithms never RMW
            // inside a transaction.
            let v = match waiter {
                Waiter::Write(v) => v,
                _ => panic!("atomic RMW inside a transaction is not supported"),
            };
            self.caches[core]
                .txn
                .as_mut()
                .unwrap()
                .write_set
                .insert(line);
            if self.txn_over_capacity(core) {
                self.abort_txn(core, txn::CAPACITY);
                return;
            }
            if self.caches[core].state(line).writable() {
                // Ownership already held (M, or E with a silent upgrade):
                // buffer the write transactionally.
                let cache = &mut self.caches[core];
                let l = cache.line(line);
                l.state = CState::Modified;
                if !l.tw {
                    l.clean = l.value;
                    l.tw = true;
                }
                l.value = v;
                let done = self.clock + self.cfg.hit_cycles;
                self.resume_at(core, done, OpOutcome::Val(0));
                return;
            }
            let cache = &mut self.caches[core];
            let prev = cache.pending.insert(
                line,
                PendingReq {
                    line,
                    is_getm: true,
                    have_data: false,
                    value: 0,
                    acks_expected: None,
                    acks_got: 0,
                    got_excl: false,
                    waiter: Some(Waiter::TxWrite(v)),
                },
            );
            debug_assert!(prev.is_none(), "duplicate request for line");
            cache.op_state = OpState::PendingWait;
            self.send(Node::Core(core), Node::Dir, Msg::GetM { line, from: core });
            return;
        }

        if self.caches[core].state(line).writable() {
            // M, or E silently upgraded by the store (MESI-E).
            self.caches[core].line(line).state = CState::Modified;
            self.start_rmw(core, line, waiter);
            return;
        }
        let cache = &mut self.caches[core];
        let prev = cache.pending.insert(
            line,
            PendingReq {
                line,
                is_getm: true,
                have_data: false,
                value: 0,
                acks_expected: None,
                acks_got: 0,
                got_excl: false,
                waiter: Some(waiter),
            },
        );
        debug_assert!(prev.is_none(), "duplicate request for line");
        cache.op_state = OpState::PendingWait;
        self.send(Node::Core(core), Node::Dir, Msg::GetM { line, from: core });
    }

    /// Begins executing an RMW/store on an owned line; incoming Fwd
    /// requests stall until `rmw_done` (§3.2: the core defers coherence
    /// messages that would revoke ownership until the RMW completes).
    fn start_rmw(&mut self, core: usize, line: u64, waiter: Waiter) {
        let cost = match waiter {
            Waiter::Write(_) => self.cfg.hit_cycles,
            _ => self.cfg.rmw_cycles,
        };
        let cache = &mut self.caches[core];
        debug_assert!(cache.state(line).writable());
        cache.rmw_busy = true;
        cache.rmw_line = line;
        cache.gen += 1;
        let gen = cache.gen;
        let value = cache.lines[&line].value;
        let prev = cache.pending.insert(
            line,
            PendingReq {
                line,
                is_getm: true,
                have_data: true,
                value,
                acks_expected: Some(0),
                acks_got: 0,
                got_excl: false,
                waiter: Some(waiter),
            },
        );
        debug_assert!(prev.is_none(), "RMW on a line with an in-flight request");
        cache.op_state = OpState::RmwExec;
        self.push(self.clock + cost, Event::RmwDone { core, gen });
    }

    /// The RMW execution window ended: apply the operation, resume the
    /// thread, and serve stalled requests.
    fn rmw_done(&mut self, core: usize) {
        let (result, line) = {
            let cache = &mut self.caches[core];
            cache.rmw_busy = false;
            let line = cache.rmw_line;
            let p = cache
                .pending
                .remove(&line)
                .expect("rmw_done without pending");
            debug_assert_eq!(p.line, line);
            let cur = cache.lines[&line].value;
            let (result, newval) = match p.waiter.expect("rmw_done without waiter") {
                Waiter::Read => (cur, cur),
                Waiter::Write(v) => (0, v),
                Waiter::Cas { old, new } => {
                    if cur == old {
                        (1, new)
                    } else {
                        (0, cur)
                    }
                }
                Waiter::Faa(v) => (cur, cur.wrapping_add(v)),
                Waiter::Swap(v) => (cur, v),
                Waiter::TxWrite(_) => unreachable!("tx writes do not use rmw_done"),
            };
            cache.line(line).value = newval;
            (result, line)
        };
        let _ = line;
        self.resume_at(core, self.clock, OpOutcome::Val(result));
        self.drain_stalled(core);
    }

    /// True if `core`'s running transaction has outgrown the modelled
    /// transactional capacity (`tx_capacity_lines` distinct read-set plus
    /// write-set entries; 0 = unbounded).
    fn txn_over_capacity(&self, core: usize) -> bool {
        let limit = self.cfg.tx_capacity_lines;
        if limit == 0 {
            return false;
        }
        self.caches[core]
            .txn
            .as_ref()
            .is_some_and(|t| t.read_set.len() + t.write_set.len() > limit)
    }

    fn op_txbegin(&mut self, core: usize) {
        let cache = &mut self.caches[core];
        match &mut cache.txn {
            None => {
                // Reuse the previous transaction's (cleared) set storage.
                let mut t = cache.txn_spare.take().unwrap_or_default();
                t.depth = 1;
                cache.txn = Some(t);
            }
            Some(t) => t.depth += 1, // flat nesting
        }
        let depth = cache.txn.as_ref().unwrap().depth;
        self.trace_tx(core, "xbegin", depth);
        let done = self.clock + self.cfg.xbegin_cycles;
        self.resume_at(core, done, OpOutcome::Val(0));
    }

    fn op_txend(&mut self, core: usize) {
        let cache = &mut self.caches[core];
        let t = cache.txn.as_mut().expect("xend outside txn");
        if t.depth > 1 {
            // Closing a nested transaction commits nothing by itself.
            t.depth -= 1;
            let done = self.clock + self.cfg.xend_cycles;
            self.resume_at(core, done, OpOutcome::Val(0));
            return;
        }
        // A transactional write blocks until ownership, so the thread has
        // no request pending here (headless orphans may).
        debug_assert!(
            cache.thread_pending_line().is_none(),
            "xend with a thread-owned pending request"
        );
        self.commit_txn(core);
    }

    fn commit_txn(&mut self, core: usize) {
        if self.cfg.spurious_abort_prob > 0.0 && self.rng.gen_bool(self.cfg.spurious_abort_prob) {
            self.stats.tx_aborts_spurious += 1;
            self.abort_txn(core, txn::SPURIOUS);
            return;
        }
        let cache = &mut self.caches[core];
        let mut t = cache.txn.take().expect("commit without txn");
        for line in t.read_set.iter().chain(t.write_set.iter()) {
            if let Some(l) = cache.lines.get_mut(line) {
                l.tr = false;
                l.tw = false;
            }
        }
        t.read_set.clear();
        t.write_set.clear();
        cache.txn_spare = Some(t);
        self.stats.tx_commits += 1;
        self.trace_tx(core, "commit", 0);
        let done = self.clock + self.cfg.xend_cycles;
        self.resume_at(core, done, OpOutcome::Val(1));
        self.drain_stalled(core);
    }

    /// Aborts `core`'s running transaction with the given status bits
    /// (RETRY/NESTED are added here).
    fn abort_txn(&mut self, core: usize, status: u32) {
        let Some(mut t) = self.caches[core].txn.take() else {
            return;
        };
        let mut status = status | txn::RETRY;
        if t.depth >= 2 {
            status |= txn::NESTED;
        }
        {
            let cache = &mut self.caches[core];
            // Roll back transactional writes applied to owned lines.
            for line in t.write_set.iter() {
                if let Some(l) = cache.lines.get_mut(line) {
                    if l.tw {
                        l.value = l.clean;
                        l.tw = false;
                    }
                }
            }
            for line in t.read_set.iter() {
                if let Some(l) = cache.lines.get_mut(line) {
                    l.tr = false;
                }
            }
            t.read_set.clear();
            t.write_set.clear();
            cache.txn_spare = Some(t);
        }
        if txn::is_explicit(status) {
            self.stats.tx_aborts_explicit += 1;
        } else if txn::is_conflict(status) {
            self.stats.tx_aborts_conflict += 1;
        } else if txn::is_capacity(status) {
            self.stats.tx_aborts_capacity += 1;
        }
        self.trace_tx(core, "abort", status);

        // Restore the thread at the checkpoint: exactly one response is
        // owed whenever op_state != Idle.
        let cache = &mut self.caches[core];
        match cache.op_state {
            OpState::Current => {
                // The abort was triggered from within the thread's own op
                // (xabort, or spurious at xend).
                self.resume_at(core, self.clock, OpOutcome::Aborted(status));
            }
            OpState::Delaying => {
                cache.gen += 1; // cancel the DelayDone wake-up
                self.resume_at(core, self.clock, OpOutcome::Aborted(status));
            }
            OpState::PendingWait => {
                // Cancel the waiter (or the deferred op); any in-flight
                // request continues headless.
                if cache.deferred.take().is_none() {
                    let p = cache
                        .pending
                        .values_mut()
                        .find(|p| p.waiter.is_some())
                        .expect("PendingWait without pending or deferred");
                    p.waiter = None;
                }
                self.resume_at(core, self.clock, OpOutcome::Aborted(status));
            }
            OpState::Inbox => {
                // Report when the op issues.
                cache.pending_abort = Some(status);
            }
            OpState::RmwExec => unreachable!("RMW inside transaction"),
            OpState::Idle => unreachable!("abort with no outstanding thread op"),
        }
        self.drain_stalled(core);
    }

    // ------------------------------------------------------------------
    // Directory
    // ------------------------------------------------------------------

    fn dir_handle(&mut self, msg: Msg) {
        // Directory occupancy: the controller retires at most one request
        // per `dir_occupancy` cycles; simultaneous arrivals are naturally
        // staggered, exactly like a real LLC slice.
        if self.cfg.dir_occupancy > 0 {
            if self.clock < self.dir_free_at {
                let at = self.dir_free_at;
                self.push(at, Event::Deliver { to: Node::Dir, msg });
                return;
            }
            self.dir_free_at = self.clock + self.cfg.dir_occupancy;
        }
        let from = match msg {
            Msg::GetS { from, .. } | Msg::GetM { from, .. } | Msg::WbData { from, .. } => from,
            other => panic!("directory cannot handle {other:?}"),
        };
        let line = msg.line();
        let e = self.dir.entry(line);
        // Queue behind a transient state (except the writeback that
        // resolves it).
        if matches!(e.state, DirState::AwaitWb(_)) && !matches!(msg, Msg::WbData { .. }) {
            e.queued.push_back((from, msg));
            return;
        }
        self.dir_dispatch(from, msg);
    }

    fn dir_dispatch(&mut self, from: usize, msg: Msg) {
        let line = msg.line();
        match msg {
            Msg::GetS { .. } => {
                let e = self.dir.entry(line);
                // Move the state out instead of cloning it; every arm
                // writes the successor state back.
                match std::mem::replace(&mut e.state, DirState::Invalid) {
                    DirState::Invalid => {
                        let v = e.mem;
                        if self.cfg.mesi_exclusive {
                            // Sole reader: grant Exclusive (MESI-E).
                            e.state = DirState::Exclusive(from);
                            self.send(
                                Node::Dir,
                                Node::Core(from),
                                Msg::Data {
                                    line,
                                    value: v,
                                    acks: 0,
                                    excl: true,
                                },
                            );
                        } else {
                            e.state = DirState::Shared(SharerSet::one(from));
                            self.send(
                                Node::Dir,
                                Node::Core(from),
                                Msg::Data {
                                    line,
                                    value: v,
                                    acks: 0,
                                    excl: false,
                                },
                            );
                        }
                    }
                    DirState::Shared(mut s) => {
                        let v = e.mem;
                        s.insert(from);
                        e.state = DirState::Shared(s);
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line,
                                value: v,
                                acks: 0,
                                excl: false,
                            },
                        );
                    }
                    DirState::Exclusive(owner) | DirState::Modified(owner) => {
                        assert_ne!(owner, from, "owner re-requesting GetS");
                        e.state = DirState::AwaitWb(SharerSet::two(owner, from));
                        self.send(
                            Node::Dir,
                            Node::Core(owner),
                            Msg::FwdGetS {
                                line,
                                requester: from,
                            },
                        );
                    }
                    DirState::AwaitWb(_) => unreachable!("queued in dir_handle_at"),
                }
            }
            Msg::GetM { .. } => {
                let e = self.dir.entry(line);
                match std::mem::replace(&mut e.state, DirState::Invalid) {
                    DirState::Invalid => {
                        let v = e.mem;
                        e.state = DirState::Modified(from);
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line,
                                value: v,
                                acks: 0,
                                excl: false,
                            },
                        );
                    }
                    DirState::Shared(s) => {
                        let v = e.mem;
                        e.state = DirState::Modified(from);
                        let acks = s.iter().filter(|&&c| c != from).count() as u64;
                        // The data response and all invalidations leave
                        // back-to-back: the concurrency that makes HTM CAS
                        // failures scale (§3.3). `s` is owned here (moved
                        // out of the entry), so the fan-out iterates it
                        // directly — no per-call `others` Vec.
                        self.send(
                            Node::Dir,
                            Node::Core(from),
                            Msg::Data {
                                line,
                                value: v,
                                acks,
                                excl: false,
                            },
                        );
                        for &c in s.iter() {
                            if c != from {
                                self.send(
                                    Node::Dir,
                                    Node::Core(c),
                                    Msg::Inv {
                                        line,
                                        requester: from,
                                    },
                                );
                            }
                        }
                    }
                    DirState::Exclusive(owner) | DirState::Modified(owner) => {
                        assert_ne!(owner, from, "owner re-requesting GetM");
                        e.state = DirState::Modified(from);
                        self.send(
                            Node::Dir,
                            Node::Core(owner),
                            Msg::FwdGetM {
                                line,
                                requester: from,
                            },
                        );
                    }
                    DirState::AwaitWb(_) => unreachable!("queued in dir_handle_at"),
                }
            }
            Msg::WbData { value, .. } => {
                let e = self.dir.entry(line);
                let DirState::AwaitWb(sharers) = std::mem::replace(&mut e.state, DirState::Invalid)
                else {
                    panic!("unexpected WbData");
                };
                e.mem = value;
                e.state = DirState::Shared(sharers);
                // Replay requests that queued behind the writeback. Swap
                // the bucket into a reusable scratch deque; the replayed
                // messages are GetS/GetM only (WbData is never queued), so
                // a replay can re-queue behind a fresh AwaitWb but never
                // re-enter this arm while the scratch is in use.
                debug_assert!(self.wb_scratch.is_empty());
                std::mem::swap(&mut self.wb_scratch, &mut e.queued);
                while let Some((_, m)) = self.wb_scratch.pop_front() {
                    self.dir_handle(m);
                }
            }
            other => panic!("directory cannot handle {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Cache message handling
    // ------------------------------------------------------------------

    fn cache_handle(&mut self, core: usize, msg: Msg) {
        // Controller occupancy for *serving requests*: a cache retires at
        // most one incoming Fwd/Inv per `cache_occupancy` cycles. Response
        // messages (Data/InvAck) are pipelined and bypass the limit.
        if self.cfg.cache_occupancy > 0
            && matches!(
                msg,
                Msg::Inv { .. } | Msg::FwdGetS { .. } | Msg::FwdGetM { .. }
            )
        {
            let free_at = self.cache_free_at[core];
            if self.clock < free_at {
                self.push(
                    free_at,
                    Event::Deliver {
                        to: Node::Core(core),
                        msg,
                    },
                );
                return;
            }
            self.cache_free_at[core] = self.clock + self.cfg.cache_occupancy;
        }
        match msg {
            Msg::Data {
                line,
                value,
                acks,
                excl,
            } => self.on_data(core, line, value, acks, excl),
            Msg::DataOwner { line, value } => self.on_data(core, line, value, 0, false),
            Msg::InvAck { line } => {
                let p = self.caches[core]
                    .pending
                    .get_mut(&line)
                    .expect("stray InvAck");
                p.acks_got += 1;
                self.try_complete_pending(core, line);
            }
            Msg::Inv { line, requester } => self.on_inv(core, line, requester),
            Msg::FwdGetS { line, requester } => self.on_fwd_gets(core, line, requester),
            Msg::FwdGetM { line, requester } => self.on_fwd_getm(core, line, requester),
            other => panic!("cache cannot handle {other:?}"),
        }
    }

    fn on_data(&mut self, core: usize, line: u64, value: u64, acks: u64, excl: bool) {
        let p = self.caches[core]
            .pending
            .get_mut(&line)
            .expect("stray Data");
        p.have_data = true;
        p.value = value;
        p.got_excl = excl;
        // DataOwner carries no ack expectation; Data from the directory
        // does. Both paths may deliver acks before data, so only overwrite
        // if unset (the directory message is authoritative).
        if p.acks_expected.is_none() {
            p.acks_expected = Some(acks);
        }
        self.try_complete_pending(core, line);
    }

    fn try_complete_pending(&mut self, core: usize, line: u64) {
        let done = {
            let cache = &self.caches[core];
            match cache.pending.get(&line) {
                Some(p) => p.have_data && p.acks_expected.is_some_and(|a| p.acks_got >= a),
                None => false,
            }
        };
        if !done {
            return;
        }
        let p = self.caches[core].pending.remove(&line).unwrap();
        {
            let cache = &mut self.caches[core];
            let l = cache.line(line);
            l.state = if p.is_getm {
                CState::Modified
            } else if p.got_excl {
                CState::Exclusive
            } else {
                CState::Shared
            };
            l.value = p.value;
            l.tw = false;
            l.tr = false;
        }

        match p.waiter {
            None => {
                // Headless: the transaction that issued this GetM aborted
                // (§3.3: pending GetM requests of failed TxCASs are handled
                // asynchronously by the cache controller). Take ownership
                // with the received data and serve whoever stalled; if the
                // thread meanwhile issued an op for this very line (MSHR
                // merge), re-dispatch it now.
                self.drain_stalled(core);
                let cache = &mut self.caches[core];
                if cache.deferred.is_some() && cache.deferred_line == line {
                    let op = cache.deferred.take().unwrap();
                    cache.op_state = OpState::Current;
                    self.begin_op_dispatch(core, op);
                }
            }
            Some(Waiter::Read) => {
                if self.caches[core].in_txn() {
                    self.caches[core].line(line).tr = true;
                }
                self.resume_at(core, self.clock, OpOutcome::Val(p.value));
                self.drain_stalled(core);
            }
            Some(Waiter::TxWrite(v)) => {
                // Ownership acquired for a transactional write. Apply the
                // buffered store; requester-wins conflicts that arrived
                // during the wait already aborted us (waiter would be
                // None). Stalled Fwd requests stay stalled until
                // commit/abort — see the commit-atomicity note above.
                debug_assert!(self.caches[core].in_txn());
                let cache = &mut self.caches[core];
                let l = cache.line(line);
                l.clean = l.value;
                l.value = v;
                l.tw = true;
                self.resume_at(core, self.clock, OpOutcome::Val(0));
            }
            Some(w) => {
                // A non-transactional RMW/store: execute it now (the §3.2
                // read-modify-write window).
                let cost = match w {
                    Waiter::Write(_) => self.cfg.hit_cycles,
                    _ => self.cfg.rmw_cycles,
                };
                let cache = &mut self.caches[core];
                cache.pending.insert(
                    line,
                    PendingReq {
                        waiter: Some(w),
                        ..p
                    },
                );
                cache.rmw_busy = true;
                cache.rmw_line = line;
                cache.gen += 1;
                let gen = cache.gen;
                cache.op_state = OpState::RmwExec;
                self.push(self.clock + cost, Event::RmwDone { core, gen });
            }
        }
    }

    fn on_inv(&mut self, core: usize, line: u64, requester: usize) {
        // Invalidations are never stalled (that would deadlock the
        // requester counting acks). This is exactly why HTM failures are
        // concurrent: every read-phase sharer processes its Inv — and
        // aborts — in parallel (§3.3, Figure 2b).
        let conflict = {
            let cache = &mut self.caches[core];
            let conflict = cache.txn_reads(line) || cache.txn_writes(line);
            if let Some(l) = cache.lines.get_mut(&line) {
                l.state = CState::Invalid;
            }
            conflict
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::InvAck { line },
        );
        if conflict {
            self.abort_txn(core, txn::CONFLICT);
        }
    }

    fn on_fwd_gets(&mut self, core: usize, line: u64, requester: usize) {
        let (pending_here, txn_wrote, owns) = {
            let cache = &self.caches[core];
            (
                cache.pending.contains_key(&line),
                cache.txn_writes(line),
                cache.state(line).writable(),
            )
        };

        if txn_wrote && pending_here {
            // The remote read hit the window in which our transactional
            // write waits for its GetM to complete: the tripped writer
            // (§3.4, Figure 3).
            if self.cfg.microarch_fix {
                // §3.4.1: the core is effectively blocked at _xend with a
                // single pending GetM; stall the read until commit.
                self.stats.fix_stalls += 1;
                self.stats.stalls += 1;
                self.caches[core].stall(Msg::FwdGetS { line, requester });
                return;
            }
            self.stats.tripped_writers += 1;
            self.abort_txn(core, txn::CONFLICT);
            // We still become owner when the GetM completes (headless);
            // serve the read then.
            self.stats.stalls += 1;
            self.caches[core].stall(Msg::FwdGetS { line, requester });
            return;
        }
        if txn_wrote && owns {
            // Commit window (ownership held, xend imminent): stall — see
            // the commit-atomicity note in the module docs.
            self.stats.stalls += 1;
            self.caches[core].stall(Msg::FwdGetS { line, requester });
            return;
        }
        if pending_here || self.caches[core].rmw_busy {
            self.stats.stalls += 1;
            self.caches[core].stall(Msg::FwdGetS { line, requester });
            return;
        }
        // A remote read of a line we own but only transactionally *read*
        // (or do not have in any transaction) is not a conflict.
        self.serve_fwd_gets(core, line, requester);
    }

    fn serve_fwd_gets(&mut self, core: usize, line: u64, requester: usize) {
        let v = {
            let cache = &mut self.caches[core];
            let l = cache.line(line);
            assert!(l.state.writable(), "Fwd-GetS to non-owner");
            debug_assert!(!l.tw, "serving a transactionally written line");
            l.state = CState::Shared;
            l.value
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::DataOwner { line, value: v },
        );
        self.send(
            Node::Core(core),
            Node::Dir,
            Msg::WbData {
                line,
                value: v,
                from: core,
            },
        );
    }

    fn on_fwd_getm(&mut self, core: usize, line: u64, requester: usize) {
        let (pending_here, txn_wrote, txn_read) = {
            let cache = &self.caches[core];
            (
                cache.pending.contains_key(&line),
                cache.txn_writes(line),
                cache.txn_reads(line),
            )
        };
        if pending_here || self.caches[core].rmw_busy || txn_wrote {
            // Stall until our own request / RMW window / commit completes
            // (Figure 2a's C2; for transactions this preserves the §3.3
            // winner, whose commit is atomic with GetM completion).
            self.stats.stalls += 1;
            self.caches[core].stall(Msg::FwdGetM { line, requester });
            return;
        }
        if txn_read {
            // We own a line the running transaction read; the remote
            // writer wins.
            self.abort_txn(core, txn::CONFLICT);
        }
        self.serve_fwd_getm(core, line, requester);
    }

    fn serve_fwd_getm(&mut self, core: usize, line: u64, requester: usize) {
        let v = {
            let cache = &mut self.caches[core];
            let l = cache.line(line);
            assert!(l.state.writable(), "Fwd-GetM to non-owner");
            debug_assert!(!l.tw, "handing off a transactionally written line");
            l.state = CState::Invalid;
            l.value
        };
        self.send(
            Node::Core(core),
            Node::Core(requester),
            Msg::DataOwner { line, value: v },
        );
    }

    /// Re-examines stalled messages after a condition that stalled them
    /// (per-line pending request, RMW window, transactional write) clears.
    /// Unblocked messages are re-delivered through the regular handlers —
    /// so every conflict/stall condition is re-evaluated from scratch —
    /// at the current simulated time.
    fn drain_stalled(&mut self, core: usize) {
        if self.caches[core].rmw_busy || self.caches[core].stalled_count == 0 {
            return; // the atomic window blocks the whole cache
        }
        // The blocking condition is per line, so consult each line's
        // bucket once instead of re-scanning every stalled message.
        // Released messages are re-delivered in arrival-stamp order —
        // exactly the order the old whole-queue scan produced — through
        // the regular handlers, so every conflict/stall condition is
        // re-evaluated from scratch at the current simulated time.
        let mut freed = std::mem::take(&mut self.stall_scratch);
        debug_assert!(freed.is_empty());
        {
            let cache = &mut self.caches[core];
            let pending = &cache.pending;
            let txn = &cache.txn;
            cache.stalled.retain(|&line, bucket| {
                let blocked = pending.contains_key(&line)
                    || txn.as_ref().is_some_and(|t| t.write_set.contains(line));
                if blocked {
                    true
                } else {
                    freed.extend(bucket.drain(..));
                    false
                }
            });
            cache.stalled_count -= freed.len();
        }
        freed.sort_unstable_by_key(|&(stamp, _)| stamp);
        for &(_, msg) in &freed {
            self.push(
                self.clock,
                Event::Deliver {
                    to: Node::Core(core),
                    msg,
                },
            );
        }
        freed.clear();
        self.stall_scratch = freed;
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Single-writer/multi-reader: at most one cache in M per line.
    fn check_invariants(&self) {
        use std::collections::HashMap as Map;
        let mut owners: Map<u64, usize> = Map::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (&line, l) in &c.lines {
                if l.state.writable() {
                    if let Some(prev) = owners.insert(line, i) {
                        panic!("line {line:#x}: two M/E holders: C{prev} and C{i}");
                    }
                }
            }
        }
    }
}

/// Test-only access to private engine structures, so the integration
/// property suite in `tests/` can exercise them directly. Not part of the
/// public API.
#[doc(hidden)]
pub mod testhooks {
    use super::{Event, EventQ};

    /// A handle over the calendar-wheel event queue that pushes and pops
    /// opaque `(time, payload)` pairs, mirroring exactly how the engine
    /// drives it (monotone clock, engine-allocated `seq` tiebreaker).
    pub struct WheelProbe {
        q: EventQ,
        clock: u64,
        seq: u64,
    }

    impl Default for WheelProbe {
        fn default() -> Self {
            Self::new()
        }
    }

    impl WheelProbe {
        pub fn new() -> Self {
            WheelProbe {
                q: EventQ::new(),
                clock: 0,
                seq: 0,
            }
        }

        pub fn len(&self) -> usize {
            self.q.len
        }

        pub fn is_empty(&self) -> bool {
            self.q.is_empty()
        }

        /// Current clock (time of the last popped event).
        pub fn clock(&self) -> u64 {
            self.clock
        }

        /// Schedules `payload` at `time` (must be `>= clock()`).
        pub fn push(&mut self, time: u64, payload: u64) {
            assert!(time >= self.clock, "event scheduled in the past");
            self.seq += 1;
            self.q.push(
                self.clock,
                time,
                self.seq,
                Event::IssueOp {
                    core: payload as usize,
                },
            );
        }

        /// Pops the earliest event, advancing the clock to its time.
        pub fn pop(&mut self) -> Option<(u64, u64)> {
            let (time, _seq, ev) = self.q.pop(self.clock)?;
            self.clock = time;
            let Event::IssueOp { core } = ev else {
                unreachable!("probe only pushes IssueOp events");
            };
            Some((time, core as u64))
        }
    }
}

/// The target line of a memory operation, if it has one.
fn op_line(op: &OpKind) -> Option<u64> {
    match *op {
        OpKind::Read(line)
        | OpKind::Write(line, _)
        | OpKind::Cas(line, _, _)
        | OpKind::Faa(line, _)
        | OpKind::Swap(line, _) => Some(line),
        OpKind::Delay(_) | OpKind::TxBegin | OpKind::TxEnd | OpKind::TxAbort(_) => None,
    }
}
