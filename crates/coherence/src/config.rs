//! Machine configuration: topology and timing parameters.
//!
//! Defaults are calibrated so that the simulated curves land in the same
//! regime as the paper's Broadwell measurements (§6.1): a coherence message
//! delay of "about 15–30 cycles", a 2.2 GHz clock, and a dual-socket
//! interconnect several times slower than the on-chip one.

/// Nominal clock, GHz, used to convert simulated cycles to nanoseconds.
pub const GHZ: f64 = 2.2;

/// Converts simulated cycles to nanoseconds at the nominal clock.
pub fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 / GHZ
}

/// Converts nanoseconds to simulated cycles at the nominal clock.
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * GHZ).round() as u64
}

/// Declarative description of one non-core actor on the machine's
/// discrete-event component spine (built into a live
/// `coherence::component::Component` by `Sim::new`). All fields are plain
/// integers so specs round-trip exactly through text plans and fuzz
/// artifacts; an empty spec list leaves the simulator byte-identical to
/// the pre-component machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentSpec {
    /// A periodic preemption/interrupt source. Every `period` cycles
    /// (first firing at `start`) it interrupts one core: a victim inside a
    /// hardware transaction takes a `txn::INTERRUPT` abort and resumes
    /// `cost` cycles later (the handler runs before the abort is
    /// delivered). `victim` pins a single core; `None` round-robins over
    /// all application cores.
    Interrupt {
        /// Cycles between firings; must be nonzero.
        period: u64,
        /// Absolute time of the first firing.
        start: u64,
        /// Handler cost charged to an aborted victim, cycles.
        cost: u64,
        /// Pinned victim core, or `None` for round-robin.
        victim: Option<usize>,
    },
    /// A periodic tick gate pacing one core: every `period` cycles (first
    /// firing at `start`) it releases that core's `wait_tick()`, or banks
    /// the tick if the core is not waiting yet. Drives timer-paced
    /// consumers and DMA-style bulk producers. `count` bounds the number
    /// of firings; 0 means unlimited.
    TickGate {
        /// The paced application core.
        core: usize,
        /// Cycles between firings; must be nonzero.
        period: u64,
        /// Absolute time of the first firing.
        start: u64,
        /// Number of firings, 0 = unlimited.
        count: u64,
    },
    /// A benign no-op actor that ticks every `period` cycles and does
    /// nothing — it exists to prove that merely *scheduling* components
    /// never perturbs a run (the cross-scheduler differential suite
    /// attaches one and demands byte-identical reports). `count` bounds
    /// the number of ticks; 0 = unlimited.
    Heartbeat {
        /// Cycles between ticks; must be nonzero.
        period: u64,
        /// Number of ticks, 0 = unlimited.
        count: u64,
    },
}

/// Per-line directory home-socket policy: which socket's LLC slice
/// holds a cache line's directory entry, and hence which hops its
/// directory-bound coherence messages pay. Core↔core transfers are
/// unaffected — only the `Node::Dir` leg of a message is priced by the
/// line's home.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HomePolicy {
    /// Every line homes on [`MachineConfig::home_socket`] — the seed
    /// behaviour, and the right model for a single socket. All
    /// calibrated goldens use this policy.
    #[default]
    Fixed,
    /// Hash-interleaved: a multiplicative hash of the line address
    /// spreads homes uniformly over the sockets, like interleaved page
    /// placement. The directory load and the cross-socket penalty are
    /// shared evenly regardless of access pattern.
    Interleave,
    /// First-touch: a line homes on the socket of the first core whose
    /// request for it reaches the interconnect, like first-touch page
    /// placement. Socket-local working sets stay local; shared lines
    /// home wherever they were first used.
    FirstTouch,
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of application cores (hardware threads in the paper's terms —
    /// we model one hardware thread per simulated core).
    pub cores: usize,
    /// Cores per socket; core `c` lives on socket `c / cores_per_socket`.
    /// The bootstrap core used for pre-run setup lives on socket 0.
    pub cores_per_socket: usize,
    /// One-way message delay between nodes on the same socket, cycles.
    pub hop_intra: u64,
    /// One-way message delay when crossing the socket interconnect, cycles.
    pub hop_cross: u64,
    /// Socket holding the directory/LLC slice for all simulated lines
    /// under [`HomePolicy::Fixed`]; ignored by the distributed policies.
    pub home_socket: usize,
    /// How cache-line addresses map to directory home sockets (the NUMA
    /// geometry of the paper's dual-socket machine, §6.1). The default
    /// keeps every line on `home_socket`, which is byte-identical to the
    /// pre-policy simulator.
    pub home_policy: HomePolicy,
    /// Directory/LLC-slice occupancy: minimum spacing between two
    /// requests the directory processes, cycles. Nonzero occupancy is
    /// what staggers simultaneous requesters on real hardware; with 0 the
    /// deterministic simulator keeps contending cores in artificial
    /// lockstep.
    pub dir_occupancy: u64,
    /// Private-cache controller occupancy: minimum spacing between two
    /// *incoming coherence requests* (Fwd-GetS/Fwd-GetM/Inv) one cache
    /// serves, cycles. Lengthens owner-to-owner handoff chains and
    /// serializes request funnels to a single owner, as on real parts.
    pub cache_occupancy: u64,
    /// Random extension of every `delay()` as a percentage of its length
    /// (uniform in `0..=pct`), modelling the out-of-order/interrupt noise
    /// real cores experience. Deterministic per `seed`.
    pub delay_jitter_pct: u64,
    /// Cost of a load/store hit in the local cache, cycles.
    pub hit_cycles: u64,
    /// Execution cost of an atomic RMW once the line is owned, cycles.
    pub rmw_cycles: u64,
    /// Fixed per-operation front-end cost charged when a thread issues any
    /// memory operation, cycles.
    pub op_cycles: u64,
    /// Cost of an allocator call (simalloc fast path), cycles.
    pub alloc_cycles: u64,
    /// Cost of `_xbegin`, cycles.
    pub xbegin_cycles: u64,
    /// Cost of a committing `_xend`, cycles (on top of waiting for the
    /// write's GetM to complete).
    pub xend_cycles: u64,
    /// Grant the MESI Exclusive state on a sole-reader GetS, letting the
    /// owner upgrade to Modified silently (no GetM) on its first write.
    /// The paper's analysis is protocol-family-independent ("applies to
    /// the MOESI and MESIF protocols used commercially", §3.1); this flag
    /// exists to demonstrate that: contended behaviour — the subject of
    /// every figure — is unchanged, only uncontended read-then-write
    /// sequences save a directory round trip. Default off so the
    /// calibrated baseline stays the paper's MSI model.
    pub mesi_exclusive: bool,
    /// Enable the paper's §3.4.1 microarchitectural fix: a Fwd-GetS that
    /// reaches a core blocked in `_xend` with a single pending GetM is
    /// stalled until the transaction commits instead of aborting it.
    pub microarch_fix: bool,
    /// Probability that a transaction suffers a spurious (non-conflict)
    /// abort at `_xend`, modelling interrupts and other
    /// implementation-specific aborts. 0.0 disables.
    pub spurious_abort_prob: f64,
    /// Transactional capacity, in distinct read-set + write-set entries:
    /// a transaction whose footprint grows past this limit aborts with
    /// `txn::CAPACITY` (RTM's `_XABORT_CAPACITY`). 0 disables the model
    /// (unbounded capacity, the calibrated default — the paper's
    /// transactions touch a handful of lines). Used by the fuzzer to
    /// exercise fallback paths.
    pub tx_capacity_lines: usize,
    /// Scheduler-choice perturbation: maximum extra cycles (uniform in
    /// `0..=sched_perturb`, drawn from the seeded RNG) added to the issue
    /// time of each thread operation. This biases *which ready core runs
    /// next* without touching in-flight protocol messages, so distinct
    /// seeds explore distinct coherence interleavings instead of one
    /// canonical schedule. 0 disables (the calibrated default).
    pub sched_perturb: u64,
    /// RNG seed for delay jitter, spurious aborts, and scheduler
    /// perturbation (and nothing else — the simulator is otherwise
    /// deterministic).
    pub seed: u64,
    /// Decide uncontended local-hit operations at submission — no
    /// directory messages, no inbox, no per-op dispatch; a single
    /// stand-in event finishes the op — whenever doing so is provably
    /// bit-exact with the full protocol (see `Sim::try_fast_path` and
    /// DESIGN.md §12 for the admission conditions). The slow path remains
    /// the semantic reference: runs with this flag off are byte-identical
    /// to runs with it on, just slower. Default on; setting the
    /// `SBQ_FAST_PATH=0` environment variable flips the default off,
    /// which is how the CI golden job replays the determinism suite on
    /// the pure protocol path.
    pub fast_path: bool,
    /// Run simulated cores on dedicated OS threads (the slot-handshake
    /// token-passing scheduler) instead of the default in-process fiber
    /// scheduler. On targets without fiber support (non-x86_64) the
    /// OS-thread scheduler is always used. Both schedulers produce
    /// bit-identical `RunReport`s — this switch exists for the
    /// cross-scheduler determinism test and for debugging; the fiber
    /// scheduler is roughly an order of magnitude faster per simulated
    /// op under contention.
    pub os_thread_scheduler: bool,
    /// Stack size, bytes, of each simulated core's fiber under the
    /// in-process scheduler. Simulated programs are shallow (queue
    /// operations plus the `htm` combinators), and the measured canary
    /// high-water mark sits well under 32 KiB even in debug builds, so
    /// the 64 KiB default leaves a paper-scale 176-core machine at
    /// ~11 MiB of stacks (vs 177 MiB under the old fixed 1 MiB layout)
    /// while keeping generous headroom. Raise it for unusually deep
    /// user programs; the canary check at every fiber handoff turns an
    /// overflow into a panic rather than silent corruption.
    pub fiber_stack: usize,
    /// Paint each fiber stack with the canary pattern at spawn so the
    /// run can report a stack high-water mark
    /// (`Stats::stack_high_water`). Costs one memset per fiber, so it
    /// is off by default — stack memory is otherwise deliberately left
    /// uninitialized (zeroing large stacks per run is a measured cost).
    pub measure_stacks: bool,
    /// Record a full message/transaction trace (costly; for the Figure 2/3
    /// reproductions and debugging).
    pub trace: bool,
    /// Verify protocol invariants (single-writer/multi-reader, dir/cache
    /// agreement) after every event. On by default in debug builds.
    pub check_invariants: bool,
    /// Non-core actors to place on the component spine (interrupt
    /// sources, tick gates, heartbeats — see [`ComponentSpec`]). Empty by
    /// default: with no components configured the event stream, and hence
    /// every determinism golden, is byte-identical to the pre-component
    /// simulator.
    pub components: Vec<ComponentSpec>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 4,
            cores_per_socket: 44,
            hop_intra: 25,
            hop_cross: 110,
            home_socket: 0,
            home_policy: HomePolicy::Fixed,
            dir_occupancy: 4,
            cache_occupancy: 8,
            delay_jitter_pct: 20,
            hit_cycles: 4,
            rmw_cycles: 15,
            op_cycles: 2,
            alloc_cycles: 30,
            xbegin_cycles: 12,
            xend_cycles: 12,
            mesi_exclusive: false,
            microarch_fix: false,
            spurious_abort_prob: 0.0,
            tx_capacity_lines: 0,
            sched_perturb: 0,
            seed: 0x5b90,
            fast_path: std::env::var_os("SBQ_FAST_PATH").is_none_or(|v| v != "0"),
            os_thread_scheduler: false,
            fiber_stack: 64 * 1024,
            measure_stacks: false,
            trace: false,
            check_invariants: cfg!(debug_assertions),
            components: Vec::new(),
        }
    }
}

impl MachineConfig {
    /// A single-socket machine with `cores` cores (the paper's
    /// intra-processor evaluation setup).
    pub fn single_socket(cores: usize) -> Self {
        MachineConfig {
            cores,
            cores_per_socket: cores.max(1),
            ..Default::default()
        }
    }

    /// A dual-socket machine with `per_socket` cores on each socket
    /// (the paper's mixed-workload setup).
    pub fn dual_socket(per_socket: usize) -> Self {
        MachineConfig {
            cores: per_socket * 2,
            cores_per_socket: per_socket,
            ..Default::default()
        }
    }

    /// A machine with `sockets` sockets of `per_socket` cores each, lines
    /// hash-interleaved over the sockets' directory slices (the natural
    /// policy once more than one socket exists — a fixed home makes
    /// multi-socket sweeps degenerate).
    pub fn multi_socket(sockets: usize, per_socket: usize) -> Self {
        MachineConfig {
            cores: sockets * per_socket,
            cores_per_socket: per_socket.max(1),
            home_policy: if sockets > 1 {
                HomePolicy::Interleave
            } else {
                HomePolicy::Fixed
            },
            ..Default::default()
        }
    }

    /// Number of sockets the configured cores span.
    pub fn sockets(&self) -> usize {
        self.cores.div_ceil(self.cores_per_socket.max(1)).max(1)
    }

    /// Socket of core `c`. The bootstrap core (index == `cores`) is mapped
    /// to socket 0.
    pub fn socket_of(&self, core: usize) -> usize {
        if core >= self.cores {
            0
        } else {
            core / self.cores_per_socket
        }
    }

    /// One-way latency between two sockets.
    pub fn hop(&self, s1: usize, s2: usize) -> u64 {
        if s1 == s2 {
            self.hop_intra
        } else {
            self.hop_cross
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_mapping() {
        let c = MachineConfig::dual_socket(4);
        assert_eq!(c.socket_of(0), 0);
        assert_eq!(c.socket_of(3), 0);
        assert_eq!(c.socket_of(4), 1);
        assert_eq!(c.socket_of(7), 1);
        assert_eq!(c.socket_of(8), 0, "bootstrap core is on socket 0");
    }

    #[test]
    fn hop_latency_depends_on_socket() {
        let c = MachineConfig::dual_socket(2);
        assert_eq!(c.hop(0, 0), c.hop_intra);
        assert_eq!(c.hop(0, 1), c.hop_cross);
    }

    #[test]
    fn socket_counts() {
        assert_eq!(MachineConfig::single_socket(44).sockets(), 1);
        assert_eq!(MachineConfig::dual_socket(44).sockets(), 2);
        let quad = MachineConfig::multi_socket(4, 44);
        assert_eq!(quad.cores, 176);
        assert_eq!(quad.sockets(), 4);
        assert_eq!(quad.home_policy, HomePolicy::Interleave);
        assert_eq!(quad.socket_of(175), 3);
        assert_eq!(quad.socket_of(176), 0, "bootstrap core is on socket 0");
        assert_eq!(
            MachineConfig::multi_socket(1, 8).home_policy,
            HomePolicy::Fixed
        );
    }

    #[test]
    fn cycles_ns_roundtrip() {
        assert_eq!(ns_to_cycles(cycles_to_ns(2200)), 2200);
    }
}
