//! Minimal stackful coroutines ("fibers") for the machine scheduler.
//! x86_64 System V only; other targets fall back to the OS-thread
//! scheduler in [`crate::machine`].
//!
//! The simulation runs exactly one simulated thread at any instant, so
//! the scheduler's only job is to move control between blocked program
//! stacks in a deterministic order. Doing that with OS threads costs a
//! futex round trip through the kernel per handoff (~1–2 µs wall clock
//! once scheduling latency and cache pollution are counted — measured
//! to dominate the simulator's hot loop). A cooperative stack switch
//! between fibers on a single OS thread is the same handoff in ~20 ns:
//! save the callee-saved registers, swap stack pointers, restore.
//!
//! What a [`switch`] saves is precisely the System V callee-saved state:
//! `rsp`, `rbx`, `rbp`, `r12`–`r15`, plus the MXCSR and x87 control
//! words. Everything else is caller-saved and therefore dead across the
//! call boundary — `switch` is an ordinary `extern "sysv64"` call as far
//! as the compiler is concerned.
//!
//! Deliberate caveats:
//!
//! * **No guard pages.** Stacks are plain heap allocations (no `mmap`
//!   available without adding a libc dependency), so overflowing one
//!   corrupts the heap instead of faulting. Stacks are generously sized
//!   ([`DEFAULT_STACK`]) and carry a canary word at the low end;
//!   [`Fiber::canary_ok`] lets the scheduler turn an overflow into a
//!   panic at the next handoff.
//! * **Panic containment is the embedder's job.** The entry closure must
//!   never unwind off the fiber: there is no caller frame below the
//!   bootstrap trampoline. `machine.rs` wraps every program in
//!   `catch_unwind` and reports the payload through its channel.
//! * **A fiber dropped while suspended leaks whatever its stack frames
//!   own** — destructors of suspended locals never run. This only
//!   happens when a run is being torn down by a panic.

use std::cell::Cell;
use std::mem::MaybeUninit;

/// Default fiber stack size: 1 MiB. Simulated programs are shallow
/// (queue operations plus the `htm` combinators), so this is ample; the
/// allocation is lazily paged by the OS, so unused depth costs nothing.
pub const DEFAULT_STACK: usize = 1 << 20;

/// Written to the lowest stack word at creation; overwritten only by a
/// stack overflow.
const CANARY: u128 = 0xFEED_FACE_CAFE_BEEF_DEAD_C0DE_5AFE_57AC;

/// A suspended program stack. Created with an entry closure; the first
/// [`switch`] to its context runs the closure on the new stack.
pub struct Fiber {
    /// The stack buffer. `u128` elements guarantee the 16-byte alignment
    /// the System V ABI requires of stack frames. Deliberately left
    /// uninitialized except for the canary and the bootstrap frame:
    /// zeroing 1 MiB per fiber is a measurable fixed cost per `Machine`
    /// run, and stack memory is always written before it is read.
    stack: Box<[MaybeUninit<u128>]>,
}

impl Fiber {
    /// Builds a fiber that runs `f` when first switched to, returning the
    /// fiber and the context (stack pointer) to pass to [`switch`].
    ///
    /// `f` must never return: it must end by switching away permanently
    /// (the process aborts if it does return). `f` must also never let a
    /// panic unwind out — wrap the fallible part in `catch_unwind`.
    pub fn new(stack_bytes: usize, f: Box<dyn FnOnce()>) -> (Fiber, *mut u8) {
        // Room for the bootstrap frame (80 bytes) + closure slot (16) on
        // top of whatever `f` needs.
        let words = stack_bytes.div_ceil(16).max(64);
        let mut stack = Box::new_uninit_slice(words);
        stack[0].write(CANARY);
        let top = unsafe { stack.as_mut_ptr().add(words) } as *mut u8;

        // Stack layout, descending from `top` (16-byte aligned):
        //   top-16 : Box<dyn FnOnce()>  (the entry closure, by value)
        //   top-24 : return address     -> fiber_entry
        //   top-32 : rbp slot           =  0
        //   top-40 : rbx slot           =  &closure  (fiber_entry reads it)
        //   top-48 : r12 slot           =  0
        //   top-56 : r13 slot           =  0
        //   top-64 : r14 slot           =  0
        //   top-72 : r15 slot           =  0
        //   top-80 : MXCSR (lo 32) | x87 FCW (hi 32), power-on defaults
        // The initial context is top-80; `raw_switch`'s restore sequence
        // consumes the frame and `ret`s into `fiber_entry` with rsp at
        // top-16, which is 16-byte aligned as the ABI requires before a
        // `call`.
        unsafe {
            let slot = top.sub(16) as *mut Box<dyn FnOnce()>;
            slot.write(f);
            (top.sub(24) as *mut u64).write(fiber_entry as *const () as u64);
            (top.sub(32) as *mut u64).write(0);
            (top.sub(40) as *mut u64).write(slot as u64);
            (top.sub(48) as *mut u64).write(0);
            (top.sub(56) as *mut u64).write(0);
            (top.sub(64) as *mut u64).write(0);
            (top.sub(72) as *mut u64).write(0);
            (top.sub(80) as *mut u64).write((0x037F_u64 << 32) | 0x1F80);
        }
        let rsp = unsafe { top.sub(80) };
        (Fiber { stack }, rsp)
    }

    /// True while the canary at the low end of the stack is intact. A
    /// false return means the stack overflowed into the heap; the caller
    /// should panic rather than continue on corrupted memory.
    pub fn canary_ok(&self) -> bool {
        // The canary word was written in `new`, so reading it is sound.
        (unsafe { self.stack[0].assume_init_read() }) == CANARY
    }
}

/// Suspends the current context into `save` and resumes the context
/// `to`. Returns when something switches back to the saved context.
///
/// # Safety
///
/// * `to` must be a context produced by [`Fiber::new`] and not yet
///   entered, or one saved by an earlier `switch` on this OS thread and
///   not yet resumed. Entering a context twice, or a context whose stack
///   has been freed, is undefined behavior.
/// * All fiber switching for a given set of stacks must stay on one OS
///   thread (contexts embed stack addresses, and the scheduler's
///   channels are not synchronized).
#[inline]
pub unsafe fn switch(save: &Cell<*mut u8>, to: *mut u8) {
    unsafe { raw_switch(save.as_ptr(), to) }
}

/// The context switch: pushes the callee-saved state onto the current
/// stack, publishes the resulting stack pointer through `save`, adopts
/// `to` as the stack pointer, and pops the same state back off.
#[unsafe(naked)]
unsafe extern "sysv64" fn raw_switch(save: *mut *mut u8, to: *mut u8) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: `raw_switch` `ret`s here with `rbx`
/// holding the closure slot's address (planted by [`Fiber::new`]).
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_entry() {
    core::arch::naked_asm!(
        "mov rdi, rbx",
        "call {main}",
        "ud2",
        main = sym fiber_main,
    )
}

/// Takes the entry closure out of its stack slot and runs it.
unsafe extern "sysv64" fn fiber_main(slot: *mut Box<dyn FnOnce()>) -> ! {
    // SAFETY: `slot` holds the closure placed by `Fiber::new`; this is
    // its only read.
    let f = unsafe { slot.read() };
    f();
    // The closure contract says it never returns; there is no frame to
    // return into.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    /// A scheduler-less ping-pong: main resumes the fiber N times; the
    /// fiber increments a counter and yields back each time.
    #[test]
    fn ping_pong() {
        let count = Rc::new(Cell::new(0u64));
        let main_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let fiber_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));

        let (fb, entry) = {
            let count = Rc::clone(&count);
            let main_ctx = Rc::clone(&main_ctx);
            let fiber_ctx = Rc::clone(&fiber_ctx);
            Fiber::new(
                DEFAULT_STACK,
                Box::new(move || loop {
                    count.set(count.get() + 1);
                    unsafe { switch(&fiber_ctx, main_ctx.get()) };
                }),
            )
        };
        fiber_ctx.set(entry);

        for expect in 1..=1000u64 {
            unsafe { switch(&main_ctx, fiber_ctx.get()) };
            assert_eq!(count.get(), expect);
        }
        assert!(fb.canary_ok());
        // The fiber is dropped suspended; its (empty) loop owns nothing.
    }

    /// Deep recursion on the fiber stack works, and the canary survives
    /// within bounds.
    #[test]
    fn uses_own_stack() {
        fn burn(n: u64) -> u64 {
            let pad = [n; 8];
            if n == 0 {
                pad[0]
            } else {
                burn(n - 1) + std::hint::black_box(pad[7])
            }
        }
        let main_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let out = Rc::new(Cell::new(0u64));
        let (fb, entry) = {
            let main_ctx = Rc::clone(&main_ctx);
            let out = Rc::clone(&out);
            Fiber::new(
                DEFAULT_STACK,
                Box::new(move || {
                    out.set(burn(1000));
                    loop {
                        unsafe { switch(&Cell::new(std::ptr::null_mut()), main_ctx.get()) };
                    }
                }),
            )
        };
        unsafe { switch(&main_ctx, entry) };
        assert_eq!(out.get(), (1..=1000u64).sum::<u64>());
        assert!(fb.canary_ok());
    }
}
