//! Minimal stackful coroutines ("fibers") for the machine scheduler.
//! x86_64 System V only; other targets fall back to the OS-thread
//! scheduler in [`crate::machine`].
//!
//! The simulation runs exactly one simulated thread at any instant, so
//! the scheduler's only job is to move control between blocked program
//! stacks in a deterministic order. Doing that with OS threads costs a
//! futex round trip through the kernel per handoff (~1–2 µs wall clock
//! once scheduling latency and cache pollution are counted — measured
//! to dominate the simulator's hot loop). A cooperative stack switch
//! between fibers on a single OS thread is the same handoff in ~20 ns:
//! save the callee-saved registers, swap stack pointers, restore.
//!
//! What a [`switch`] saves is precisely the System V callee-saved state:
//! `rsp`, `rbx`, `rbp`, `r12`–`r15`, plus the MXCSR and x87 control
//! words. Everything else is caller-saved and therefore dead across the
//! call boundary — `switch` is an ordinary `extern "sysv64"` call as far
//! as the compiler is concerned.
//!
//! Deliberate caveats:
//!
//! * **No guard pages.** Stacks are plain heap allocations (no `mmap`
//!   available without adding a libc dependency), so overflowing one
//!   corrupts the heap instead of faulting. Stacks are generously sized
//!   ([`DEFAULT_STACK`]) and carry a canary word at the low end;
//!   [`Fiber::canary_ok`] lets the scheduler turn an overflow into a
//!   panic at the next handoff.
//! * **Panic containment is the embedder's job.** The entry closure must
//!   never unwind off the fiber: there is no caller frame below the
//!   bootstrap trampoline. `machine.rs` wraps every program in
//!   `catch_unwind` and reports the payload through its channel.
//! * **A fiber dropped while suspended leaks whatever its stack frames
//!   own** — destructors of suspended locals never run. This only
//!   happens when a run is being torn down by a panic.

use std::cell::Cell;
use std::mem::MaybeUninit;

/// Default fiber stack size: 64 KiB, mirroring the
/// `MachineConfig::fiber_stack` default (the config cannot reference
/// this constant — this module is x86_64-only). Simulated programs are
/// shallow (queue operations plus the `htm` combinators); measured
/// canary high-water marks sit well under 32 KiB even in debug builds,
/// and at 64 KiB a paper-scale 176-core machine keeps all its stacks in
/// ~11 MiB instead of the 177 MiB the old fixed 1 MiB layout needed.
pub const DEFAULT_STACK: usize = 1 << 16;

/// Written to the lowest stack word at creation; overwritten only by a
/// stack overflow.
const CANARY: u128 = 0xFEED_FACE_CAFE_BEEF_DEAD_C0DE_5AFE_57AC;

/// A suspended program stack. Created with an entry closure; the first
/// [`switch`] to its context runs the closure on the new stack.
pub struct Fiber {
    /// The stack buffer. `u128` elements guarantee the 16-byte alignment
    /// the System V ABI requires of stack frames. Deliberately left
    /// uninitialized except for the canary and the bootstrap frame:
    /// zeroing every stack is a measurable fixed cost per `Machine`
    /// run, and stack memory is always written before it is read.
    stack: Box<[MaybeUninit<u128>]>,
    /// Number of low words holding the canary paint (0 when unpainted —
    /// only the index-0 sentinel exists then). Set by [`Fiber::paint`];
    /// gates [`Fiber::high_water`] so it never reads uninitialized
    /// words.
    painted: usize,
}

/// Words at the stack top consumed by the bootstrap frame and the entry
/// closure slot (96 bytes: the 80-byte register frame plus the 16-byte
/// `Box<dyn FnOnce()>`).
const FRAME_WORDS: usize = 6;

impl Fiber {
    /// Builds a fiber that runs `f` when first switched to, returning the
    /// fiber and the context (stack pointer) to pass to [`switch`].
    ///
    /// `f` must never return: it must end by switching away permanently
    /// (the process aborts if it does return). `f` must also never let a
    /// panic unwind out — wrap the fallible part in `catch_unwind`.
    pub fn new(stack_bytes: usize, f: Box<dyn FnOnce()>) -> (Fiber, *mut u8) {
        // Room for the bootstrap frame (80 bytes) + closure slot (16) on
        // top of whatever `f` needs.
        let words = stack_bytes.div_ceil(16).max(64);
        let mut stack = Box::new_uninit_slice(words);
        stack[0].write(CANARY);
        let top = unsafe { stack.as_mut_ptr().add(words) } as *mut u8;

        // Stack layout, descending from `top` (16-byte aligned):
        //   top-16 : Box<dyn FnOnce()>  (the entry closure, by value)
        //   top-24 : return address     -> fiber_entry
        //   top-32 : rbp slot           =  0
        //   top-40 : rbx slot           =  &closure  (fiber_entry reads it)
        //   top-48 : r12 slot           =  0
        //   top-56 : r13 slot           =  0
        //   top-64 : r14 slot           =  0
        //   top-72 : r15 slot           =  0
        //   top-80 : MXCSR (lo 32) | x87 FCW (hi 32), power-on defaults
        // The initial context is top-80; `raw_switch`'s restore sequence
        // consumes the frame and `ret`s into `fiber_entry` with rsp at
        // top-16, which is 16-byte aligned as the ABI requires before a
        // `call`.
        unsafe {
            let slot = top.sub(16) as *mut Box<dyn FnOnce()>;
            slot.write(f);
            (top.sub(24) as *mut u64).write(fiber_entry as *const () as u64);
            (top.sub(32) as *mut u64).write(0);
            (top.sub(40) as *mut u64).write(slot as u64);
            (top.sub(48) as *mut u64).write(0);
            (top.sub(56) as *mut u64).write(0);
            (top.sub(64) as *mut u64).write(0);
            (top.sub(72) as *mut u64).write(0);
            (top.sub(80) as *mut u64).write((0x037F_u64 << 32) | 0x1F80);
        }
        let rsp = unsafe { top.sub(80) };
        (Fiber { stack, painted: 0 }, rsp)
    }

    /// Paints every stack word below the bootstrap frame with the canary
    /// pattern so [`Fiber::high_water`] can report the deepest word the
    /// fiber ever touched. Call before the fiber is first entered; costs
    /// one memset, which is why it is opt-in
    /// (`MachineConfig::measure_stacks`) rather than the default.
    pub fn paint(&mut self) {
        let end = self.stack.len().saturating_sub(FRAME_WORDS);
        for w in &mut self.stack[..end] {
            w.write(CANARY);
        }
        self.painted = end;
    }

    /// Stack high-water mark, bytes: the distance from the stack top to
    /// the deepest non-canary word. `None` unless [`Fiber::paint`] ran
    /// (unpainted words are uninitialized and must not be read). A fiber
    /// that never ran past its bootstrap frame reports the frame size.
    pub fn high_water(&self) -> Option<usize> {
        if self.painted == 0 {
            return None;
        }
        // SAFETY: words below `painted` were all written by `paint`.
        let first_dirty = (0..self.painted)
            .find(|&i| unsafe { self.stack[i].assume_init_read() } != CANARY)
            .unwrap_or(self.painted);
        Some((self.stack.len() - first_dirty) * 16)
    }

    /// True while the canary at the low end of the stack is intact. A
    /// false return means the stack overflowed into the heap; the caller
    /// should panic rather than continue on corrupted memory.
    pub fn canary_ok(&self) -> bool {
        // The canary word was written in `new`, so reading it is sound.
        (unsafe { self.stack[0].assume_init_read() }) == CANARY
    }
}

/// Suspends the current context into `save` and resumes the context
/// `to`. Returns when something switches back to the saved context.
///
/// # Safety
///
/// * `to` must be a context produced by [`Fiber::new`] and not yet
///   entered, or one saved by an earlier `switch` on this OS thread and
///   not yet resumed. Entering a context twice, or a context whose stack
///   has been freed, is undefined behavior.
/// * All fiber switching for a given set of stacks must stay on one OS
///   thread (contexts embed stack addresses, and the scheduler's
///   channels are not synchronized).
#[inline]
pub unsafe fn switch(save: &Cell<*mut u8>, to: *mut u8) {
    unsafe { raw_switch(save.as_ptr(), to) }
}

/// The context switch: pushes the callee-saved state onto the current
/// stack, publishes the resulting stack pointer through `save`, adopts
/// `to` as the stack pointer, and pops the same state back off.
#[unsafe(naked)]
unsafe extern "sysv64" fn raw_switch(save: *mut *mut u8, to: *mut u8) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: `raw_switch` `ret`s here with `rbx`
/// holding the closure slot's address (planted by [`Fiber::new`]).
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_entry() {
    core::arch::naked_asm!(
        "mov rdi, rbx",
        "call {main}",
        "ud2",
        main = sym fiber_main,
    )
}

/// Takes the entry closure out of its stack slot and runs it.
unsafe extern "sysv64" fn fiber_main(slot: *mut Box<dyn FnOnce()>) -> ! {
    // SAFETY: `slot` holds the closure placed by `Fiber::new`; this is
    // its only read.
    let f = unsafe { slot.read() };
    f();
    // The closure contract says it never returns; there is no frame to
    // return into.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    /// A scheduler-less ping-pong: main resumes the fiber N times; the
    /// fiber increments a counter and yields back each time.
    #[test]
    fn ping_pong() {
        let count = Rc::new(Cell::new(0u64));
        let main_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let fiber_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));

        let (fb, entry) = {
            let count = Rc::clone(&count);
            let main_ctx = Rc::clone(&main_ctx);
            let fiber_ctx = Rc::clone(&fiber_ctx);
            Fiber::new(
                DEFAULT_STACK,
                Box::new(move || loop {
                    count.set(count.get() + 1);
                    unsafe { switch(&fiber_ctx, main_ctx.get()) };
                }),
            )
        };
        fiber_ctx.set(entry);

        for expect in 1..=1000u64 {
            unsafe { switch(&main_ctx, fiber_ctx.get()) };
            assert_eq!(count.get(), expect);
        }
        assert!(fb.canary_ok());
        // The fiber is dropped suspended; its (empty) loop owns nothing.
    }

    /// Deep recursion on the fiber stack works, and the canary survives
    /// within bounds.
    #[test]
    fn uses_own_stack() {
        fn burn(n: u64) -> u64 {
            let pad = [n; 8];
            if n == 0 {
                pad[0]
            } else {
                burn(n - 1) + std::hint::black_box(pad[7])
            }
        }
        let main_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let out = Rc::new(Cell::new(0u64));
        let (fb, entry) = {
            let main_ctx = Rc::clone(&main_ctx);
            let out = Rc::clone(&out);
            // Deep recursion wants more than the 64 KiB default
            // (especially in debug builds); give it an explicit 1 MiB.
            Fiber::new(
                1 << 20,
                Box::new(move || {
                    out.set(burn(1000));
                    loop {
                        unsafe { switch(&Cell::new(std::ptr::null_mut()), main_ctx.get()) };
                    }
                }),
            )
        };
        unsafe { switch(&main_ctx, entry) };
        assert_eq!(out.get(), (1..=1000u64).sum::<u64>());
        assert!(fb.canary_ok());
    }

    /// A painted stack reports a high-water mark that tracks actual use.
    #[test]
    fn paint_reports_high_water() {
        fn burn(n: u64) -> u64 {
            let pad = [n; 8];
            if n == 0 {
                pad[0]
            } else {
                burn(n - 1) + std::hint::black_box(pad[7])
            }
        }
        let main_ctx = Rc::new(Cell::new(std::ptr::null_mut::<u8>()));
        let (mut fb, entry) = {
            let main_ctx = Rc::clone(&main_ctx);
            Fiber::new(
                1 << 20,
                Box::new(move || {
                    std::hint::black_box(burn(100));
                    loop {
                        unsafe { switch(&Cell::new(std::ptr::null_mut()), main_ctx.get()) };
                    }
                }),
            )
        };
        assert_eq!(fb.high_water(), None, "unpainted stacks are unreadable");
        fb.paint();
        unsafe { switch(&main_ctx, entry) };
        assert!(fb.canary_ok());
        let hwm = fb.high_water().expect("painted");
        // 100 frames of at least 64 bytes of locals each, but nowhere
        // near the 1 MiB reservation.
        assert!(hwm >= 100 * 64, "high-water {hwm} implausibly small");
        assert!(hwm < 1 << 19, "high-water {hwm} implausibly large");
    }
}
