//! # coherence — the simulated multicore substrate
//!
//! A discrete-event simulator of a directory-based MSI cache-coherence
//! protocol with hardware transactional memory layered on top, built to
//! reproduce Ostrovsky & Morrison, *Scaling Concurrent Queues by Using HTM
//! to Profit from Failed Atomic Operations* (PPoPP 2020) on hardware
//! without HTM.
//!
//! The simulator substitutes for the paper's dual-socket Broadwell machine
//! (see DESIGN.md §1 for the substitution argument). It models:
//!
//! * point-to-point interconnect with per-hop latency and a two-socket
//!   topology (§3.1, §4.3 of the paper);
//! * a directory that serializes GetS/GetM requests and sends back-to-back
//!   invalidations (§3.1);
//! * private caches that stall Fwd requests behind their own pending
//!   request or executing RMW — the mechanism that serializes contended
//!   atomic operations (§3.2, Figure 2a);
//! * requester-wins HTM with flat nesting and RTM-style abort status
//!   words, including the tripped-writer abort and the paper's proposed
//!   microarchitectural fix (§3.3–3.4, Figures 2b and 3).
//!
//! Thread programs are ordinary Rust closures over [`machine::SimCtx`],
//! which implements [`absmem::ThreadCtx`]; the same queue code that runs
//! on real atomics runs here, measured in simulated cycles.
//!
//! ```
//! use coherence::{Machine, MachineConfig};
//! use absmem::ThreadCtx;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let cfg = MachineConfig::single_socket(4);
//! let shared = Arc::new(AtomicU64::new(0));
//! let s2 = Arc::clone(&shared);
//! let report = Machine::new(cfg).run(
//!     Box::new(move |ctx| {
//!         let a = ctx.alloc(1);
//!         ctx.write(a, 0);
//!         s2.store(a, Ordering::SeqCst);
//!     }),
//!     (0..4)
//!         .map(|_| {
//!             let shared = Arc::clone(&shared);
//!             Box::new(move |ctx: &mut coherence::SimCtx| {
//!                 let a = shared.load(Ordering::SeqCst);
//!                 for _ in 0..100 {
//!                     ctx.faa(a, 1);
//!                 }
//!             }) as coherence::Program
//!         })
//!         .collect(),
//! );
//! // 4 threads x 100 increments, fully accounted:
//! assert_eq!(report.stats.op("faa"), 400);
//! ```

pub mod component;
pub mod config;
#[cfg(target_arch = "x86_64")]
pub mod fiber;
pub mod fxhash;
pub mod machine;
pub mod msg;
pub mod sim;
pub mod stats;
pub mod txn;

pub use component::Component;
pub use config::{cycles_to_ns, ns_to_cycles, ComponentSpec, HomePolicy, MachineConfig, GHZ};
pub use machine::{Machine, Program, SimCtx};
pub use sim::CompCtx;
pub use stats::{RunReport, Stats, TraceEvent};
pub use txn::{Abort, TxResult};
