//! Transaction status words and abort reasons, mirroring the shape of the
//! RTM `_xbegin` status word the paper's TxCAS triages on (§4.2): explicit
//! vs. conflict aborts, and whether the conflict hit a *nested*
//! transaction.

/// Abort status bit: the transaction called `tx_abort` itself.
pub const EXPLICIT: u32 = 1 << 0;
/// Abort status bit: retrying may succeed (set on conflicts, like RTM).
pub const RETRY: u32 = 1 << 1;
/// Abort status bit: a data conflict (remote coherence request) aborted the
/// transaction.
pub const CONFLICT: u32 = 1 << 2;
/// Abort status bit: spurious abort (interrupt-like; neither explicit nor a
/// conflict).
pub const SPURIOUS: u32 = 1 << 3;
/// Abort status bit: the transaction's footprint exceeded the modelled
/// transactional capacity (`MachineConfig::tx_capacity_lines`). Mirrors
/// RTM's `_XABORT_CAPACITY`.
pub const CAPACITY: u32 = 1 << 4;
/// Abort status bit: the abort occurred while a *nested* transaction was
/// running. TxCAS uses this to learn that the CAS write step had not yet
/// executed.
pub const NESTED: u32 = 1 << 5;
/// Abort status bit: an external preemption/interrupt component (see
/// `coherence::component::InterruptSource`) parked the core mid-transaction.
/// Unlike [`SPURIOUS`] (a probabilistic commit-time model), an interrupt
/// abort is injected at a scheduled machine time, independently of what the
/// victim transaction is doing. Always paired with [`RETRY`].
pub const INTERRUPT: u32 = 1 << 6;

/// Builds a status word for an explicit abort carrying `code` (0..=255).
pub fn explicit(code: u8) -> u32 {
    EXPLICIT | ((code as u32) << 24)
}

/// Extracts the explicit abort code.
pub fn code(status: u32) -> u8 {
    (status >> 24) as u8
}

/// True if the status word reports an explicit (self) abort.
pub fn is_explicit(status: u32) -> bool {
    status & EXPLICIT != 0
}

/// True if the status word reports a data-conflict abort.
pub fn is_conflict(status: u32) -> bool {
    status & CONFLICT != 0
}

/// True if the abort happened inside a nested transaction.
pub fn is_nested(status: u32) -> bool {
    status & NESTED != 0
}

/// True if the status word reports a capacity abort.
pub fn is_capacity(status: u32) -> bool {
    status & CAPACITY != 0
}

/// True if the status word reports a preemption/interrupt abort.
pub fn is_interrupt(status: u32) -> bool {
    status & INTERRUPT != 0
}

/// An in-flight abort, unwound through transaction bodies with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort {
    /// RTM-style status word; see the bit constants in this module.
    pub status: u32,
}

/// Result type of every memory operation performed inside a transaction.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_code_roundtrip() {
        let s = explicit(42);
        assert!(is_explicit(s));
        assert!(!is_conflict(s));
        assert_eq!(code(s), 42);
    }

    #[test]
    fn conflict_bits() {
        let s = CONFLICT | RETRY | NESTED;
        assert!(is_conflict(s));
        assert!(is_nested(s));
        assert!(!is_explicit(s));
    }

    #[test]
    fn interrupt_bits_are_retryable_and_distinct() {
        let s = INTERRUPT | RETRY;
        assert!(is_interrupt(s));
        assert!(!is_conflict(s));
        assert!(!is_explicit(s));
        assert!(!is_capacity(s));
        assert_eq!(
            INTERRUPT & (EXPLICIT | RETRY | CONFLICT | SPURIOUS | CAPACITY | NESTED),
            0
        );
    }
}
