//! # simrng — a tiny deterministic PRNG
//!
//! The simulator needs randomness in exactly two places (delay jitter and
//! spurious-abort injection), and the test suite needs reproducible
//! operation scripts. Neither warrants an external dependency, and this
//! workspace builds in environments with no crates registry at all — so
//! the generator lives in-tree.
//!
//! The core is splitmix64 (Steele, Lea & Flood's `SplittableRandom`
//! finalizer, the same mixer `rand` uses to seed its small RNGs): one
//! 64-bit state word, an odd-constant Weyl increment, and a 3-round
//! avalanche. Statistical quality is far beyond what jitter sampling
//! needs, and every stream is a pure function of the seed.
//!
//! ```
//! use simrng::SimRng;
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range_inclusive(0, 10);
//! assert!(x <= 10);
//! ```

/// A deterministic 64-bit PRNG (splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `lo..=hi` (inclusive). Uses the widening
    /// multiply-shift reduction, which is bias-free for all spans that
    /// arise here (spans far below 2^64).
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let r = self.next_u64();
        lo + (((r as u128) * ((span + 1) as u128)) >> 64) as u64
    }

    /// Uniform sample from `0..n`. Panics if `n == 0`.
    #[inline]
    pub fn gen_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.gen_range_inclusive(0, n as u64 - 1) as usize
    }

    /// Bernoulli sample: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(0x5b90);
        let mut b = SimRng::seed_from_u64(0x5b90);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range_inclusive(5, 17);
            assert!((5..=17).contains(&v));
        }
        assert_eq!(r.gen_range_inclusive(9, 9), 9);
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
